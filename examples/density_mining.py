"""Density-based mining: BST clustering and outlier detection (§3.4, §4).

The Voronoi tessellation "is a natural method for similar object
searches ... because the volume of the cells is inversely proportional
to the local density it can be used for finding clusters and outliers."

This example builds the sampled tessellation over the SDSS color space,
derives the density map, grows the Basin Spanning Tree (Figure 6), names
each cluster after its majority spectral class, reports the agreement
the paper quotes (92% on 100K objects), and flags low-density outliers.

Run:  python examples/density_mining.py
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro import (
    DelaunayGraph,
    Whitener,
    basin_spanning_tree,
    cluster_class_agreement,
    clusters_from_parents,
    density_from_volumes,
    merge_small_clusters,
    sdss_color_sample,
    voronoi_volume_estimates,
)
from repro.datasets.sdss import CLASS_NAMES, CLASS_OUTLIER


def main() -> None:
    print("sampling 100K objects of the color space (the paper's Figure 6 scale)...")
    sample = sdss_color_sample(100_000, seed=6)
    colors = Whitener(mode="std").fit_transform(sample.colors())

    num_seeds = 2500
    rng = np.random.default_rng(0)
    seed_idx = rng.choice(len(colors), num_seeds, replace=False)
    print(f"computing the Delaunay/Voronoi tessellation of {num_seeds} seeds (QHull)...")
    graph = DelaunayGraph(colors[seed_idx])
    volumes = voronoi_volume_estimates(graph)
    _, assignment = cKDTree(colors[seed_idx]).query(colors)
    counts = np.bincount(assignment, minlength=num_seeds)
    densities = density_from_volumes(volumes, counts)
    print(
        f"density map: contrast 99th/1st percentile = "
        f"{np.quantile(densities, 0.99) / np.quantile(densities, 0.01):.0f}x"
    )

    # --- Basin Spanning Tree (Figure 6) ---------------------------------
    parents = basin_spanning_tree(densities, graph.neighbors)
    labels = clusters_from_parents(parents)
    labels = merge_small_clusters(labels, densities, graph.neighbors, min_size=3)
    point_clusters = labels[assignment]
    peaks = np.unique(labels)
    print(f"\nBasin Spanning Tree: {len(peaks)} density peaks / clusters")

    keep = sample.labels != CLASS_OUTLIER
    agreement = cluster_class_agreement(point_clusters[keep], sample.labels[keep])
    print(
        f"cluster/spectral-class agreement: {agreement:.1%} "
        f"(paper: 92% on its 100K subset)"
    )
    print("\nlargest clusters and their majority class:")
    sizes = {int(p): int((point_clusters == p).sum()) for p in peaks}
    for peak in sorted(peaks, key=lambda p: -sizes[int(p)])[:6]:
        members = sample.labels[point_clusters == peak]
        majority = np.bincount(members).argmax()
        purity = (members == majority).mean()
        print(
            f"  cluster@peak{int(peak):>5}: {sizes[int(peak)]:>6} objects, "
            f"majority {CLASS_NAMES[int(majority)]:<8} (purity {purity:.0%})"
        )

    # --- outlier detection ------------------------------------------------
    point_density = densities[assignment]
    threshold = np.quantile(point_density, 0.02)
    flagged = point_density <= threshold
    true_outliers = sample.labels == CLASS_OUTLIER
    recall = flagged[true_outliers].mean()
    precision = true_outliers[flagged].mean()
    print(
        f"\noutlier detection (lowest 2% density): recall={recall:.0%}, "
        f"precision={precision:.0%} against a {true_outliers.mean():.1%} base rate"
    )


if __name__ == "__main__":
    main()
