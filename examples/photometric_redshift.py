"""Photometric redshift estimation (§4.1, Figures 7 and 8).

Reproduces the paper's comparison end to end:

1. generate a reference set (colors + spectroscopic redshifts) and an
   unknown set, both from the template-spectra pipeline with realistic
   per-band calibration offsets;
2. estimate redshifts with the classic template-fitting method, whose
   templates do not know the calibration offsets (Figure 7's scatter);
3. estimate with the paper's method -- k-NN over the kd-tree-indexed
   reference set plus a local low-order polynomial fit (Figure 8);
4. print the error comparison and an ASCII scatter of both estimators.

Run:  python examples/photometric_redshift.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    KnnPolyRedshiftEstimator,
    TemplateFitEstimator,
    make_photoz_dataset,
    regression_report,
)


def ascii_scatter(estimated, truth, title, bins=18, z_max=0.55):
    """A terminal rendition of the Figure 7/8 estimated-vs-true panels."""
    grid = np.zeros((bins, bins), dtype=int)
    for z_est, z_true in zip(estimated, truth):
        col = min(int(z_true / z_max * bins), bins - 1)
        row = min(int(z_est / z_max * bins), bins - 1)
        grid[bins - 1 - row, col] += 1
    shades = " .:+*#@"
    print(f"\n{title}")
    print("estimated z")
    for r, row in enumerate(grid):
        marks = "".join(
            shades[min(int(np.log2(c + 1)), len(shades) - 1)] for c in row
        )
        diag = bins - 1 - r
        line = list(marks)
        if line[diag] == " ":
            line[diag] = "\\"  # the ideal diagonal
        print("  |" + "".join(line))
    print("  +" + "-" * bins + "  true z")


def main() -> None:
    print("building reference (2%) and unknown sets from template spectra...")
    dataset = make_photoz_dataset(
        num_reference=3000, num_unknown=600, seed=7
    )
    print(
        f"reference: {dataset.num_reference} galaxies with measured z; "
        f"unknown: {dataset.num_unknown}"
    )

    # --- Figure 7: template fitting with calibration systematics -------
    template = TemplateFitEstimator(
        templates=dataset.templates, filters=dataset.filters
    )
    print(f"\ntemplate fitting over a {template.grid_size}-model (z, type) grid...")
    z_template = template.estimate(dataset.unknown_magnitudes)
    report_template = regression_report(z_template, dataset.unknown_redshifts)

    # --- Figure 8: k-NN + local polynomial over the indexed reference --
    db = Database.in_memory(buffer_pages=None)
    knn = KnnPolyRedshiftEstimator(
        db,
        dataset.reference_magnitudes,
        dataset.reference_redshifts,
        k=32,
        degree=1,
    )
    print("k-NN + local polynomial fit through the kd-tree index...")
    z_knn = knn.estimate(dataset.unknown_magnitudes)
    report_knn = regression_report(z_knn, dataset.unknown_redshifts)

    ascii_scatter(z_template, dataset.unknown_redshifts,
                  "Figure 7 analog: template fitting (calibration scatter)")
    ascii_scatter(z_knn, dataset.unknown_redshifts,
                  "Figure 8 analog: k-NN + polynomial fit")

    print("\n              rms      bias     median|err|  outliers(>0.1)")
    print(
        f"template   {report_template['rms']:.4f}  {report_template['bias']:+.4f}"
        f"   {report_template['median_abs']:.4f}      {report_template['outlier_rate']:.1%}"
    )
    print(
        f"kNN+poly   {report_knn['rms']:.4f}  {report_knn['bias']:+.4f}"
        f"   {report_knn['median_abs']:.4f}      {report_knn['outlier_rate']:.1%}"
    )
    reduction = 1.0 - report_knn["rms"] / report_template["rms"]
    print(
        f"\nerror reduction: {reduction:.0%} "
        f"(the paper reports 'average error decreased by more than 50%')"
    )


if __name__ == "__main__":
    main()
