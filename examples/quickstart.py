"""Quickstart: index a multidimensional table and query it spatially.

Builds a synthetic SDSS-like color-space table, indexes it three ways
(kd-tree, sampled Voronoi tessellation, layered uniform grid), and runs
the paper's three query types: a complex polyhedron selection, a
k-nearest-neighbor lookup, and an adaptive distribution-following
sample.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Box,
    Database,
    KdTreeIndex,
    LayeredGridIndex,
    VoronoiIndex,
    knn_boundary_points,
    polyhedron_full_scan,
    sdss_color_sample,
)
from repro.datasets import QueryWorkload

BANDS = ["u", "g", "r", "i", "z"]


def main() -> None:
    # 1. A 100K-object sample of the 5-D magnitude space (u, g, r, i, z).
    sample = sdss_color_sample(100_000, seed=42)
    print(f"dataset: {sample.num_points} objects, 5 dimensions")

    # 2. One database; each index materializes its own clustered table.
    db = Database.in_memory(buffer_pages=4096)
    kd = KdTreeIndex.build(db, "mag_kd", sample.columns(), BANDS)
    voronoi = VoronoiIndex.build(
        db, "mag_voronoi", sample.columns(), BANDS, num_seeds=1000
    )
    grid = LayeredGridIndex.build(db, "mag_grid", sample.columns(), BANDS)
    stats = kd.tree.leaf_statistics()
    print(
        f"kd-tree: {int(stats['num_levels'])} levels, "
        f"{int(stats['num_leaves'])} leaves, "
        f"~{stats['mean_leaf_size']:.0f} rows/leaf (the paper's sqrt-N rule)"
    )

    # 3. A complex spatial query (the Figure 2 family): a conjunction of
    #    linear inequalities over magnitudes, evaluated as a polyhedron.
    workload = QueryWorkload(sample.magnitudes, seed=0)
    query = workload.figure2_query()
    print(f"\nquery (SkyServer style):\n  WHERE {query.sql()[:100]}...")
    poly = query.polyhedron(BANDS)

    rows, kd_stats = kd.query_polyhedron(poly)
    _, scan_stats = polyhedron_full_scan(kd.table, BANDS, poly)
    _, vor_stats = voronoi.query_polyhedron(poly)
    print(
        f"  kd-tree:   {kd_stats.rows_returned} rows, {kd_stats.pages_touched} pages"
    )
    print(
        f"  voronoi:   {vor_stats.rows_returned} rows, {vor_stats.pages_touched} pages"
    )
    print(
        f"  full scan: {scan_stats.rows_returned} rows, {scan_stats.pages_touched} pages"
        f"  -> index reads {scan_stats.pages_touched / max(kd_stats.pages_touched, 1):.1f}x fewer pages"
    )

    # 4. k nearest neighbors by the paper's boundary-point algorithm.
    target = sample.magnitudes[0]
    neighbors = knn_boundary_points(kd, target, k=10)
    print(
        f"\n10-NN of object 0: distances "
        f"{np.round(neighbors.distances[:3], 3)}... "
        f"({neighbors.stats.extra['boxes_examined']} of "
        f"{kd.tree.num_leaves} kd-boxes examined)"
    )

    # 5. An adaptive sample: ~1000 distribution-following points from a
    #    color-space window, reading only the pages that contribute.
    window = Box.cube(np.median(sample.magnitudes, axis=0), 1.5)
    result = grid.sample_box(window, 1000)
    print(
        f"\nadaptive sample: {len(result.row_ids)} points from "
        f"{result.layers_used} layers, {result.stats.pages_touched} of "
        f"{grid.table.num_pages} pages read"
    )


if __name__ == "__main__":
    main()
