"""Large-scale structure of the Universe (§5.2, Figure 14).

"Our other point cloud visualization is that of the SDSS ra, dec,
redshift space ... This visualization thus shows the 3D spatial
distribution of the celestial objects measured by the SDSS telescope, as
seen from the Earth.  This shows the large scale structure of the
universe (e.g. Finger of God structures) in an adaptive manner."

This example generates a structured (ra, dec, z) catalog, converts it to
3-D positions with Hubble's law, indexes it with the layered grid, and
drives the adaptive point-cloud producer through a zoom into a galaxy
cluster -- printing an ASCII slice at each level of detail so the
"fingers" are visible in a terminal.

Run:  python examples/large_scale_structure.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdaptivePointCloudProducer,
    Box,
    Camera,
    Database,
    LayeredGridIndex,
    PluginHost,
    RecordingConsumer,
    sky_survey_sample,
)


def ascii_slice(points, box, width=70, height=22, axes=(0, 2)):
    """Project a 3-D point set onto two axes as terminal art."""
    grid = np.zeros((height, width), dtype=int)
    a, b = axes
    span_a = box.hi[a] - box.lo[a]
    span_b = box.hi[b] - box.lo[b]
    for point in points:
        col = int((point[a] - box.lo[a]) / span_a * (width - 1))
        row = int((point[b] - box.lo[b]) / span_b * (height - 1))
        if 0 <= col < width and 0 <= row < height:
            grid[height - 1 - row, col] += 1
    shades = " .:+*#@"
    for row in grid:
        print("".join(shades[min(int(np.log2(c + 1)), len(shades) - 1)] for c in row))


def main() -> None:
    print("generating a structured (ra, dec, redshift) catalog...")
    sky = sky_survey_sample(120_000, num_clusters=25, seed=14)
    xyz = sky.cartesian()
    print(
        f"{sky.num_objects} galaxies; Hubble's law places them "
        f"{np.linalg.norm(xyz, axis=1).min():.0f}-"
        f"{np.linalg.norm(xyz, axis=1).max():.0f} Mpc away"
    )

    db = Database.in_memory(buffer_pages=4096)
    data = {"x": xyz[:, 0], "y": xyz[:, 1], "z": xyz[:, 2]}
    grid = LayeredGridIndex.build(db, "universe", data, ["x", "y", "z"])
    producer = AdaptivePointCloudProducer(grid, target_points=4000)
    screen = RecordingConsumer()
    host = PluginHost(
        [
            {"name": "universe", "plugin": producer},
            {"name": "screen", "plugin": screen, "inputs": ["universe"]},
        ]
    )
    host.start()

    # Zoom from the full survey volume into the densest cluster.
    cluster_positions = xyz[sky.kind == 1]
    from scipy.spatial import cKDTree

    tree = cKDTree(cluster_positions)
    counts = tree.query_ball_point(cluster_positions[::50], 30.0, return_length=True)
    target = cluster_positions[::50][int(np.argmax(counts))]

    for step, (factor, label) in enumerate(
        [
            (1.0, "the full survey volume (compare Figure 14)"),
            (0.3, "a supercluster neighborhood"),
            (0.08, "one galaxy cluster -- note the radial 'Finger of God'"),
        ]
    ):
        camera = Camera(grid.bounds).zoomed(factor)
        if step > 0:
            camera = camera.moved_to(target)
        view = camera.view_box.intersection(grid.bounds) or grid.bounds
        host.set_camera(Camera(view))
        host.run_until_idle(max_frames=50)
        geometry = producer.get_output()
        print(f"\n=== zoom {factor:g}: {label} ===")
        print(
            f"{geometry.num_points} points in view "
            f"(layers used: {geometry.attributes['layers_used']}, "
            f"pages: {geometry.attributes['pages_touched']}/{grid.table.num_pages})"
        )
        ascii_slice(geometry.points, view)

    host.shutdown()


if __name__ == "__main__":
    main()
