"""Target selection: the §2.2 workflow end to end.

"A typical query classifies objects based on their colors, for example
separates quasars from other types.  To do this one should identify a
few quasars with other measurements (the training set) and then draw a
surface in 5D that best differentiates them from other objects."

The run: take a small spectroscopically-confirmed quasar training set
(<1% of objects have spectra, per the paper), draw the convex hull of
their colors, push the hull through the query planner (which picks the
kd-tree for this selective shape), and score the selected candidates
against the hidden truth.  Then refine the candidate list with the
boundary-point k-NN: keep candidates whose nearest confirmed neighbor
is close.

Run:  python examples/target_selection.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ConvexHullSelector,
    Database,
    KdTreeIndex,
    QueryPlanner,
    knn_boundary_points,
    sdss_color_sample,
)
from repro.datasets.sdss import CLASS_QUASAR

BANDS = ["u", "g", "r", "i", "z"]


def main() -> None:
    sample = sdss_color_sample(120_000, seed=21)
    print(f"catalog: {sample.num_points} objects; "
          f"{(sample.labels == CLASS_QUASAR).mean():.1%} are quasars (hidden truth)")

    db = Database.in_memory(buffer_pages=4096)
    index = KdTreeIndex.build(db, "catalog", sample.columns(), BANDS)

    # The training set: a few hundred spectroscopically confirmed quasars
    # (the paper: spectra exist "for less than 1% of the objects").
    quasar_rows = np.flatnonzero(sample.labels == CLASS_QUASAR)
    rng = np.random.default_rng(3)
    training_rows = rng.choice(quasar_rows, 300, replace=False)
    training = sample.magnitudes[training_rows]
    print(f"training set: {len(training)} confirmed quasars")

    # Draw the 5-D hull and run it through the planner.
    hull = ConvexHullSelector(training, margin=0.02)
    print(f"convex hull: {hull.num_facets} facets in 5-D")
    planner = QueryPlanner(index)
    planned = planner.execute(hull.polyhedron)
    print(
        f"planner chose the {planned.chosen_path} "
        f"(estimated selectivity {planned.estimated_selectivity:.3f}); "
        f"{planned.stats.rows_returned} candidates from "
        f"{planned.stats.pages_touched}/{index.table.num_pages} pages"
    )
    candidates = planned.rows["_row_id"]
    candidate_classes = planned.rows["cls"]
    purity = (candidate_classes == CLASS_QUASAR).mean()
    completeness = (candidate_classes == CLASS_QUASAR).sum() / len(quasar_rows)
    print(f"hull selection: purity {purity:.1%}, completeness {completeness:.1%}")

    # Refinement: require a confirmed quasar within a small color radius.
    print("\nrefining with boundary-point k-NN against the training set...")
    training_db = Database.in_memory(buffer_pages=None)
    training_index = KdTreeIndex.build(
        training_db,
        "training",
        {band: training[:, i] for i, band in enumerate(BANDS)},
        BANDS,
        num_levels=5,
    )
    keep = []
    candidate_mags = np.column_stack([planned.rows[b] for b in BANDS])
    for row in range(len(candidates)):
        nearest = knn_boundary_points(training_index, candidate_mags[row], 1)
        keep.append(nearest.distances[0] < 0.35)
    keep = np.array(keep)
    refined_classes = candidate_classes[keep]
    print(
        f"refined: {keep.sum()} candidates, purity "
        f"{(refined_classes == CLASS_QUASAR).mean():.1%}, completeness "
        f"{(refined_classes == CLASS_QUASAR).sum() / len(quasar_rows):.1%}"
    )


if __name__ == "__main__":
    main()
