"""SkyServer workload replay (Figure 2 / Figure 5) with I/O accounting.

Generates a mix of complex spatial queries in the family the paper mined
from the SkyServer logs, runs each through the kd-tree index, the
sampled Voronoi index, and the full-scan baseline on a *disk-backed*
database with a small buffer pool, and prints the paper's Figure 5
story: page reads vs selectivity.

Run:  python examples/skyserver_workload.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import (
    Database,
    KdTreeIndex,
    QueryWorkload,
    VoronoiIndex,
    polyhedron_full_scan,
    sdss_color_sample,
)

BANDS = ["u", "g", "r", "i", "z"]


def main() -> None:
    sample = sdss_color_sample(60_000, seed=11)
    with tempfile.TemporaryDirectory() as root:
        # A deliberately small buffer pool: the out-of-core regime.
        print("creating a disk-backed database (file per page, 256-page buffer pool)...")
        db = Database.on_disk(root, buffer_pages=256)
        kd = KdTreeIndex.build(db, "mag_kd", sample.columns(), BANDS)
        voronoi = VoronoiIndex.build(
            db, "mag_vor", sample.columns(), BANDS, num_seeds=800
        )
        print(
            f"table: {kd.table.num_rows} rows over {kd.table.num_pages} pages "
            f"({db.io_stats.bytes_written / 1e6:.0f} MB written)"
        )

        workload = QueryWorkload(sample.magnitudes, seed=2006)
        queries = workload.mixed(12, [0.002, 0.02, 0.1])
        queries.append(workload.figure2_query())

        # The full log-mining loop: queries arrive as WHERE-clause *text*
        # (the form the SkyServer log stores), get parsed back into
        # expression trees, and convert to polyhedra for the indexes.
        from repro import expression_to_polyhedron, parse_where

        texts = [query.sql() for query in queries]
        parsed = [parse_where(text) for text in texts]
        print(f"\nparsed {len(texts)} textual WHERE clauses from the 'log'")
        print(f"example: WHERE {texts[-1][:90]}...")

        print("\nreplaying the workload (cold cache per query):")
        print("kind        selectivity  kd_pages  vor_pages  scan_pages  best_speedup")
        total = kd.table.num_rows
        for query, expr in zip(queries, parsed):
            poly = expression_to_polyhedron(expr, BANDS)
            db.cold_cache()
            _, kd_stats = kd.query_polyhedron(poly)
            db.cold_cache()
            _, vor_stats = voronoi.query_polyhedron(poly)
            db.cold_cache()
            _, scan_stats = polyhedron_full_scan(kd.table, BANDS, poly)
            assert kd_stats.rows_returned == scan_stats.rows_returned
            best = min(kd_stats.pages_touched, vor_stats.pages_touched)
            print(
                f"{query.kind:<11} {scan_stats.rows_returned / total:>10.4f}"
                f"  {kd_stats.pages_touched:>8}  {vor_stats.pages_touched:>9}"
                f"  {scan_stats.pages_touched:>10}"
                f"  {scan_stats.pages_touched / max(best, 1):>11.1f}x"
            )

        print(
            "\nthe Figure 5 story: the more selective the query, the larger the "
            "index's page advantage; near full-table selectivity the scan wins."
        )


if __name__ == "__main__":
    main()
