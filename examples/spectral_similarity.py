"""Spectral similarity search (§4.2, Figures 9 and 10).

The paper: SDSS spectra are ~3000-dimensional vectors; indexing that
space directly would be prohibitive, but the first 5 Karhunen-Loeve
(principal) components "describe most of the physical characteristics",
so the same kd-tree + k-NN machinery built for the magnitude space runs
over the 5-D feature space.

This example builds a noisy spectrum library (ellipticals, starbursts,
quasars, stars at assorted redshifts), compresses it with PCA, indexes
the features, and then -- like Figures 9 and 10 -- shows the two most
similar spectra for an elliptical galaxy query and a quasar query.  It
finishes with the Bruzual-Charlot-style exercise: matching an observed
spectrum against a synthesis grid to "reverse engineer" its physical
parameters.

Run:  python examples/spectral_similarity.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Database,
    KdTreeIndex,
    PrincipalComponents,
    SpectrumTemplates,
    knn_boundary_points,
)

CLASS_NAMES = {0: "elliptical", 1: "starburst", 2: "quasar", 3: "star"}


def sparkline(spectrum, width=64):
    """Render a spectrum as a one-line ASCII profile."""
    blocks = " _.-=*#%@"
    resampled = spectrum[:: max(1, len(spectrum) // width)][:width]
    lo, hi = resampled.min(), resampled.max()
    scale = (resampled - lo) / (hi - lo + 1e-12)
    return "".join(blocks[int(s * (len(blocks) - 1))] for s in scale)


def build_library(rng, per_class=150, snr=40.0):
    templates = SpectrumTemplates()
    spectra, classes, redshifts = [], [], []
    for _ in range(per_class):
        z = rng.uniform(0.0, 0.3)
        spectra.append(templates.observe(templates.galaxy_blend(rng.uniform(0, 0.2), z), snr, rng))
        classes.append(0)
        redshifts.append(z)
        spectra.append(templates.observe(templates.galaxy_blend(rng.uniform(0.8, 1.0), z), snr, rng))
        classes.append(1)
        redshifts.append(z)
        spectra.append(templates.observe(templates.quasar(z), snr, rng))
        classes.append(2)
        redshifts.append(z)
        spectra.append(templates.observe(templates.star(rng.uniform(4000, 9000)), snr, rng))
        classes.append(3)
        redshifts.append(0.0)
    return templates, np.array(spectra), np.array(classes), np.array(redshifts)


def show_query(index, features, spectra, classes, redshifts, query_row, label):
    print(f"\n--- {label} (like Figure {'9' if label.startswith('elliptical') else '10'}) ---")
    print(f"query   [{CLASS_NAMES[classes[query_row]]:>10} z={redshifts[query_row]:.2f}] "
          f"{sparkline(spectra[query_row])}")
    result = knn_boundary_points(index, features[query_row], 3)
    rows = index.table.gather(result.row_ids)
    shown = 0
    for rank in range(len(result.row_ids)):
        original = int(rows["orig"][rank])
        if original == query_row:
            continue  # skip the query itself
        print(
            f"match {shown + 1} [{CLASS_NAMES[int(rows['cls'][rank])]:>10} "
            f"z={redshifts[original]:.2f}] {sparkline(spectra[original])} "
            f"(dist {result.distances[rank]:.4f})"
        )
        shown += 1
        if shown == 2:
            break


def main() -> None:
    rng = np.random.default_rng(9)
    print("synthesizing a 600-spectrum library (3000 wavelength samples each)...")
    templates, spectra, classes, redshifts = build_library(rng)

    print("Karhunen-Loeve transform -> 5-D feature vectors...")
    pca = PrincipalComponents(5)
    features = pca.fit_transform(spectra)
    captured = pca.explained_variance_ratio.sum()
    print(f"first 5 components capture {captured:.0%} of the variance")

    db = Database.in_memory(buffer_pages=None)
    data = {f"pc{i}": features[:, i] for i in range(5)}
    data["cls"] = classes
    data["orig"] = np.arange(len(classes))
    index = KdTreeIndex.build(db, "spectra", data, [f"pc{i}" for i in range(5)])

    elliptical_query = int(np.flatnonzero(classes == 0)[0])
    quasar_query = int(np.flatnonzero(classes == 2)[0])
    show_query(index, features, spectra, classes, redshifts, elliptical_query,
               "elliptical galaxy query")
    show_query(index, features, spectra, classes, redshifts, quasar_query,
               "quasar query")

    # --- simulation comparison: reverse-engineering physical parameters
    print("\n--- Bruzual-Charlot-style parameter recovery ---")
    ages = np.linspace(0, 1, 12)
    dusts = np.linspace(0, 1, 8)
    grid_specs = np.array(
        [templates.synthesized(a, d, z=0.05) for a in ages for d in dusts]
    )
    grid_params = np.array([(a, d) for a in ages for d in dusts])
    grid_features = pca.transform(grid_specs)
    sim_data = {f"pc{i}": grid_features[:, i] for i in range(5)}
    sim_data["age"] = grid_params[:, 0]
    sim_data["dust"] = grid_params[:, 1]
    sim_index = KdTreeIndex.build(
        db, "bc_grid", sim_data, [f"pc{i}" for i in range(5)], num_levels=4
    )
    true_age, true_dust = 0.62, 0.31
    observed = templates.observe(
        templates.synthesized(true_age, true_dust, z=0.05), snr=60.0, rng=rng
    )
    feature = pca.transform(observed[np.newaxis, :])[0]
    nearest = knn_boundary_points(sim_index, feature, 3)
    got = sim_index.table.gather(nearest.row_ids)
    print(f"observed spectrum with true age={true_age:.2f}, dust={true_dust:.2f}")
    print(
        f"recovered from 3 nearest grid models: age={got['age'].mean():.2f}, "
        f"dust={got['dust'].mean():.2f}"
    )


if __name__ == "__main__":
    main()
