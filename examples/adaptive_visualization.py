"""Adaptive visualization session (§5, Figures 11-16), headless.

Reproduces the paper's client/server interaction without a renderer:
producers for the adaptive point cloud (layered grid), kd-tree boxes,
and multi-level Delaunay / Voronoi structure all react to camera events,
fetch geometry from the database, cache results, and hand GeometrySets
to a recording consumer.  A zoom-in / zoom-out session prints what a
frame would have drawn and demonstrates the zero-latency cached path.

Run:  python examples/adaptive_visualization.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdaptivePointCloudProducer,
    Database,
    DelaunayEdgeProducer,
    KdBoxProducer,
    KdTreeIndex,
    LayeredGridIndex,
    PluginHost,
    PrincipalComponents,
    RecordingConsumer,
    VoronoiCellProducer,
    sdss_color_sample,
)
from repro.tessellation import DelaunayGraph


def main() -> None:
    print("loading the magnitude table and projecting to 3 principal components...")
    sample = sdss_color_sample(80_000, seed=3)
    pca = PrincipalComponents(3, normalize=False)
    coords = pca.fit_transform(sample.magnitudes)
    data = {"p1": coords[:, 0], "p2": coords[:, 1], "p3": coords[:, 2]}

    db = Database.in_memory(buffer_pages=2048)
    grid = LayeredGridIndex.build(db, "viz_points", data, ["p1", "p2", "p3"])
    kd = KdTreeIndex.build(db, "viz_kd", data, ["p1", "p2", "p3"])
    rng = np.random.default_rng(0)
    print("building the 3-level Delaunay pyramid (1K / 4K / 16K scaled)...")
    levels = [
        DelaunayGraph(coords[rng.choice(len(coords), n, replace=False)])
        for n in (250, 1000, 4000)
    ]

    # The plugin graph of Figure 11: producers -> (pipes) -> consumer.
    points = AdaptivePointCloudProducer(grid, target_points=2000, threaded=True)
    boxes = KdBoxProducer(kd, target_boxes=60)
    delaunay = DelaunayEdgeProducer(levels, target_edges=300)
    voronoi = VoronoiCellProducer(levels, target_cells=40)
    screen = RecordingConsumer()
    host = PluginHost(
        [
            {"name": "points", "plugin": points},
            {"name": "kdboxes", "plugin": boxes},
            {"name": "delaunay", "plugin": delaunay},
            {"name": "voronoi", "plugin": voronoi},
            {
                "name": "screen",
                "plugin": screen,
                "inputs": ["points", "kdboxes", "delaunay", "voronoi"],
            },
        ]
    )
    host.start()
    camera = host.suggest_initial_camera()
    dense_center = np.median(coords, axis=0)

    print("\nzoom session (towards the dense core and back out):")
    print("zoom   points  kd_boxes  delaunay_edges  lod  db_queries  cache_hits")
    for factor in (1.0, 0.5, 0.25, 0.12, 0.25, 0.5, 1.0):
        host.set_camera(camera.zoomed(factor).moved_to(dense_center))
        host.run_until_idle(max_frames=200)
        point_geom = points.get_output()
        box_geom = boxes.get_output()
        edge_geom = delaunay.get_output()
        print(
            f"{factor:<6} {point_geom.num_points:<7} {box_geom.num_boxes:<9}"
            f" {edge_geom.num_lines:<15} {edge_geom.attributes['level']:<4}"
            f" {points.db_queries:<11} {points.cache.hits}"
        )

    print(
        f"\n{host.frames_run} frame cycles, {len(screen.frames)} geometry "
        f"deliveries; the zoom-out leg was served entirely from the "
        f"producer caches (db_queries stopped growing)."
    )
    host.shutdown()


if __name__ == "__main__":
    main()
