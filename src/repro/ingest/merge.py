"""The background merge: drain the delta out-of-place and swap layouts.

Waffle-style out-of-place reorganization (PAPERS.md: Moti & Papadias):
the merge never touches the pages in-flight queries are reading.  It

1. fences the merge in the ingest WAL (``merge_begin``),
2. reads the live main rows (tombstones dropped) plus the live delta
   inserts,
3. bulk-loads a *new generation* of the table -- a fresh median-split
   kd-tree over old + new points, a freshly clustered page file under
   the physical namespace ``<name>@g<generation>``, and regenerated
   zone maps (``Table.create`` builds them as it emits pages),
4. swaps the new generation in atomically under the catalog lock
   (table, index, and a fresh empty delta tier in one critical
   section), bumping ``layout_version`` so every fingerprint and cache
   above invalidates through the existing mutation listeners,
5. commits the fence (``merge_commit``) and truncates the table's
   redo records -- the merged generation carries them now.

In-flight queries that already resolved the old table object keep
reading its pages and its (frozen) delta tier; the superseded physical
namespace is retired one merge later, giving them a full merge cycle
to finish.  Writers are excluded for the duration (the tier being
drained must not move), readers never are.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.ingest.delta import DeltaSnapshot

__all__ = ["MergeReport", "merge_table"]


@dataclass
class MergeReport:
    """What one merge did, for logs, benchmarks, and tests."""

    table: str
    generation: int
    rows_before: int
    rows_after: int
    delta_rows_applied: int
    tombstones_dropped: int
    seconds: float
    merged: bool = True

    def as_dict(self) -> dict:
        """JSON-friendly form (crosses the worker wire protocol)."""
        return {
            "table": self.table,
            "generation": self.generation,
            "rows_before": self.rows_before,
            "rows_after": self.rows_after,
            "delta_rows_applied": self.delta_rows_applied,
            "tombstones_dropped": self.tombstones_dropped,
            "seconds": self.seconds,
            "merged": self.merged,
        }


def _live_main_columns(table, snapshot: DeltaSnapshot) -> dict[str, np.ndarray]:
    """All main rows minus tombstoned ones, read page by page (raw)."""
    names = table.column_names
    chunks: dict[str, list[np.ndarray]] = {c: [] for c in names}
    kept = 0
    for page in table.scan():
        keep = snapshot.alive(page.row_ids())
        kept += int(keep.sum())
        for c in names:
            chunks[c].append(page.columns[c][keep])
    if not kept:
        return {c: np.empty(0, dtype=table.dtype_of(c)) for c in names}
    return {c: np.concatenate(chunks[c]) for c in names}


def merge_table(
    database,
    name: str,
    num_levels: int | None = None,
    rows_per_page: int | None = None,
) -> MergeReport:
    """Drain ``name``'s delta into a new bulk-loaded generation.

    No-op (``merged=False``) when the table has no pending churn.
    Raises ``ValueError`` if the merge would leave a kd-indexed table
    empty -- an empty point set cannot carry a kd-tree, and the caller
    should drop the table instead.
    """
    from repro.bitmap.index import BitmapIndex
    from repro.core.kdtree import KdTree, KdTreeIndex
    from repro.db.errors import StorageFault
    from repro.db.table import Table

    manager = database.ingest
    state = manager.state(name)
    table = database.table(name)
    if state is None or state.delta.churn == 0:
        return MergeReport(
            table=name,
            generation=state.generation if state else 0,
            rows_before=table.num_rows,
            rows_after=table.num_rows,
            delta_rows_applied=0,
            tombstones_dropped=0,
            seconds=0.0,
            merged=False,
        )

    started = time.monotonic()
    with state.write_lock:  # writers wait; readers keep going
        snapshot = state.delta.snapshot()
        new_generation = state.generation + 1
        wal = database.ingest_wal
        if wal is not None:
            wal.append_merge_begin(name, new_generation)

        live = _live_main_columns(table, snapshot)
        merged = {
            c: np.concatenate([live[c], snapshot.columns[c]])
            for c in table.column_names
        }
        num_rows = len(merged[table.column_names[0]])
        index = database.index_if_exists(f"{name}.kdtree")
        indexes = {}
        drop_indexes: list[str] = []
        physical = f"{name}@g{new_generation}"
        per_page = rows_per_page if rows_per_page is not None else table.rows_per_page
        if index is not None:
            if num_rows == 0:
                raise ValueError(
                    f"merge would leave kd-indexed table {name!r} empty; "
                    "drop the table instead"
                )
            dims = index.dims
            points = np.column_stack(
                [np.asarray(merged[d], dtype=np.float64) for d in dims]
            )
            # Median-split rebuild over old + new points.  Levels follow
            # the old tree unless the table shrank below its capacity.
            cap = int(np.floor(np.log2(max(num_rows, 1)))) + 1
            levels = (
                min(index.tree.num_levels, cap) if num_levels is None
                else num_levels
            )
            tree = KdTree(
                points, num_levels=max(1, levels),
                axis_policy=index.tree.axis_policy,
            )
            leaf_ids = np.empty(num_rows, dtype=np.int64)
            leaf_post = tree.leaf_post_order_ids()
            for j, leaf in enumerate(range(tree.first_leaf, 2 * tree.first_leaf)):
                start, end = tree.node_rows(leaf)
                leaf_ids[tree.permutation[start:end]] = leaf_post[j]
            merged["kd_leaf"] = leaf_ids
            new_table = Table.create(
                database,
                name,
                merged,
                rows_per_page=per_page,
                clustered_by=("kd_leaf",),
                physical_name=physical,
            )
            serving_tree = tree
            if getattr(index.tree, "layout", None) is not None:
                # The outgoing index was paged; page the new generation
                # too, under the new physical namespace.  A write fault
                # degrades to serving the in-memory tree (the kd analog
                # of the bitmap's drop-on-rebuild-failure below: the
                # answers stay correct, only the paging is lost).
                from repro.core.kdpaged import paged_tree_for

                serving_tree = paged_tree_for(database, physical, tree)
            indexes[f"{name}.kdtree"] = KdTreeIndex(
                database, new_table, serving_tree, dims
            )
            old_bitmap = database.index_if_exists(f"{name}.bitmap")
            if old_bitmap is not None:
                # Rebuild the bitmap index over the new generation so it
                # swaps in atomically with the table and kd-tree.  The
                # column arrays are re-read from the new table (Table
                # .create re-clusters, so ``merged`` is not in row
                # order); a storage fault during the rebuild drops the
                # bitmap entirely -- a stale entry would start raising
                # once the old physical namespace retires, whereas no
                # entry just degrades the planner to kd/scan.
                try:
                    indexes[f"{name}.bitmap"] = BitmapIndex.build(
                        database,
                        name,
                        list(old_bitmap.dims),
                        num_bins=old_bitmap.num_bins,
                        register=False,
                        table=new_table,
                        # A tuned bitmap may cover a dims subset while
                        # queries stay in the full coordinate space;
                        # the rebuild must keep that axis mapping.
                        table_dims=list(old_bitmap.query_dims),
                    )
                except StorageFault:
                    drop_indexes.append(f"{name}.bitmap")
        else:
            new_table = Table.create(
                database,
                name,
                merged,
                rows_per_page=per_page,
                clustered_by=table.clustered_by,
                physical_name=physical,
            )

        retire = manager.take_retirees(name, table.physical_name)
        database.swap_table(
            name, new_table, indexes=indexes, generation=new_generation,
            retire=retire,
        )
        for key in drop_indexes:
            database.drop_index(key)
        state.delta.freeze()
        if wal is not None:
            commit_seq = wal.append_merge_commit(name, new_generation)
            wal.truncate_table(name, commit_seq)

    return MergeReport(
        table=name,
        generation=new_generation,
        rows_before=table.num_rows,
        rows_after=num_rows,
        delta_rows_applied=snapshot.num_rows,
        tombstones_dropped=snapshot.num_tombstones,
        seconds=time.monotonic() - started,
        merged=True,
    )
