"""The delta tier: a small write-optimized side table per base table.

Inserts and deletes land here instead of rewriting the immutable main
pages.  The tier keeps appended column chunks plus two tombstone sets
(main-row ids and delta ordinals) behind a lock, and hands queries an
immutable :class:`DeltaSnapshot` -- one snapshot per query gives each
query a consistent view regardless of concurrent writers (the
linearization point of a merge-on-read query is the instant its
snapshot is taken).

Delta rows get row ids in a reserved band starting at ``DELTA_BASE`` so
they can never collide with main-table row ids; sharded executors embed
the shard id in the band with ``SHARD_STRIDE``.

Snapshots index their points with a *layered grid sized for small N*
(the paper's §3.1 fallback index): a coarse uniform grid over the
delta's bounding box whose cells are classified inside/partial/outside
against the query polyhedron -- inside cells contribute wholesale,
partial cells filter their few points, outside cells are skipped.  For
a delta of a few thousand rows this keeps merge-on-read overhead to
microseconds without maintaining a kd-tree per write.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.geometry.boxes import Box, BoxRelation
from repro.geometry.halfspace import Polyhedron

__all__ = [
    "DELTA_BASE",
    "SHARD_STRIDE",
    "DeltaGrid",
    "DeltaSnapshot",
    "DeltaTier",
    "is_delta_id",
]

#: Row ids at or above this value denote delta-tier rows.
DELTA_BASE = 1 << 48
#: Width of one shard's delta-id band inside the delta range.
SHARD_STRIDE = 1 << 32
#: Build a grid only past this size; below it brute force is faster.
_GRID_MIN_POINTS = 256


def is_delta_id(row_ids: np.ndarray) -> np.ndarray:
    """Boolean mask of which row ids belong to the delta band."""
    return np.asarray(row_ids) >= DELTA_BASE


class DeltaGrid:
    """A one-level uniform grid over a snapshot's points.

    Resolution scales with N (``ceil(n ** 1/d)`` cells per axis, capped)
    so the expected occupancy stays around one point per cell -- the
    "sized for small N" part: the grid is rebuilt from scratch at every
    snapshot, which is only viable because the delta is small by design.
    """

    def __init__(self, points: np.ndarray):
        self.points = points
        n, d = points.shape
        self.box = Box(points.min(axis=0), points.max(axis=0))
        per_axis = int(np.ceil(n ** (1.0 / max(d, 1))))
        self.resolution = int(np.clip(per_axis, 1, 16))
        widths = np.maximum(self.box.widths, 1e-12)
        scaled = (points - self.box.lo) / widths * self.resolution
        coords = np.clip(scaled.astype(np.int64), 0, self.resolution - 1)
        keys = np.zeros(n, dtype=np.int64)
        for axis in range(d):
            keys = keys * self.resolution + coords[:, axis]
        order = np.argsort(keys, kind="stable")
        self._order = order
        self._keys = keys[order]
        # Run boundaries: one (key, start, stop) triple per occupied cell.
        boundaries = np.flatnonzero(np.diff(self._keys)) + 1
        self._starts = np.concatenate(([0], boundaries))
        self._stops = np.concatenate((boundaries, [n]))

    def _cell_box(self, key: int) -> Box:
        d = self.box.dim
        widths = np.maximum(self.box.widths, 1e-12)
        coords = np.zeros(d)
        for axis in range(d - 1, -1, -1):
            coords[axis] = key % self.resolution
            key //= self.resolution
        lo = self.box.lo + coords * widths / self.resolution
        return Box(lo, lo + widths / self.resolution)

    def match(self, polyhedron: Polyhedron) -> np.ndarray:
        """Boolean mask (over the original point order) of points inside."""
        n = len(self.points)
        mask = np.zeros(n, dtype=bool)
        if polyhedron.classify_box(self.box) is BoxRelation.OUTSIDE:
            return mask
        for i in range(len(self._starts)):
            start, stop = self._starts[i], self._stops[i]
            members = self._order[start:stop]
            relation = polyhedron.classify_box(self._cell_box(int(self._keys[start])))
            if relation is BoxRelation.OUTSIDE:
                continue
            if relation is BoxRelation.INSIDE:
                mask[members] = True
            else:
                mask[members] = polyhedron.contains_points(self.points[members])
        return mask


class DeltaSnapshot:
    """An immutable, consistent view of a delta tier at one epoch.

    ``columns`` hold only the *live* inserted rows (insert-then-delete
    rows are already removed); ``row_ids`` are their delta-band ids and
    ``tombstones`` is the sorted array of deleted main-table row ids.
    """

    def __init__(
        self,
        epoch: int,
        columns: dict[str, np.ndarray],
        row_ids: np.ndarray,
        tombstones: np.ndarray,
        dims: tuple[str, ...] = (),
    ):
        self.epoch = epoch
        self.columns = columns
        self.row_ids = row_ids
        self.tombstones = tombstones
        self.dims = dims
        self._grid: DeltaGrid | None = None
        self._points: np.ndarray | None = None

    @property
    def num_rows(self) -> int:
        """Live inserted rows visible in this snapshot."""
        return len(self.row_ids)

    @property
    def num_tombstones(self) -> int:
        """Main-table rows this snapshot suppresses."""
        return len(self.tombstones)

    @property
    def empty(self) -> bool:
        """Whether merge-on-read can skip this snapshot entirely."""
        return self.num_rows == 0 and self.num_tombstones == 0

    def points(self, dims: tuple[str, ...] | None = None) -> np.ndarray:
        """Stacked ``(n, d)`` float64 coordinates of the live rows."""
        dims = tuple(dims) if dims is not None else self.dims
        if dims == self.dims and self._points is not None:
            return self._points
        pts = np.column_stack(
            [np.asarray(self.columns[d], dtype=np.float64) for d in dims]
        ) if self.num_rows else np.empty((0, len(dims)))
        if dims == self.dims:
            self._points = pts
        return pts

    def bounding_box(self, dims: tuple[str, ...] | None = None) -> Box | None:
        """Tight box around the live delta points (None when empty)."""
        pts = self.points(dims)
        if not len(pts):
            return None
        return Box.from_points(pts)

    def match_mask(
        self, polyhedron: Polyhedron, dims: tuple[str, ...] | None = None
    ) -> np.ndarray:
        """Which live delta rows satisfy the polyhedron."""
        pts = self.points(dims)
        if not len(pts):
            return np.zeros(0, dtype=bool)
        use_dims = tuple(dims) if dims is not None else self.dims
        if use_dims == self.dims and len(pts) >= _GRID_MIN_POINTS:
            if self._grid is None:
                self._grid = DeltaGrid(pts)
            return self._grid.match(polyhedron)
        return polyhedron.contains_points(pts)

    def match(
        self,
        polyhedron: Polyhedron,
        dims: tuple[str, ...] | None = None,
        columns: list[str] | None = None,
    ) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """Matching rows as ``(columns, row_ids)`` for result assembly."""
        mask = self.match_mask(polyhedron, dims)
        wanted = columns if columns is not None else list(self.columns)
        if not mask.any():
            empty = {c: self.columns[c][:0] for c in wanted}
            return empty, self.row_ids[:0]
        return (
            {c: self.columns[c][mask] for c in wanted},
            self.row_ids[mask],
        )

    def project(self, columns: list[str] | None = None) -> dict[str, np.ndarray]:
        """All live rows restricted to ``columns`` (all columns if None)."""
        wanted = columns if columns is not None else list(self.columns)
        return {c: self.columns[c] for c in wanted}

    def alive(self, row_ids: np.ndarray) -> np.ndarray:
        """Mask of main-table row ids *not* suppressed by a tombstone."""
        if not len(self.tombstones):
            return np.ones(len(row_ids), dtype=bool)
        pos = np.searchsorted(self.tombstones, row_ids)
        pos = np.minimum(pos, len(self.tombstones) - 1)
        return self.tombstones[pos] != row_ids


class DeltaTier:
    """The mutable write tier of one table (or one shard's table).

    Thread-safe: writers append under a lock; readers take snapshots.
    A merge *freezes* the tier it drained -- the frozen tier stays
    attached to the superseded table generation so in-flight queries
    that already resolved the old layout keep a consistent view, while
    new writes go to the fresh tier installed with the new generation.
    """

    def __init__(
        self,
        dtypes: dict[str, np.dtype],
        dims: tuple[str, ...] = (),
        base_row_id: int = DELTA_BASE,
    ):
        self.dtypes = {name: np.dtype(dt) for name, dt in dtypes.items()}
        self.dims = tuple(dims)
        self.base_row_id = base_row_id
        self._lock = threading.Lock()
        self._chunks: list[dict[str, np.ndarray]] = []
        self._num_inserted = 0
        self._main_tombstones: set[int] = set()
        self._delta_tombstones: set[int] = set()
        self._epoch = 0
        self._frozen = False
        self._snapshot: DeltaSnapshot | None = None

    # -- write side ---------------------------------------------------------

    def insert(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """Append rows; returns their delta-band row ids."""
        cast = {}
        lengths = set()
        for name, dtype in self.dtypes.items():
            if name not in columns:
                raise KeyError(f"insert missing column {name!r}")
            arr = np.ascontiguousarray(columns[name], dtype=dtype)
            cast[name] = arr
            lengths.add(len(arr))
        extra = set(columns) - set(self.dtypes)
        if extra:
            raise KeyError(f"insert has unknown columns {sorted(extra)}")
        if len(lengths) != 1:
            raise ValueError("insert columns must share one length")
        (n,) = lengths
        with self._lock:
            if self._frozen:
                raise RuntimeError("delta tier is frozen (superseded by a merge)")
            start = self._num_inserted
            self._chunks.append(cast)
            self._num_inserted += n
            self._bump()
        return np.arange(
            self.base_row_id + start, self.base_row_id + start + n, dtype=np.int64
        )

    def delete(self, row_ids: np.ndarray) -> tuple[int, int]:
        """Tombstone rows by id; returns ``(main_deleted, delta_deleted)``.

        Main-table ids are recorded for read-time suppression and merge-
        time removal; delta-band ids kill not-yet-merged inserts.  Ids
        already deleted are counted once (idempotent).
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        delta_mask = row_ids >= DELTA_BASE
        with self._lock:
            if self._frozen:
                raise RuntimeError("delta tier is frozen (superseded by a merge)")
            before_main = len(self._main_tombstones)
            before_delta = len(self._delta_tombstones)
            for gid in row_ids[delta_mask]:
                ordinal = int(gid) - self.base_row_id
                if not 0 <= ordinal < self._num_inserted:
                    raise IndexError(f"unknown delta row id {int(gid)}")
                self._delta_tombstones.add(ordinal)
            self._main_tombstones.update(int(i) for i in row_ids[~delta_mask])
            if len(row_ids):
                self._bump()
            return (
                len(self._main_tombstones) - before_main,
                len(self._delta_tombstones) - before_delta,
            )

    def freeze(self) -> None:
        """Refuse further writes (the tier has been merged away)."""
        with self._lock:
            self._frozen = True

    def _bump(self) -> None:
        self._epoch += 1
        self._snapshot = None

    # -- read side ----------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotone write counter; folded into ``layout_version``."""
        return self._epoch

    @property
    def num_inserted(self) -> int:
        """Total rows ever inserted (including later-deleted ones)."""
        return self._num_inserted

    @property
    def num_live(self) -> int:
        """Inserted rows still visible."""
        return self._num_inserted - len(self._delta_tombstones)

    @property
    def num_tombstones(self) -> int:
        """Main-table rows currently suppressed."""
        return len(self._main_tombstones)

    @property
    def churn(self) -> int:
        """Total pending work a merge would drain (inserts + deletes)."""
        return self._num_inserted + len(self._main_tombstones)

    def snapshot(self) -> DeltaSnapshot:
        """A consistent, immutable view (cached until the next write)."""
        with self._lock:
            if self._snapshot is not None:
                return self._snapshot
            if self._num_inserted:
                columns = {
                    name: np.concatenate([c[name] for c in self._chunks])
                    for name in self.dtypes
                }
            else:
                columns = {
                    name: np.empty(0, dtype=dt) for name, dt in self.dtypes.items()
                }
            row_ids = np.arange(
                self.base_row_id,
                self.base_row_id + self._num_inserted,
                dtype=np.int64,
            )
            if self._delta_tombstones:
                dead = np.fromiter(
                    self._delta_tombstones, dtype=np.int64, count=len(self._delta_tombstones)
                )
                keep = np.ones(self._num_inserted, dtype=bool)
                keep[dead] = False
                columns = {name: arr[keep] for name, arr in columns.items()}
                row_ids = row_ids[keep]
            tombstones = np.sort(
                np.fromiter(
                    self._main_tombstones,
                    dtype=np.int64,
                    count=len(self._main_tombstones),
                )
            )
            self._snapshot = DeltaSnapshot(
                self._epoch, columns, row_ids, tombstones, dims=self.dims
            )
            return self._snapshot
