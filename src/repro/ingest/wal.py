"""The ingest write-ahead log: logical redo records for the write path.

:class:`~repro.db.recovery.LoggedStorage` logs *physical* page images;
ingest needs *logical* records (an insert batch, a delete set, merge
begin/commit fences) because delta mutations never touch a page until
the merge.  This module reuses the exact framing discipline of the
recovery seam -- magic + fixed header + CRC32 over the payload, torn
tail skipped on replay -- so the two logs share one durability story:

* every :meth:`append_insert` / :meth:`append_delete` happens *before*
  the delta tier is mutated (WAL-first); a crash between the append and
  the apply loses nothing, because replay re-applies the record;
* a merge writes ``merge_begin`` before building the new generation and
  ``merge_commit`` only after the atomic catalog swap.  Replay ignores
  an unpaired ``merge_begin`` (the torn merge never became visible) and
  skips insert/delete records at or below the last committed merge's
  sequence (the merged generation already contains them).

The log lives in memory as encoded frames, like ``LoggedStorage``'s:
the cost model counts bytes, durability of the log media is out of
scope, and tests crash/reopen by carrying the frames across databases.
"""

from __future__ import annotations

import logging
import struct
import threading
import zlib
from dataclasses import dataclass

import numpy as np

from repro.db.errors import CorruptPageError
from repro.db.pages import Page, PageCodec

__all__ = ["IngestRecord", "IngestWal", "RecordKind"]

_WAL_MAGIC = b"RIW1"
#: Header: sequence, kind, table-name length, payload length, payload CRC32.
_HEADER = "<qiiiI"
_HEADER_SIZE = struct.calcsize(_HEADER)

logger = logging.getLogger(__name__)


class RecordKind:
    """Logical record kinds (plain ints so the header stays fixed-width)."""

    INSERT = 1
    DELETE = 2
    MERGE_BEGIN = 3
    MERGE_COMMIT = 4


@dataclass
class IngestRecord:
    """One decoded log entry: enough to redo a logical write."""

    sequence: int
    kind: int
    table: str
    payload: bytes
    checksum: int

    def verify(self) -> bool:
        """Whether the payload matches its recorded checksum."""
        return zlib.crc32(self.payload) == self.checksum

    def decode_insert(self) -> dict[str, np.ndarray]:
        """The inserted columns (INSERT records only)."""
        return PageCodec.decode(self.payload).columns

    def decode_delete(self) -> np.ndarray:
        """The deleted row ids (DELETE records only)."""
        return np.frombuffer(self.payload, dtype=np.int64).copy()

    def decode_generation(self) -> int:
        """The merge's target generation (MERGE_* records only)."""
        return struct.unpack("<q", self.payload)[0]


class IngestWal:
    """An append-only logical log shared by every table of a database."""

    def __init__(self, frames: list[bytes] | None = None):
        self._lock = threading.Lock()
        self._log: list[bytes] = list(frames) if frames else []
        self._sequence = 0
        for raw in self._log:
            try:
                self._sequence = max(self._sequence, self._decode(raw).sequence)
            except ValueError:
                continue

    # -- append side --------------------------------------------------------

    def _append(self, table: str, kind: int, payload: bytes) -> int:
        name_bytes = table.encode("utf-8")
        with self._lock:
            self._sequence += 1
            header = _WAL_MAGIC + struct.pack(
                _HEADER,
                self._sequence,
                kind,
                len(name_bytes),
                len(payload),
                zlib.crc32(payload),
            )
            self._log.append(header + name_bytes + payload)
            return self._sequence

    def append_insert(self, table: str, columns: dict[str, np.ndarray]) -> int:
        """Log an insert batch; returns its sequence number."""
        payload = PageCodec.encode(Page(page_id=-1, start_row=0, columns=columns))
        return self._append(table, RecordKind.INSERT, payload)

    def append_delete(self, table: str, row_ids: np.ndarray) -> int:
        """Log a delete set; returns its sequence number."""
        ids = np.ascontiguousarray(row_ids, dtype=np.int64)
        return self._append(table, RecordKind.DELETE, ids.tobytes())

    def append_merge_begin(self, table: str, generation: int) -> int:
        """Fence: a merge toward ``generation`` is starting."""
        return self._append(
            table, RecordKind.MERGE_BEGIN, struct.pack("<q", generation)
        )

    def append_merge_commit(self, table: str, generation: int) -> int:
        """Fence: ``generation`` is now the visible layout."""
        return self._append(
            table, RecordKind.MERGE_COMMIT, struct.pack("<q", generation)
        )

    # -- read side ----------------------------------------------------------

    @staticmethod
    def _decode(raw: bytes) -> IngestRecord:
        if raw[:4] != _WAL_MAGIC:
            raise ValueError("corrupt ingest-log record magic")
        try:
            sequence, kind, name_len, payload_len, checksum = struct.unpack(
                _HEADER, raw[4: 4 + _HEADER_SIZE]
            )
            table = raw[4 + _HEADER_SIZE: 4 + _HEADER_SIZE + name_len].decode("utf-8")
        except (struct.error, UnicodeDecodeError) as exc:
            raise ValueError(f"corrupt ingest-log record header: {exc}") from exc
        start = 4 + _HEADER_SIZE + name_len
        payload = raw[start: start + payload_len]
        return IngestRecord(
            sequence=sequence,
            kind=kind,
            table=table,
            payload=payload,
            checksum=checksum,
        )

    def frames(self) -> list[bytes]:
        """The raw encoded frames (the 'durable medium' for crash tests)."""
        with self._lock:
            return list(self._log)

    def records(self) -> list[IngestRecord]:
        """Decode every record (oldest first); raises on a mangled frame."""
        return [self._decode(raw) for raw in self.frames()]

    def log_bytes(self) -> int:
        """Total bytes the log occupies."""
        with self._lock:
            return sum(len(raw) for raw in self._log)

    def truncate_table(self, table: str, upto_sequence: int) -> int:
        """Drop ``table``'s insert/delete records at or below a sequence.

        Called after a committed merge: the merged generation carries
        those rows, so the records are dead weight.  Fences are kept --
        replay needs the last ``merge_commit`` to know where to resume.
        Returns the number of frames dropped.
        """
        with self._lock:
            kept: list[bytes] = []
            dropped = 0
            for raw in self._log:
                try:
                    record = self._decode(raw)
                except ValueError:
                    kept.append(raw)
                    continue
                if (
                    record.table == table
                    and record.sequence <= upto_sequence
                    and record.kind in (RecordKind.INSERT, RecordKind.DELETE)
                ):
                    dropped += 1
                    continue
                kept.append(raw)
            self._log = kept
            return dropped

    # -- recovery -----------------------------------------------------------

    def replay(self, database, on_corrupt: str = "skip") -> int:
        """Redo unmerged logical records into a reopened database.

        For each table, finds the last committed merge fence and
        re-applies every insert/delete after it through the normal
        ingest path (without re-logging).  An unpaired ``merge_begin``
        is ignored: the catalog still maps the old generation, so the
        torn merge is simply invisible.  Returns records applied.

        ``on_corrupt`` follows :meth:`LoggedStorage.replay`: ``"skip"``
        warns and continues past a torn record, ``"raise"`` stops.
        """
        if on_corrupt not in ("skip", "raise"):
            raise ValueError("on_corrupt must be 'skip' or 'raise'")
        decoded: list[IngestRecord] = []
        for position, raw in enumerate(self.frames()):
            try:
                record = self._decode(raw)
            except ValueError as exc:
                if on_corrupt == "raise":
                    raise
                logger.warning(
                    "skipping unreadable ingest-log record %d: %s", position, exc
                )
                continue
            if not record.verify():
                message = f"ingest-log record {record.sequence} failed its checksum"
                if on_corrupt == "raise":
                    raise ValueError(message)
                logger.warning("skipping %s", message)
                continue
            decoded.append(record)
        merged_through: dict[str, int] = {}
        for record in decoded:
            if record.kind == RecordKind.MERGE_COMMIT:
                merged_through[record.table] = max(
                    merged_through.get(record.table, 0), record.sequence
                )
        applied = 0
        for record in decoded:
            if record.sequence <= merged_through.get(record.table, 0):
                continue
            if not database.has_table(record.table):
                logger.warning(
                    "ingest-log record %d names unknown table %r; skipped",
                    record.sequence,
                    record.table,
                )
                continue
            if record.kind == RecordKind.INSERT:
                try:
                    columns = record.decode_insert()
                except CorruptPageError as exc:
                    if on_corrupt == "raise":
                        raise ValueError(
                            f"ingest-log record {record.sequence} holds an "
                            "undecodable insert payload"
                        ) from exc
                    logger.warning(
                        "skipping ingest-log record %d (undecodable): %s",
                        record.sequence,
                        exc,
                    )
                    continue
                database.ingest.insert(record.table, columns, log=False)
                applied += 1
            elif record.kind == RecordKind.DELETE:
                try:
                    database.ingest.delete(
                        record.table, record.decode_delete(), log=False
                    )
                except IndexError as exc:
                    # The insert this delete targets was itself torn away.
                    if on_corrupt == "raise":
                        raise ValueError(
                            f"ingest-log record {record.sequence} deletes an "
                            "unrecovered row"
                        ) from exc
                    logger.warning(
                        "skipping ingest-log record %d (dangling delete): %s",
                        record.sequence,
                        exc,
                    )
                    continue
                applied += 1
        return applied
