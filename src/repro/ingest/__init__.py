"""The write path: delta ingest, merge-on-read, and out-of-place merges.

The paper's database is frozen at creation -- a faithful snapshot of a
survey data release, but not of the survey itself, which loads nightly.
This package adds the LSM-flavored write tier that opens that scenario:

* :mod:`repro.ingest.delta` -- a small write-optimized delta tier per
  table (inserted rows + delete tombstones) with immutable snapshots,
  indexed by a layered grid sized for small N;
* :mod:`repro.ingest.wal` -- a write-ahead log in the framing of
  :class:`~repro.db.recovery.LoggedStorage`, appended before any delta
  mutation is applied, replayable after a crash;
* :mod:`repro.ingest.merge` -- the background merge: drain the delta
  out-of-place into a freshly bulk-loaded kd layout (median-split
  rebuild over old + new points), regenerate zone maps, and swap the
  new generation in atomically under the catalog lock;
* :mod:`repro.ingest.manager` -- per-table ingest state and the
  threshold/daemon plumbing that decides *when* to merge.

Every read path (full scan, kd traversal, batched execution, sharded
scatter-gather, k-NN) merges delta + main at query time with tombstone
suppression; see the corresponding modules for the merge-on-read hooks.
"""

from repro.ingest.delta import (
    DELTA_BASE,
    SHARD_STRIDE,
    DeltaSnapshot,
    DeltaTier,
    is_delta_id,
)
from repro.ingest.manager import IngestManager, IngestState, MergeDaemon
from repro.ingest.merge import MergeReport, merge_table
from repro.ingest.wal import IngestRecord, IngestWal

__all__ = [
    "DELTA_BASE",
    "SHARD_STRIDE",
    "DeltaSnapshot",
    "DeltaTier",
    "IngestManager",
    "IngestRecord",
    "IngestState",
    "IngestWal",
    "MergeDaemon",
    "MergeReport",
    "merge_table",
    "is_delta_id",
]
