"""Per-table ingest state and the policy that decides when to merge.

The :class:`IngestManager` hangs off every :class:`~repro.db.catalog.Database`
as ``db.ingest`` and owns one :class:`IngestState` per mutated table:
the table's delta tier, its layout generation, and the writer lock that
serializes WAL append + delta apply (and excludes writers, not readers,
during a merge).  ``Table.insert_rows`` / ``Table.delete_rows`` are thin
wrappers over :meth:`IngestManager.insert` / :meth:`delete`.

Policy lives here too: :meth:`maybe_merge` triggers the out-of-place
merge of :mod:`repro.ingest.merge` once a table's *delta fraction*
(pending inserts + tombstones over main rows) crosses a threshold, and
:class:`MergeDaemon` runs that check on a background thread -- the
"nightly load" loop of an SDSS-style survey.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.ingest.delta import DELTA_BASE, DeltaTier

__all__ = ["IngestManager", "IngestState", "MergeDaemon"]

#: Default delta fraction past which :meth:`IngestManager.maybe_merge` fires.
DEFAULT_MERGE_THRESHOLD = 0.2


class IngestState:
    """Everything the write path knows about one table generation."""

    def __init__(self, table_name: str, delta: DeltaTier, generation: int = 0):
        self.table_name = table_name
        self.delta = delta
        self.generation = generation
        #: Serializes WAL append + delta apply, and excludes writers
        #: (never readers) while a merge drains the tier.
        self.write_lock = threading.RLock()

    @property
    def layout_version(self) -> str:
        """``g<generation>.e<epoch>``: changes on every write and merge."""
        return f"g{self.generation}.e{self.delta.epoch}"


class IngestManager:
    """The write-path front door of one database."""

    def __init__(self, database):
        self._db = database
        self._states: dict[str, IngestState] = {}
        self._lock = threading.Lock()
        #: Physical namespaces superseded two merges ago, retired at the
        #: next merge (one-generation grace for in-flight queries).
        self._pending_retire: dict[str, list[str]] = {}

    # -- state plumbing ------------------------------------------------------

    def state(self, name: str) -> IngestState | None:
        """The table's ingest state, or ``None`` if it was never written."""
        return self._states.get(name)

    def ensure_state(self, name: str) -> IngestState:
        """Get or create the ingest state of the *current* generation."""
        with self._lock:
            state = self._states.get(name)
            if state is not None:
                return state
            table = self._db.table(name)
            state = IngestState(name, self._new_delta(table), generation=0)
            self._states[name] = state
            table.bind_ingest_state(state)
            return state

    def _new_delta(self, table) -> DeltaTier:
        dtypes = {spec.name: spec.dtype for spec in table.specs}
        index = self._db.index_if_exists(f"{table.name}.kdtree")
        dims = tuple(index.dims) if index is not None else ()
        return DeltaTier(dtypes, dims=dims, base_row_id=DELTA_BASE)

    def install_generation(self, name: str, table, generation: int) -> IngestState:
        """Attach a fresh, empty state to a just-swapped table generation.

        Called by the merge under the catalog lock.  The superseded
        state stays bound (frozen) to the old table object so in-flight
        queries that resolved the old layout keep their view.
        """
        with self._lock:
            state = IngestState(name, self._new_delta(table), generation=generation)
            self._states[name] = state
            table.bind_ingest_state(state)
            return state

    def forget(self, name: str) -> None:
        """Drop a table's ingest bookkeeping (table dropped)."""
        with self._lock:
            self._states.pop(name, None)
            self._pending_retire.pop(name, None)

    def take_retirees(self, name: str, superseded: str) -> list[str]:
        """Swap bookkeeping for generation retirement.

        Returns the physical namespaces safe to drop *now* (superseded
        two merges ago) and queues ``superseded`` (the generation being
        replaced by the current merge) for the next round.
        """
        with self._lock:
            due = self._pending_retire.get(name, [])
            self._pending_retire[name] = [superseded]
            return due

    # -- the write API -------------------------------------------------------

    def insert(self, name: str, data: dict, log: bool = True) -> np.ndarray:
        """Insert rows into the table's delta tier; returns their row ids.

        WAL-first: the insert record is durable before the delta tier
        (and therefore any reader) sees the rows.  The returned ids live
        in the delta band (``>= DELTA_BASE``) until a merge folds the
        rows into the main layout.
        """
        state = self.ensure_state(name)
        with state.write_lock:
            table = self._db.table(name)
            columns = self._prepare_insert(table, data)
            if log and self._db.ingest_wal is not None:
                self._db.ingest_wal.append_insert(name, columns)
            row_ids = state.delta.insert(columns)
        self._db._notify_mutation(name)
        return row_ids

    def delete(self, name: str, row_ids, log: bool = True) -> int:
        """Tombstone rows by id (main-table or delta-band); returns count."""
        state = self.ensure_state(name)
        ids = np.atleast_1d(np.asarray(row_ids, dtype=np.int64))
        with state.write_lock:
            table = self._db.table(name)
            main = ids[ids < DELTA_BASE]
            if len(main) and (main.min() < 0 or main.max() >= table.num_rows):
                raise IndexError(
                    f"delete row ids out of range for {name!r} "
                    f"({table.num_rows} rows)"
                )
            if log and self._db.ingest_wal is not None:
                self._db.ingest_wal.append_delete(name, ids)
            deleted_main, deleted_delta = state.delta.delete(ids)
        self._db._notify_mutation(name)
        return deleted_main + deleted_delta

    def _prepare_insert(self, table, data: dict) -> dict[str, np.ndarray]:
        """Cast the caller's columns and synthesize ``kd_leaf`` if owed."""
        columns: dict[str, np.ndarray] = {}
        for spec in table.specs:
            if spec.name in data:
                columns[spec.name] = np.ascontiguousarray(
                    data[spec.name], dtype=spec.dtype
                )
        missing = [
            spec.name for spec in table.specs if spec.name not in columns
        ]
        if missing == ["kd_leaf"]:
            index = self._db.index_if_exists(f"{table.name}.kdtree")
            if index is None:
                raise KeyError(
                    f"insert into {table.name!r} missing 'kd_leaf' and no "
                    "kd index is registered to synthesize it"
                )
            tree = index.tree
            points = np.column_stack(
                [np.asarray(columns[d], dtype=np.float64) for d in index.dims]
            )
            if not np.all(np.isfinite(points)):
                raise ValueError("inserted coordinates must be finite")
            leaf_ids = np.fromiter(
                (
                    tree.post_order_id(tree.leaf_of_point(p))
                    for p in points
                ),
                dtype=np.int64,
                count=len(points),
            )
            columns["kd_leaf"] = leaf_ids
        elif missing:
            raise KeyError(f"insert into {table.name!r} missing columns {missing}")
        extra = set(data) - {spec.name for spec in table.specs}
        if extra:
            raise KeyError(
                f"insert into {table.name!r} has unknown columns {sorted(extra)}"
            )
        return columns

    # -- merge policy --------------------------------------------------------

    def delta_fraction(self, name: str) -> float:
        """Pending churn (inserts + tombstones) relative to main rows."""
        state = self.state(name)
        if state is None:
            return 0.0
        table = self._db.table(name)
        return state.delta.churn / max(1, table.num_rows)

    def merge(self, name: str, **kwargs):
        """Force an out-of-place merge now; see :func:`merge_table`."""
        from repro.ingest.merge import merge_table

        return merge_table(self._db, name, **kwargs)

    def maybe_merge(
        self, name: str, threshold: float = DEFAULT_MERGE_THRESHOLD, **kwargs
    ):
        """Merge iff the delta fraction crossed ``threshold``.

        Returns the :class:`~repro.ingest.merge.MergeReport` when a merge
        ran, else ``None``.
        """
        if self.delta_fraction(name) >= threshold and (
            self.state(name) is not None and self.state(name).delta.churn > 0
        ):
            return self.merge(name, **kwargs)
        return None

    def merge_all(self, threshold: float = 0.0) -> list:
        """Merge every tracked table whose fraction crossed ``threshold``."""
        reports = []
        for name in list(self._states):
            state = self._states.get(name)
            if state is None or state.delta.churn == 0:
                continue
            if self.delta_fraction(name) >= threshold:
                reports.append(self.merge(name))
        return reports


class MergeDaemon:
    """A background thread running :meth:`IngestManager.maybe_merge`.

    The "background merge" of the tentpole: writers keep landing rows in
    the delta while the daemon periodically drains tables whose read
    amplification crossed the threshold.  Queries are never blocked --
    the swap is atomic under the catalog lock and in-flight queries
    finish on the layout they resolved.
    """

    def __init__(
        self,
        database,
        tables: list[str] | None = None,
        threshold: float = DEFAULT_MERGE_THRESHOLD,
        interval_s: float = 0.05,
    ):
        self._db = database
        self._tables = tables
        self._threshold = threshold
        self._interval_s = interval_s
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.merges = 0
        self.errors: list[Exception] = []

    def _loop(self) -> None:
        while not self._stop.is_set():
            names = (
                self._tables
                if self._tables is not None
                else list(self._db.ingest._states)
            )
            for name in names:
                try:
                    if self._db.ingest.maybe_merge(name, self._threshold):
                        self.merges += 1
                except Exception as exc:  # keep the daemon alive
                    self.errors.append(exc)
            self._stop.wait(self._interval_s)

    def start(self) -> "MergeDaemon":
        """Spin up the merge thread; idempotent."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="ingest-merge-daemon", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop and join the merge thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MergeDaemon":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
