"""Aggregate pushdown: COUNT / SUM / MIN / MAX / AVG over scans.

The paper's workflow pushes computation to the data ("code is running in
the same place where data is stored"); the simplest instance is an
aggregate that never materializes the matching rows.  These execute
page-at-a-time, so memory stays O(page) regardless of selectivity --
and they honor the same predicate forms as the scan executors.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.db.expressions import Expr
from repro.db.scan import predicate_from_expression
from repro.db.stats import QueryStats
from repro.db.table import Table

__all__ = ["aggregate_scan", "count_rows"]

_AGGREGATES = {"count", "sum", "min", "max", "avg"}


def aggregate_scan(
    table: Table,
    aggregates: dict[str, tuple[str, str | None]],
    predicate: Expr | Callable | None = None,
) -> tuple[dict[str, float], QueryStats]:
    """One-pass aggregates over (optionally filtered) rows.

    Parameters
    ----------
    aggregates:
        Mapping of output name to ``(function, column)`` where function
        is one of count / sum / min / max / avg; count takes ``None``
        as its column.

    Examples
    --------
    >>> aggregate_scan(t, {"n": ("count", None), "brightest": ("min", "r")})
    """
    if not aggregates:
        raise ValueError("need at least one aggregate")
    for name, (func, column) in aggregates.items():
        if func not in _AGGREGATES:
            raise ValueError(f"unknown aggregate {func!r} for {name!r}")
        if func != "count" and column is None:
            raise ValueError(f"aggregate {name!r} needs a column")
    if isinstance(predicate, Expr):
        predicate = predicate_from_expression(predicate)

    stats = QueryStats()
    count = 0
    sums: dict[str, float] = {}
    mins: dict[str, float] = {}
    maxs: dict[str, float] = {}

    for page in table.scan():
        stats.record_page(table.name, page.page_id)
        stats.rows_examined += page.num_rows
        if predicate is None:
            view = page.columns
            matched = page.num_rows
        else:
            mask = predicate(page.columns)
            matched = int(np.count_nonzero(mask))
            if matched == 0:
                continue
            view = {k: v[mask] for k, v in page.columns.items()}
        count += matched
        for name, (func, column) in aggregates.items():
            if func == "count":
                continue
            values = view[column]
            if func in ("sum", "avg"):
                sums[name] = sums.get(name, 0.0) + float(values.sum())
            if func == "min":
                current = float(values.min())
                mins[name] = min(mins.get(name, current), current)
            if func == "max":
                current = float(values.max())
                maxs[name] = max(maxs.get(name, current), current)

    stats.rows_returned = count
    results: dict[str, float] = {}
    for name, (func, column) in aggregates.items():
        if func == "count":
            results[name] = float(count)
        elif func == "sum":
            results[name] = sums.get(name, 0.0)
        elif func == "avg":
            results[name] = sums.get(name, 0.0) / count if count else float("nan")
        elif func == "min":
            results[name] = mins.get(name, float("nan"))
        elif func == "max":
            results[name] = maxs.get(name, float("nan"))
    return results, stats


def count_rows(
    table: Table, predicate: Expr | Callable | None = None
) -> tuple[int, QueryStats]:
    """``SELECT COUNT(*)`` with an optional WHERE."""
    results, stats = aggregate_scan(table, {"n": ("count", None)}, predicate)
    return int(results["n"]), stats
