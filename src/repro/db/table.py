"""Typed, paged, optionally clustered tables.

Tables are static once created (the paper: "we assume that the database is
static ... no new data is inserted", §3), which lets the engine lay rows
out in a *clustered order* at creation time.  Clustering is the mechanism
every index in the paper leans on:

* the layered grid clusters on ``(Layer, ContainedBy)``;
* the kd-tree clusters on leaf id (post-order numbering makes subtree
  retrieval a contiguous ``BETWEEN``);
* the Voronoi index clusters on space-filling-curve cell id.

Rows of a clustered key range then live on a contiguous run of pages, so
"rows returned / pages touched" approaches the page size -- the paper's
"practically only points which are actually returned are read from disk".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.db.errors import StaleLayoutError
from repro.db.pages import Page
from repro.db.zonemap import ZoneMap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.db.catalog import Database

__all__ = ["ColumnSpec", "Table", "DEFAULT_ROWS_PER_PAGE"]

#: Default rows per page.  A real 8 KB page holds ~130 rows of the SDSS
#: magnitude schema (5 float64 magnitudes + id columns); 128 keeps the
#: arithmetic round.
DEFAULT_ROWS_PER_PAGE = 128


@dataclass(frozen=True)
class ColumnSpec:
    """Name and dtype of one column."""

    name: str
    dtype: np.dtype

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))


class Table:
    """An immutable paged table.

    Use :meth:`Table.create` (usually via
    :meth:`repro.db.catalog.Database.create_table`) rather than the
    constructor.
    """

    def __init__(
        self,
        database: "Database",
        name: str,
        specs: list[ColumnSpec],
        num_rows: int,
        rows_per_page: int,
        clustered_by: tuple[str, ...] = (),
        physical_name: str | None = None,
    ):
        self._db = database
        self.name = name
        #: Storage/buffer-pool/zone-map namespace.  Equal to ``name`` for
        #: a table's first generation; a background merge bulk-loads the
        #: next generation under ``<name>@g<n>`` so in-flight queries on
        #: the old layout keep reading their pages (out-of-place swap).
        self.physical_name = physical_name or name
        self.specs = list(specs)
        self.num_rows = num_rows
        self.rows_per_page = rows_per_page
        self.clustered_by = clustered_by
        #: The ingest state active while this generation is current; set
        #: by the ingest manager, and left in place (frozen) after a
        #: merge so queries that resolved this table object keep a
        #: consistent delta view.
        self._ingest_state = None

    # -- creation ------------------------------------------------------------

    @staticmethod
    def create(
        database: "Database",
        name: str,
        data: dict[str, np.ndarray],
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
        clustered_by: tuple[str, ...] | list[str] = (),
        physical_name: str | None = None,
    ) -> "Table":
        """Materialize a table from column arrays.

        Parameters
        ----------
        data:
            Mapping of column name to a 1-d array; all columns must share
            their length.
        clustered_by:
            Column names to sort rows by (lexicographic, stable) before
            paging -- the clustered index of the paper.
        physical_name:
            Storage namespace; defaults to ``name``.  Merges pass
            ``<name>@g<n>`` to bulk-load a new generation out-of-place.
        """
        if not data:
            raise ValueError("table needs at least one column")
        lengths = {len(arr) for arr in data.values()}
        if len(lengths) != 1:
            raise ValueError("all columns must have equal length")
        num_rows = lengths.pop()
        if rows_per_page < 1:
            raise ValueError("rows_per_page must be >= 1")

        columns = {name_: np.asarray(arr) for name_, arr in data.items()}
        clustered_by = tuple(clustered_by)
        if clustered_by:
            missing = [c for c in clustered_by if c not in columns]
            if missing:
                raise KeyError(f"clustered_by columns not in table: {missing}")
            order = np.lexsort([columns[c] for c in reversed(clustered_by)])
            columns = {name_: arr[order] for name_, arr in columns.items()}

        specs = [ColumnSpec(name_, arr.dtype) for name_, arr in columns.items()]
        table = Table(
            database,
            name,
            specs,
            num_rows,
            rows_per_page,
            clustered_by=clustered_by,
            physical_name=physical_name,
        )
        # Zone maps ride along with the write path: every page's min/max
        # synopsis is folded in as the page is emitted, so the map is
        # complete the moment the table is.  The map is keyed by the
        # physical namespace, so each generation regenerates its own.
        zone_columns = [spec.name for spec in specs if spec.dtype.kind in "iuf"]
        allowed = getattr(database, "zone_map_columns", None)
        if allowed is not None:
            zone_columns = [c for c in zone_columns if c in allowed]
        zone_map = (
            ZoneMap(table.physical_name, zone_columns)
            if zone_columns and database.zone_maps_enabled
            else None
        )
        for page_id in range(table.num_pages):
            start = page_id * rows_per_page
            stop = min(start + rows_per_page, num_rows)
            page = Page(
                page_id=page_id,
                start_row=start,
                columns={n: np.ascontiguousarray(a[start:stop]) for n, a in columns.items()},
            )
            database.buffer_pool.put(table.physical_name, page)
            if zone_map is not None:
                zone_map.observe_page(page)
        if zone_map is not None:
            database.register_zone_map(zone_map)
        return table

    # -- shape ---------------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Number of pages the table occupies."""
        if self.num_rows == 0:
            return 0
        return (self.num_rows + self.rows_per_page - 1) // self.rows_per_page

    @property
    def column_names(self) -> list[str]:
        """Names of the columns in storage order."""
        return [spec.name for spec in self.specs]

    def page_of_row(self, row_id: int) -> int:
        """Page id holding a global row id."""
        if not (0 <= row_id < self.num_rows):
            raise IndexError(f"row {row_id} out of range [0, {self.num_rows})")
        return row_id // self.rows_per_page

    # -- access ----------------------------------------------------------------

    def read_page(self, page_id: int) -> Page:
        """Fetch one page through the buffer pool.

        Raises :class:`~repro.db.errors.StaleLayoutError` when the read
        fails because a background merge retired this table object's
        generation mid-query (the catalog now maps the name to a newer
        physical layout); other read failures propagate unchanged.
        """
        if not (0 <= page_id < self.num_pages):
            raise IndexError(f"page {page_id} out of range [0, {self.num_pages})")
        try:
            return self._db.buffer_pool.get(self.physical_name, page_id)
        except (KeyError, FileNotFoundError) as exc:
            self._raise_if_retired(exc)
            raise

    def prefetch(self, page_ids: list[int]) -> int:
        """Coalesce a batch of page reads into one storage request.

        Returns the number of pages actually fetched.  Best-effort: a
        fault mid-batch degrades to the page-at-a-time retry path of
        :meth:`read_page`, so callers never need to handle errors here
        -- except :class:`~repro.db.errors.StaleLayoutError`, which
        means this table object's generation was retired and no amount
        of per-page retrying can succeed.
        """
        valid = [pid for pid in page_ids if 0 <= pid < self.num_pages]
        if not valid:
            return 0
        try:
            return self._db.buffer_pool.prefetch(self.physical_name, valid)
        except (KeyError, FileNotFoundError) as exc:
            self._raise_if_retired(exc)
            raise

    def _raise_if_retired(self, cause: BaseException) -> None:
        """Translate a missing-namespace read error on a superseded table.

        A merge swaps a new generation into the catalog and (one merge
        later) drops the old generation's storage namespace.  A query
        that resolved this table object before the swap then sees its
        pages vanish mid-read.  When the catalog's current table for
        this name is a different object (or the table was dropped), the
        raw backend error is re-raised as
        :class:`~repro.db.errors.StaleLayoutError` so readers know to
        re-resolve and re-run instead of treating it as data loss.
        """
        if self._db.has_table(self.name):
            current = self._db.table(self.name)
            if current is self and current.physical_name == self.physical_name:
                return  # live table, genuinely missing page: not ours to mask
        raise StaleLayoutError(
            f"physical layout {self.physical_name!r} of table {self.name!r} "
            f"was retired by a merge while being read"
        ) from cause

    def zone_map(self) -> "ZoneMap | None":
        """This table's per-page min/max synopses, when the catalog has them."""
        return self._db.zone_map(self.physical_name)

    @property
    def database(self) -> "Database":
        """The catalog this table lives in (listener registration etc.)."""
        return self._db

    # -- the write path (delta tier) -------------------------------------------

    def bind_ingest_state(self, state) -> None:
        """Pin an ingest state to this generation (manager use only)."""
        self._ingest_state = state

    def insert_rows(self, data: dict[str, np.ndarray]) -> np.ndarray:
        """Insert rows; they land in the table's delta tier, WAL-first.

        Returns the delta-band row ids assigned to the new rows.  The
        rows are visible to every read path immediately (merge-on-read)
        and are folded into the main layout by the next merge.  If the
        table carries a kd index, ``kd_leaf`` is synthesized per point.
        """
        return self._db.ingest.insert(self.name, data)

    def delete_rows(self, row_ids) -> int:
        """Tombstone rows by row id (main-table or delta-band ids).

        Deleted rows disappear from every read path immediately; their
        pages are physically dropped at the next merge.  Returns the
        number of rows newly deleted.
        """
        return self._db.ingest.delete(self.name, row_ids)

    def delta_snapshot(self):
        """A consistent view of pending writes, or ``None`` when clean.

        One snapshot per query is the merge-on-read contract: take it
        once, use its tombstones for every scan of the query, and append
        its matching inserts exactly once.
        """
        state = self._ingest_state
        if state is None:
            return None
        snapshot = state.delta.snapshot()
        return None if snapshot.empty else snapshot

    def has_live_delta(self) -> bool:
        """Whether merge-on-read has any pending work for this table."""
        return self.delta_snapshot() is not None

    @property
    def layout_version(self) -> str:
        """``g<generation>.e<epoch>``: bumps on every write and merge."""
        state = self._ingest_state
        return state.layout_version if state is not None else "g0.e0"

    @property
    def num_live_rows(self) -> int:
        """Rows a full scan returns: main minus tombstones plus delta."""
        state = self._ingest_state
        if state is None:
            return self.num_rows
        snapshot = state.delta.snapshot()
        return self.num_rows - snapshot.num_tombstones + snapshot.num_rows

    @property
    def readahead_pages(self) -> int:
        """The buffer pool's default read-ahead coalescing window."""
        return self._db.buffer_pool.readahead_pages

    def scan(self) -> Iterator[Page]:
        """Yield every page in order: the full table scan."""
        for page_id in range(self.num_pages):
            yield self.read_page(page_id)

    def scan_rows(self, start_row: int, stop_row: int) -> Iterator[tuple[Page, int, int]]:
        """Yield ``(page, local_lo, local_hi)`` covering ``[start_row, stop_row)``.

        This is the engine's ``BETWEEN`` on the clustered position: only
        the pages overlapping the row range are touched.
        """
        start_row = max(0, start_row)
        stop_row = min(self.num_rows, stop_row)
        if start_row >= stop_row:
            return
        first = start_row // self.rows_per_page
        last = (stop_row - 1) // self.rows_per_page
        for page_id in range(first, last + 1):
            page = self.read_page(page_id)
            lo = max(start_row - page.start_row, 0)
            hi = min(stop_row - page.start_row, page.num_rows)
            yield page, lo, hi

    def read_rows(self, start_row: int, stop_row: int) -> dict[str, np.ndarray]:
        """Materialize the columns of a contiguous row range."""
        chunks: dict[str, list[np.ndarray]] = {n: [] for n in self.column_names}
        for page, lo, hi in self.scan_rows(start_row, stop_row):
            for name_, arr in page.columns.items():
                chunks[name_].append(arr[lo:hi])
        return {
            name_: (
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=self.dtype_of(name_))
            )
            for name_, parts in chunks.items()
        }

    def gather(self, row_ids: np.ndarray) -> dict[str, np.ndarray]:
        """Fetch arbitrary rows by global row id (results in given order).

        Row ids are grouped by page so each page is touched once per call.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if row_ids.size == 0:
            return {n: np.empty(0, dtype=self.dtype_of(n)) for n in self.column_names}
        if row_ids.min() < 0 or row_ids.max() >= self.num_rows:
            raise IndexError("row ids out of range")
        out = {
            n: np.empty(len(row_ids), dtype=self.dtype_of(n))
            for n in self.column_names
        }
        page_ids = row_ids // self.rows_per_page
        order = np.argsort(page_ids, kind="stable")
        sorted_rows = row_ids[order]
        sorted_pages = page_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_pages)) + 1
        for group in np.split(np.arange(len(sorted_rows)), boundaries):
            page = self.read_page(int(sorted_pages[group[0]]))
            local = sorted_rows[group] - page.start_row
            for name_, arr in page.columns.items():
                out[name_][order[group]] = arr[local]
        return out

    def read_column(self, name: str) -> np.ndarray:
        """Materialize a full column (touches every page)."""
        parts = [page.columns[name] for page in self.scan()]
        if not parts:
            return np.empty(0, dtype=self.dtype_of(name))
        return np.concatenate(parts)

    def read_columns(self, names: list[str]) -> dict[str, np.ndarray]:
        """Materialize several full columns with one pass over the pages."""
        parts: dict[str, list[np.ndarray]] = {n: [] for n in names}
        for page in self.scan():
            for name_ in names:
                parts[name_].append(page.columns[name_])
        return {
            name_: (
                np.concatenate(chunks)
                if chunks
                else np.empty(0, dtype=self.dtype_of(name_))
            )
            for name_, chunks in parts.items()
        }

    def dtype_of(self, name: str) -> np.dtype:
        """Storage dtype of a column."""
        for spec in self.specs:
            if spec.name == name:
                return spec.dtype
        raise KeyError(f"no column {name!r} in table {self.name!r}")

    # Backwards-compatible internal alias.
    _dtype_of = dtype_of

    def __repr__(self) -> str:
        cols = ", ".join(self.column_names)
        return (
            f"Table({self.name!r}, rows={self.num_rows}, pages={self.num_pages}, "
            f"columns=[{cols}], clustered_by={list(self.clustered_by)})"
        )
