"""Catalog persistence: reattach a disk-backed database.

:class:`~repro.db.storage.FileStorage` already keeps every page on
disk; what a restart loses is the *catalog* -- which tables exist, their
schemas, clustering, and page geometry.  :func:`save_catalog` writes
that metadata as JSON next to the pages, and :func:`attach_database`
rebuilds a :class:`~repro.db.catalog.Database` whose tables read the
existing pages (indexes are rebuilt by their owners; the paper's
database is static, so "reopen and re-register" is the whole recovery
story under the simple recovery model).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.db.catalog import Database
from repro.db.storage import FileStorage
from repro.db.table import ColumnSpec, Table
from repro.db.zonemap import ZoneMap
from repro.ingest.wal import IngestWal

__all__ = ["save_catalog", "attach_database", "CATALOG_FILENAME"]

CATALOG_FILENAME = "_catalog.json"


def save_catalog(database: Database) -> Path:
    """Write the table metadata of a file-backed database to disk."""
    storage = database.storage
    if not isinstance(storage, FileStorage):
        raise TypeError("only file-backed databases can persist a catalog")
    tables = [database.table(n) for n in database.table_names()]
    catalog = {
        "version": 1,
        "tables": [
            {
                "name": table.name,
                # A merged table's pages live under its generation
                # namespace (``<name>@g<n>``); reattach must read them
                # from there.  Omitted when equal to the logical name,
                # so pre-ingest catalogs stay byte-identical.
                **(
                    {"physical_name": table.physical_name}
                    if table.physical_name != table.name
                    else {}
                ),
                "num_rows": table.num_rows,
                "rows_per_page": table.rows_per_page,
                "clustered_by": list(table.clustered_by),
                "columns": [
                    {"name": spec.name, "dtype": spec.dtype.str}
                    for spec in table.specs
                ],
            }
            for table in tables
        ],
        # Zone maps are synopses of immutable pages, so they persist with
        # the schema; absent for tables created with zone maps disabled
        # (and in catalogs written before the key existed).  Keyed by the
        # *physical* namespace: each merge generation regenerates its own.
        "zone_maps": [
            table.zone_map().to_dict()
            for table in tables
            if table.zone_map() is not None
        ],
        # Bitmap indexes serialize whole (bin edges + compressed
        # bitmaps): unlike kd-trees, whose owners rebuild them from the
        # clustered pages, the equi-depth bin edges are a property of
        # the build-time data distribution and must round-trip exactly
        # for plans to stay stable across a restart.  Absent in catalogs
        # written before the key existed.
        "bitmap_indexes": [
            index.to_dict()
            for key, index in sorted(database.registered_indexes().items())
            if key.endswith(".bitmap")
        ],
        # Paged kd-trees persist as a *layout* (a few integers), not a
        # serialized tree: their node pages are already on disk under
        # the index namespace, so reattach reopens them page-for-page --
        # the restart pays no rebuild and no full deserialize.  Only
        # paged trees appear here; in-memory trees are rebuilt by their
        # owners as before.  Absent in catalogs written before the key
        # existed.
        "kd_indexes": [
            {
                "name": index.table_name,
                "table": index.table.physical_name,
                "dims": index.dims,
                "layout": index.tree.layout.to_dict(),
            }
            for key, index in sorted(database.registered_indexes().items())
            if key.endswith(".kdtree")
            and getattr(index.tree, "layout", None) is not None
        ],
        # Planner calibration: the per-engine EWMA page-cost constants
        # each table's planner learned while serving.  Persisting them
        # means a reattached database plans with warmed constants
        # instead of re-learning from the neutral 1.0s.  Absent in
        # catalogs written before the key existed.
        "planner_calibrations": database.planner_calibrations(),
    }
    path = storage.root / CATALOG_FILENAME
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(catalog, fh, indent=2)
    return path


def attach_database(
    root: str | os.PathLike,
    buffer_pages: int | None = 1024,
    wal_frames: list[bytes] | None = None,
    on_corrupt: str = "skip",
) -> Database:
    """Reopen a persisted database: pages from disk, catalog from JSON.

    ``wal_frames`` is the surviving ingest write-ahead log (see
    :meth:`~repro.ingest.wal.IngestWal.frames`); when given, every
    logical record past the last committed merge is re-applied to the
    reopened tables, so acknowledged inserts/deletes that had not been
    merged at crash time come back.  ``on_corrupt`` is forwarded to
    :meth:`~repro.ingest.wal.IngestWal.replay`.
    """
    root = Path(root)
    path = root / CATALOG_FILENAME
    if not path.is_file():
        raise FileNotFoundError(f"no catalog at {path}")
    with open(path, encoding="utf-8") as fh:
        catalog = json.load(fh)
    if catalog.get("version") != 1:
        raise ValueError(f"unsupported catalog version {catalog.get('version')!r}")
    database = Database.on_disk(root, buffer_pages=buffer_pages)
    for meta in catalog["tables"]:
        specs = [
            ColumnSpec(col["name"], np.dtype(col["dtype"]))
            for col in meta["columns"]
        ]
        table = Table(
            database,
            meta["name"],
            specs,
            meta["num_rows"],
            meta["rows_per_page"],
            clustered_by=tuple(meta["clustered_by"]),
            physical_name=meta.get("physical_name"),
        )
        stored = database.storage.num_pages(table.physical_name)
        if stored != table.num_pages:
            raise ValueError(
                f"table {meta['name']!r} expects {table.num_pages} pages, "
                f"found {stored} on disk"
            )
        database.adopt_table(table)
    physical_names = {
        database.table(n).physical_name for n in database.table_names()
    }
    for payload in catalog.get("zone_maps", ()):
        # Zone maps are keyed by physical namespace (pre-ingest catalogs:
        # the logical name, which equals the physical one).
        if payload["table"] in physical_names:
            database.register_zone_map(ZoneMap.from_dict(payload))
    for payload in catalog.get("bitmap_indexes", ()):
        # Skip entries whose physical generation is not the one that
        # survived on disk (a crash between page flush and catalog write
        # can leave them disagreeing); the owner rebuilds on demand.
        if payload["table"] in physical_names:
            from repro.bitmap.index import BitmapIndex

            database.register_index(
                f"{payload['name']}.bitmap",
                BitmapIndex.from_dict(database, payload),
            )
    for payload in catalog.get("kd_indexes", ()):
        # Reattach a paged kd-tree without reading a node page: the
        # layout names the page count, and the pages stream in lazily
        # on first traversal.  Skipped when the physical generation or
        # its node pages did not survive intact -- the owner rebuilds.
        from repro.core.kdpaged import PagedKdTree, PagedTreeLayout
        from repro.core.kdtree import KdTreeIndex
        from repro.db.storage import index_namespace

        if payload["table"] not in physical_names:
            continue
        layout = PagedTreeLayout.from_dict(payload["layout"])
        stored = database.storage.num_pages(index_namespace(payload["table"]))
        if stored != layout.num_pages:
            continue
        tree = PagedKdTree(database, payload["table"], layout)
        database.register_index(
            f"{payload['name']}.kdtree",
            KdTreeIndex(
                database,
                database.table(payload["name"]),
                tree,
                list(payload["dims"]),
            ),
        )
    database.restore_planner_calibrations(
        catalog.get("planner_calibrations", {})
    )
    if wal_frames is not None:
        database.ingest_wal = IngestWal(wal_frames)
        database.ingest_wal.replay(database, on_corrupt=on_corrupt)
    return database
