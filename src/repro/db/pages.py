"""Pages: the unit of storage and I/O accounting.

A page is a *row group*: all columns for a contiguous range of rows of one
table.  This columnar-within-page layout matches how the engine is used
(the magnitude table is scanned column-at-a-time with numpy) while keeping
the paper's accounting unit -- "how many pages did this query touch" --
well defined.

Pages serialize to a simple self-describing binary format so the
file-backed storage does real disk round trips.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass

import numpy as np

__all__ = ["Page", "PageCodec"]

_MAGIC = b"RPG1"


@dataclass
class Page:
    """One row group of a table.

    Attributes
    ----------
    page_id:
        Identifier unique within the owning table's page file.
    start_row:
        Global row offset of the first row in this page.
    columns:
        Mapping of column name to a numpy array; all arrays share length.
    """

    page_id: int
    start_row: int
    columns: dict[str, np.ndarray]

    @property
    def num_rows(self) -> int:
        """Number of rows in the page."""
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def end_row(self) -> int:
        """Global row offset one past the last row."""
        return self.start_row + self.num_rows

    def row_ids(self) -> np.ndarray:
        """Global row ids of the rows in this page."""
        return np.arange(self.start_row, self.end_row, dtype=np.int64)

    def slice(self, lo: int, hi: int) -> dict[str, np.ndarray]:
        """Columns restricted to local row range ``[lo, hi)``."""
        return {name: arr[lo:hi] for name, arr in self.columns.items()}

    def nbytes(self) -> int:
        """Approximate in-memory footprint of the page payload."""
        return sum(arr.nbytes for arr in self.columns.values())


class PageCodec:
    """Binary (de)serialization of pages.

    Layout: magic, page_id, start_row, column count; then per column a
    length-prefixed utf-8 name, a length-prefixed dtype string, the row
    count and the raw array bytes.  Object dtypes are rejected -- the
    engine stores scalars and fixed-width byte strings only, mirroring a
    real page layout (the paper's §3.5 vector columns use fixed-width
    binary, see :mod:`repro.vectype`).
    """

    @staticmethod
    def encode(page: Page) -> bytes:
        """Serialize a page to bytes."""
        buf = io.BytesIO()
        buf.write(_MAGIC)
        buf.write(struct.pack("<qqi", page.page_id, page.start_row, len(page.columns)))
        for name, arr in page.columns.items():
            if arr.dtype == object:
                raise TypeError(f"column {name!r} has object dtype; not pageable")
            arr = np.ascontiguousarray(arr)
            name_bytes = name.encode("utf-8")
            dtype_bytes = arr.dtype.str.encode("ascii")
            buf.write(struct.pack("<i", len(name_bytes)))
            buf.write(name_bytes)
            buf.write(struct.pack("<i", len(dtype_bytes)))
            buf.write(dtype_bytes)
            raw = arr.tobytes()
            buf.write(struct.pack("<qq", len(arr), len(raw)))
            buf.write(raw)
        return buf.getvalue()

    @staticmethod
    def decode(data: bytes) -> Page:
        """Deserialize bytes produced by :meth:`encode`."""
        buf = io.BytesIO(data)
        magic = buf.read(4)
        if magic != _MAGIC:
            raise ValueError("not a page: bad magic")
        page_id, start_row, ncols = struct.unpack("<qqi", buf.read(20))
        columns: dict[str, np.ndarray] = {}
        for _ in range(ncols):
            (name_len,) = struct.unpack("<i", buf.read(4))
            name = buf.read(name_len).decode("utf-8")
            (dtype_len,) = struct.unpack("<i", buf.read(4))
            dtype = np.dtype(buf.read(dtype_len).decode("ascii"))
            nrows, nbytes = struct.unpack("<qq", buf.read(16))
            arr = np.frombuffer(buf.read(nbytes), dtype=dtype).copy()
            if len(arr) != nrows:
                raise ValueError(f"corrupt page: column {name!r} row mismatch")
            columns[name] = arr
        return Page(page_id=page_id, start_row=start_row, columns=columns)
