"""Pages: the unit of storage and I/O accounting.

A page is a *row group*: all columns for a contiguous range of rows of one
table.  This columnar-within-page layout matches how the engine is used
(the magnitude table is scanned column-at-a-time with numpy) while keeping
the paper's accounting unit -- "how many pages did this query touch" --
well defined.

Pages serialize to a simple self-describing binary format so the
file-backed storage does real disk round trips.  The format carries a
CRC32 of the body (the analog of SQL Server's ``PAGE_VERIFY CHECKSUM``):
a torn or corrupted payload is detected at decode time and surfaces as
:class:`repro.db.errors.CorruptPageError` instead of silently decoding
into wrong rows.
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.db.errors import CorruptPageError

__all__ = ["Page", "PageCodec"]

_MAGIC = b"RPG2"
#: Pre-checksum format; still decodable (no verification possible).
_LEGACY_MAGIC = b"RPG1"
#: zlib-compressed body (index node pages).  The CRC32 covers the
#: *compressed* payload, so torn bytes are caught before decompression.
_COMPRESSED_MAGIC = b"RPGZ"


@dataclass
class Page:
    """One row group of a table.

    Attributes
    ----------
    page_id:
        Identifier unique within the owning table's page file.
    start_row:
        Global row offset of the first row in this page.
    columns:
        Mapping of column name to a numpy array; all arrays share length.
    """

    page_id: int
    start_row: int
    columns: dict[str, np.ndarray]
    #: Serialize with a zlib-compressed body (``RPGZ``).  Index node
    #: pages set this: their box coordinates compress well and they are
    #: read through a decoded cache, so the extra CPU is paid rarely.
    #: Round-trips through the codec (decode restores the flag).
    compress: bool = False

    @property
    def num_rows(self) -> int:
        """Number of rows in the page."""
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def end_row(self) -> int:
        """Global row offset one past the last row."""
        return self.start_row + self.num_rows

    def row_ids(self) -> np.ndarray:
        """Global row ids of the rows in this page."""
        return np.arange(self.start_row, self.end_row, dtype=np.int64)

    def slice(self, lo: int, hi: int) -> dict[str, np.ndarray]:
        """Columns restricted to local row range ``[lo, hi)``."""
        return {name: arr[lo:hi] for name, arr in self.columns.items()}

    def nbytes(self) -> int:
        """Approximate in-memory footprint of the page payload."""
        return sum(arr.nbytes for arr in self.columns.values())


class PageCodec:
    """Binary (de)serialization of pages.

    Layout: magic, body CRC32, then the body: page_id, start_row, column
    count; per column a length-prefixed utf-8 name, a length-prefixed
    dtype string, the row count and the raw array bytes.  Object dtypes
    are rejected -- the engine stores scalars and fixed-width byte
    strings only, mirroring a real page layout (the paper's §3.5 vector
    columns use fixed-width binary, see :mod:`repro.vectype`).

    The CRC covers the whole body, so any bit flip after the header is
    caught at decode time (:class:`~repro.db.errors.CorruptPageError`).
    Legacy ``RPG1`` pages (pre-checksum) still decode, unverified.
    Pages flagged ``compress=True`` serialize as ``RPGZ``: the body is
    zlib-compressed and the CRC covers the compressed payload, so torn
    bytes surface through the same checksum path before any inflate.
    """

    @staticmethod
    def encode(page: Page) -> bytes:
        """Serialize a page to bytes (checksummed)."""
        buf = io.BytesIO()
        buf.write(struct.pack("<qqi", page.page_id, page.start_row, len(page.columns)))
        for name, arr in page.columns.items():
            if arr.dtype == object:
                raise TypeError(f"column {name!r} has object dtype; not pageable")
            arr = np.ascontiguousarray(arr)
            name_bytes = name.encode("utf-8")
            dtype_bytes = arr.dtype.str.encode("ascii")
            buf.write(struct.pack("<i", len(name_bytes)))
            buf.write(name_bytes)
            buf.write(struct.pack("<i", len(dtype_bytes)))
            buf.write(dtype_bytes)
            raw = arr.tobytes()
            buf.write(struct.pack("<qq", len(arr), len(raw)))
            buf.write(raw)
        body = buf.getvalue()
        if page.compress:
            payload = zlib.compress(body, 6)
            return _COMPRESSED_MAGIC + struct.pack("<I", zlib.crc32(payload)) + payload
        return _MAGIC + struct.pack("<I", zlib.crc32(body)) + body

    @staticmethod
    def stored_checksum(data: bytes) -> int | None:
        """The body CRC32 recorded in an encoded page, without verifying it.

        This is the decoded-page cache's key ingredient: two reads of the
        same (namespace, page_id) whose stored checksums match carry the
        same body, so a previously decoded-and-verified copy can be
        reused without re-running the CRC or the decode.  Returns
        ``None`` for legacy ``RPG1`` pages (no checksum to key on) and
        for blobs too short to carry one.
        """
        if len(data) < 8 or data[:4] not in (_MAGIC, _COMPRESSED_MAGIC):
            return None
        return struct.unpack("<I", data[4:8])[0]

    @staticmethod
    def decode(data: bytes) -> Page:
        """Deserialize bytes produced by :meth:`encode`.

        Raises :class:`~repro.db.errors.CorruptPageError` on bad magic, a
        checksum mismatch, or a row-count/payload inconsistency.
        """
        magic = data[:4]
        compressed = False
        if magic == _MAGIC:
            (checksum,) = struct.unpack("<I", data[4:8])
            body = data[8:]
            if zlib.crc32(body) != checksum:
                raise CorruptPageError("corrupt page: checksum mismatch")
        elif magic == _COMPRESSED_MAGIC:
            (checksum,) = struct.unpack("<I", data[4:8])
            payload = data[8:]
            if zlib.crc32(payload) != checksum:
                raise CorruptPageError("corrupt page: checksum mismatch")
            try:
                body = zlib.decompress(payload)
            except zlib.error as exc:  # pragma: no cover - CRC catches first
                raise CorruptPageError(f"corrupt page: {exc}") from exc
            compressed = True
        elif magic == _LEGACY_MAGIC:
            body = data[4:]
        else:
            raise CorruptPageError("not a page: bad magic")
        buf = io.BytesIO(body)
        try:
            page_id, start_row, ncols = struct.unpack("<qqi", buf.read(20))
            columns: dict[str, np.ndarray] = {}
            for _ in range(ncols):
                (name_len,) = struct.unpack("<i", buf.read(4))
                name = buf.read(name_len).decode("utf-8")
                (dtype_len,) = struct.unpack("<i", buf.read(4))
                dtype = np.dtype(buf.read(dtype_len).decode("ascii"))
                nrows, nbytes = struct.unpack("<qq", buf.read(16))
                arr = np.frombuffer(buf.read(nbytes), dtype=dtype).copy()
                if len(arr) != nrows:
                    raise CorruptPageError(f"corrupt page: column {name!r} row mismatch")
                columns[name] = arr
        except CorruptPageError:
            raise
        except (struct.error, UnicodeDecodeError, TypeError, ValueError) as exc:
            # A checksummed page cannot reach here; legacy pages can.
            raise CorruptPageError(f"corrupt page: {exc}") from exc
        return Page(
            page_id=page_id,
            start_row=start_row,
            columns=columns,
            compress=compressed,
        )
