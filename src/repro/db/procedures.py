"""Stored procedures: code that runs next to the data.

The paper's analysis code is implemented as CLR stored procedures so that
"code is running in the same place where data is stored" (§1).  The
Python analog is a registry of callables bound to a
:class:`~repro.db.catalog.Database`: procedures receive the database as
their first argument and are invoked by name, so examples and the
visualization producers interact with the engine exactly the way the
paper's clients call ``EXEC`` on the server.

Every call is timed: alongside ``call_count`` the registry accumulates
per-procedure wall time, which the query service's metrics registry
surfaces next to its own per-query numbers.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.catalog import Database

__all__ = ["ProcedureRegistry", "procedure"]


@dataclass
class _Procedure:
    name: str
    func: Callable
    description: str
    call_count: int = 0
    total_time: float = 0.0


@dataclass
class ProcedureRegistry:
    """Named procedures bound to one database."""

    database: "Database"
    _procs: dict[str, _Procedure] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def register(
        self, name: str, func: Callable, description: str = ""
    ) -> None:
        """Register ``func`` under ``name``; the name must be unused."""
        with self._lock:
            if name in self._procs:
                raise ValueError(f"procedure {name!r} already registered")
            self._procs[name] = _Procedure(
                name=name,
                func=func,
                description=description or (func.__doc__ or "").strip().split("\n")[0],
            )

    def call(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke a procedure by name, passing the database first.

        The call itself runs outside the registry lock (procedures may be
        slow and may themselves call other procedures); only the counter
        updates are serialized.
        """
        try:
            proc = self._procs[name]
        except KeyError:
            raise KeyError(f"no procedure {name!r} registered") from None
        started = time.perf_counter()
        try:
            return proc.func(self.database, *args, **kwargs)
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                proc.call_count += 1
                proc.total_time += elapsed

    def names(self) -> list[str]:
        """Registered procedure names."""
        return sorted(self._procs)

    def describe(self, name: str) -> str:
        """One-line description of a procedure."""
        return self._procs[name].description

    def call_count(self, name: str) -> int:
        """How many times a procedure has been invoked."""
        return self._procs[name].call_count

    def total_time(self, name: str) -> float:
        """Cumulative wall seconds spent inside a procedure."""
        return self._procs[name].total_time

    def timings(self) -> dict[str, dict[str, float]]:
        """Per-procedure ``{"calls": n, "total_time": s}`` snapshot."""
        with self._lock:
            return {
                name: {
                    "calls": float(proc.call_count),
                    "total_time": proc.total_time,
                }
                for name, proc in sorted(self._procs.items())
            }

    def __contains__(self, name: str) -> bool:
        return name in self._procs


def procedure(registry: ProcedureRegistry, name: str, description: str = ""):
    """Decorator form of :meth:`ProcedureRegistry.register`::

        @procedure(db.procedures, "spGetNearestNeighbors")
        def nearest(db, point, k):
            ...
    """

    def decorator(func: Callable) -> Callable:
        registry.register(name, func, description=description)
        return func

    return decorator
