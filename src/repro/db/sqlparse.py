"""Parsing SQL WHERE clauses into expression trees.

The paper mined the SkyServer query log for complex spatial predicates
(Figure 2 is one, verbatim SQL).  This module closes that loop for the
reproduction: textual WHERE clauses in the Figure 2 grammar -- numbers,
column identifiers, ``+ - * /``, comparisons, ``AND / OR / NOT``,
parentheses -- parse into :mod:`repro.db.expressions` trees, which then
evaluate against tables or convert to polyhedra for the spatial indexes.

``parse_where`` inverts :func:`repro.db.expressions.expression_to_sql`
exactly (a property test checks the round trip), and accepts the common
surface variations real log queries have (case-insensitive keywords,
redundant parentheses, unary minus, scientific notation).
"""

from __future__ import annotations

import re

from repro.db.expressions import Col, Const, Expr, Func

__all__ = ["parse_where", "SqlParseError"]


class SqlParseError(ValueError):
    """Raised on malformed WHERE-clause text."""


_TOKEN_PATTERN = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+\.?\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op><=|>=|<|>|\+|-|\*|/|\(|\))"
    r")"
)

_KEYWORDS = {"and", "or", "not"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise SqlParseError(f"unexpected input at: {remainder[:30]!r}")
        if match.lastgroup == "number":
            tokens.append(("number", match.group("number")))
        elif match.lastgroup == "name":
            word = match.group("name")
            if word.lower() in _KEYWORDS:
                tokens.append(("keyword", word.lower()))
            else:
                tokens.append(("name", word))
        else:
            tokens.append(("op", match.group("op")))
        position = match.end()
    return tokens


class _Parser:
    """Recursive descent over the WHERE grammar.

    Precedence (loosest first): OR, AND, NOT, comparison, additive,
    multiplicative, unary minus, atom.
    """

    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._position = 0

    def _peek(self) -> tuple[str, str] | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise SqlParseError("unexpected end of input")
        self._position += 1
        return token

    def _expect_op(self, op: str) -> None:
        token = self._advance()
        if token != ("op", op):
            raise SqlParseError(f"expected {op!r}, got {token[1]!r}")

    def parse(self) -> Expr:
        expr = self._or_expr()
        if self._peek() is not None:
            raise SqlParseError(f"trailing input from {self._peek()[1]!r}")
        return expr

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._peek() == ("keyword", "or"):
            self._advance()
            left = left | self._and_expr()
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._peek() == ("keyword", "and"):
            self._advance()
            left = left & self._not_expr()
        return left

    def _not_expr(self) -> Expr:
        if self._peek() == ("keyword", "not"):
            self._advance()
            return ~self._not_expr()
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        token = self._peek()
        if token is not None and token[0] == "op" and token[1] in ("<", "<=", ">", ">="):
            self._advance()
            right = self._additive()
            if token[1] == "<":
                return left < right
            if token[1] == "<=":
                return left <= right
            if token[1] == ">":
                return left > right
            return left >= right
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token is None or token[0] != "op" or token[1] not in "+-":
                return left
            self._advance()
            right = self._multiplicative()
            left = left + right if token[1] == "+" else left - right

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token is None or token[0] != "op" or token[1] not in "*/":
                return left
            self._advance()
            right = self._unary()
            left = left * right if token[1] == "*" else left / right

    def _unary(self) -> Expr:
        if self._peek() == ("op", "-"):
            self._advance()
            return -self._unary()
        return self._atom()

    def _atom(self) -> Expr:
        token = self._advance()
        if token[0] == "number":
            return Const(float(token[1]))
        if token[0] == "name":
            # Function call: NAME '(' expr ')'.
            if self._peek() == ("op", "(") and token[1].lower() in Func._funcs:
                self._advance()
                inner = self._or_expr()
                self._expect_op(")")
                return Func(token[1], inner)
            return Col(token[1])
        if token == ("op", "("):
            inner = self._or_expr()
            self._expect_op(")")
            return inner
        raise SqlParseError(f"unexpected token {token[1]!r}")


def parse_where(text: str) -> Expr:
    """Parse a WHERE-clause body (without the ``WHERE`` keyword)."""
    tokens = _tokenize(text)
    if not tokens:
        raise SqlParseError("empty WHERE clause")
    return _Parser(tokens).parse()
