"""I/O and execution statistics.

Every performance claim in the reproduction is expressed in terms of these
counters (pages read, cache hits, rows filtered), because wall-clock time
in pure Python does not transfer from the paper's testbed while the I/O
profile does.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["IOStats", "QueryStats"]


@dataclass
class IOStats:
    """Mutable counters shared by a storage backend and its buffer pool.

    Counters may be incremented from many worker threads at once (the
    query service runs concurrent scans over one storage backend), so
    increments go through :meth:`add`, which holds an internal lock.
    Plain attribute reads stay lock-free: a torn read can only observe a
    slightly stale count, never a corrupted one.
    """

    page_reads: int = 0
    page_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    read_faults: int = 0
    read_retries: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def add(
        self,
        *,
        page_reads: int = 0,
        page_writes: int = 0,
        bytes_read: int = 0,
        bytes_written: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
        read_faults: int = 0,
        read_retries: int = 0,
    ) -> None:
        """Atomically increment any subset of the counters."""
        with self._lock:
            self.page_reads += page_reads
            self.page_writes += page_writes
            self.bytes_read += bytes_read
            self.bytes_written += bytes_written
            self.cache_hits += cache_hits
            self.cache_misses += cache_misses
            self.read_faults += read_faults
            self.read_retries += read_retries

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            self.page_reads = 0
            self.page_writes = 0
            self.bytes_read = 0
            self.bytes_written = 0
            self.cache_hits = 0
            self.cache_misses = 0
            self.read_faults = 0
            self.read_retries = 0

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counters."""
        with self._lock:
            return IOStats(
                page_reads=self.page_reads,
                page_writes=self.page_writes,
                bytes_read=self.bytes_read,
                bytes_written=self.bytes_written,
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
                read_faults=self.read_faults,
                read_retries=self.read_retries,
            )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counter differences relative to an earlier snapshot."""
        return IOStats(
            page_reads=self.page_reads - earlier.page_reads,
            page_writes=self.page_writes - earlier.page_writes,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_misses=self.cache_misses - earlier.cache_misses,
            read_faults=self.read_faults - earlier.read_faults,
            read_retries=self.read_retries - earlier.read_retries,
        )

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view of the counters (for reports and JSON)."""
        with self._lock:
            return {
                "page_reads": self.page_reads,
                "page_writes": self.page_writes,
                "bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "read_faults": self.read_faults,
                "read_retries": self.read_retries,
            }

    def __str__(self) -> str:
        return (
            f"IOStats(reads={self.page_reads}, writes={self.page_writes}, "
            f"hits={self.cache_hits}, misses={self.cache_misses})"
        )


@dataclass
class QueryStats:
    """Per-query execution statistics returned next to result sets.

    ``pages_touched`` counts *distinct* pages: two leaf ranges sharing a
    boundary page cost one page fetch, exactly as they do through the
    buffer pool.  Executors report pages via :meth:`record_page`.
    """

    rows_examined: int = 0
    rows_returned: int = 0
    cells_inside: int = 0
    cells_outside: int = 0
    cells_partial: int = 0
    nodes_visited: int = 0
    extra: dict = field(default_factory=dict)
    _pages: set = field(default_factory=set, repr=False)

    @property
    def pages_touched(self) -> int:
        """Number of distinct pages this query read."""
        return len(self._pages)

    def record_page(self, namespace: str, page_id: int) -> None:
        """Note that a page was read on behalf of this query."""
        self._pages.add((namespace, page_id))

    @property
    def filter_efficiency(self) -> float:
        """Fraction of examined rows that made it into the result."""
        if self.rows_examined == 0:
            return 1.0
        return self.rows_returned / self.rows_examined

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's counters into this one.

        ``extra`` entries are summed when numeric (so per-shard counters
        like ``boxes_examined`` aggregate across a scatter-gather merge)
        and first-writer-wins otherwise.
        """
        self._pages |= other._pages
        self.rows_examined += other.rows_examined
        self.rows_returned += other.rows_returned
        self.cells_inside += other.cells_inside
        self.cells_outside += other.cells_outside
        self.cells_partial += other.cells_partial
        self.nodes_visited += other.nodes_visited
        for key, value in other.extra.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                self.extra.setdefault(key, value)
            else:
                self.extra[key] = self.extra.get(key, 0) + value
