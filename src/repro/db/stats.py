"""I/O and execution statistics.

Every performance claim in the reproduction is expressed in terms of these
counters (pages read, cache hits, rows filtered), because wall-clock time
in pure Python does not transfer from the paper's testbed while the I/O
profile does.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields

__all__ = ["IOStats", "QueryStats"]


@dataclass
class IOStats:
    """Mutable counters shared by a storage backend and its buffer pool.

    Counters may be incremented from many worker threads at once (the
    query service runs concurrent scans over one storage backend), so
    increments go through :meth:`add`, which holds an internal lock.
    Plain attribute reads stay lock-free: a torn read can only observe a
    slightly stale count, never a corrupted one.

    The I/O-acceleration counters decompose a page fetch into its parts:
    ``checksum_verifications`` counts actual decode-and-verify passes,
    ``decode_hits`` counts fetches whose bytes matched an already-decoded
    copy (CRC and decode both skipped), ``pages_prefetched`` counts pages
    brought in by coalesced read-ahead, and ``coalesced_reads`` counts
    the multi-page storage requests those rode in on.

    The index counters cover paged kd-trees (:mod:`repro.core.kdpaged`):
    ``node_cache_hits`` / ``node_cache_misses`` are probes of a tree's
    decoded node cache, ``index_pages_decoded`` counts node pages
    materialized into that cache (one per miss), and
    ``node_cache_evictions`` counts node pages pushed out by the byte
    budget.
    """

    page_reads: int = 0
    page_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    read_faults: int = 0
    read_retries: int = 0
    checksum_verifications: int = 0
    decode_hits: int = 0
    pages_prefetched: int = 0
    coalesced_reads: int = 0
    index_pages_decoded: int = 0
    node_cache_hits: int = 0
    node_cache_misses: int = 0
    node_cache_evictions: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    _COUNTERS = (
        "page_reads",
        "page_writes",
        "bytes_read",
        "bytes_written",
        "cache_hits",
        "cache_misses",
        "read_faults",
        "read_retries",
        "checksum_verifications",
        "decode_hits",
        "pages_prefetched",
        "coalesced_reads",
        "index_pages_decoded",
        "node_cache_hits",
        "node_cache_misses",
        "node_cache_evictions",
    )

    def add(self, **deltas: int) -> None:
        """Atomically increment any subset of the counters."""
        with self._lock:
            for name, delta in deltas.items():
                if name not in self._COUNTERS:
                    raise TypeError(f"unknown IOStats counter {name!r}")
                setattr(self, name, getattr(self, name) + delta)

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            for name in self._COUNTERS:
                setattr(self, name, 0)

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counters."""
        with self._lock:
            return IOStats(**{name: getattr(self, name) for name in self._COUNTERS})

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counter differences relative to an earlier snapshot."""
        return IOStats(
            **{
                name: getattr(self, name) - getattr(earlier, name)
                for name in self._COUNTERS
            }
        )

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view of the counters (for reports and JSON)."""
        with self._lock:
            return {name: getattr(self, name) for name in self._COUNTERS}

    def __str__(self) -> str:
        return (
            f"IOStats(reads={self.page_reads}, writes={self.page_writes}, "
            f"hits={self.cache_hits}, misses={self.cache_misses})"
        )


# Every counter must be an init-able dataclass field (snapshot relies on it).
assert set(IOStats._COUNTERS) == {
    f.name for f in fields(IOStats) if f.init
}, "IOStats._COUNTERS out of sync with its fields"


@dataclass
class QueryStats:
    """Per-query execution statistics returned next to result sets.

    ``pages_touched`` counts *distinct* pages: two leaf ranges sharing a
    boundary page cost one page fetch, exactly as they do through the
    buffer pool.  Executors report pages via :meth:`record_page`.

    ``pages_skipped`` counts candidate pages a zone map proved
    non-contributing before any read or decode; ``pages_prefetched``
    counts pages this query pulled in through coalesced read-ahead.
    """

    rows_examined: int = 0
    rows_returned: int = 0
    cells_inside: int = 0
    cells_outside: int = 0
    cells_partial: int = 0
    nodes_visited: int = 0
    pages_skipped: int = 0
    pages_prefetched: int = 0
    extra: dict = field(default_factory=dict)
    _pages: set = field(default_factory=set, repr=False)

    @property
    def pages_touched(self) -> int:
        """Number of distinct pages this query read."""
        return len(self._pages)

    def record_page(self, namespace: str, page_id: int) -> None:
        """Note that a page was read on behalf of this query."""
        self._pages.add((namespace, page_id))

    @property
    def filter_efficiency(self) -> float:
        """Fraction of examined rows that made it into the result."""
        if self.rows_examined == 0:
            return 1.0
        return self.rows_returned / self.rows_examined

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's counters into this one.

        ``extra`` entries are summed when numeric (so per-shard counters
        like ``boxes_examined`` aggregate across a scatter-gather merge)
        and first-writer-wins otherwise.
        """
        self._pages |= other._pages
        self.rows_examined += other.rows_examined
        self.rows_returned += other.rows_returned
        self.cells_inside += other.cells_inside
        self.cells_outside += other.cells_outside
        self.cells_partial += other.cells_partial
        self.nodes_visited += other.nodes_visited
        self.pages_skipped += other.pages_skipped
        self.pages_prefetched += other.pages_prefetched
        for key, value in other.extra.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                self.extra.setdefault(key, value)
            else:
                self.extra[key] = self.extra.get(key, 0) + value
