"""Materialized projections: the covering-index analog.

The paper's magnitude table is 53 GB with 300+ columns per object, but
the visualization "adaptively visualizes the first three principal
components" and most color cuts touch five columns.  A real server
avoids dragging the wide rows through the buffer pool by building a
*covering index* / narrow materialized projection.  This module adds
that to the engine:

* :func:`create_projection` materializes selected columns as a narrow
  table (optionally with its own clustered order);
* :class:`ProjectionSet` routes a scan to the narrowest projection that
  covers the referenced columns, falling back to the base table.

Because pages are row groups, the win is real I/O: the same rows in a
narrow table occupy proportionally fewer bytes (and fewer pages at equal
rows-per-page budgets).
"""

from __future__ import annotations

import numpy as np

from repro.db.catalog import Database
from repro.db.expressions import Expr
from repro.db.scan import full_scan
from repro.db.stats import QueryStats
from repro.db.table import Table

__all__ = ["create_projection", "ProjectionSet"]


def create_projection(
    database: Database,
    source: Table,
    name: str,
    columns: list[str],
    rows_per_page: int | None = None,
    clustered_by: tuple[str, ...] | list[str] = (),
) -> Table:
    """Materialize ``columns`` of ``source`` as a narrow table.

    Row order follows the source unless ``clustered_by`` re-sorts; when
    the order is preserved, ``_row_id`` values line up between the base
    table and the projection (so results can be joined back trivially).
    ``rows_per_page`` defaults to packing the same *byte* budget per
    page as the source, which is what makes narrow scans cheaper in
    pages, not just bytes.
    """
    missing = [c for c in columns if c not in source.column_names]
    if missing:
        raise KeyError(f"source has no columns {missing}")
    data = source.read_columns(list(columns))
    if rows_per_page is None:
        source_row_bytes = sum(
            source.dtype_of(c).itemsize for c in source.column_names
        )
        projection_row_bytes = max(
            1, sum(source.dtype_of(c).itemsize for c in columns)
        )
        rows_per_page = max(
            1,
            int(source.rows_per_page * source_row_bytes / projection_row_bytes),
        )
    return database.create_table(
        name,
        data,
        rows_per_page=rows_per_page,
        clustered_by=clustered_by,
    )


class ProjectionSet:
    """Routes scans to the narrowest covering projection."""

    def __init__(self, base: Table):
        self.base = base
        self._projections: list[Table] = []

    def add(self, projection: Table) -> None:
        """Register a projection (must not out-row the base)."""
        if projection.num_rows != self.base.num_rows:
            raise ValueError("projection row count differs from the base table")
        self._projections.append(projection)

    def route(self, columns: set[str]) -> Table:
        """The cheapest table covering ``columns`` (fewest bytes per row)."""
        candidates = [self.base] + [
            p for p in self._projections if columns <= set(p.column_names)
        ]
        if not columns <= set(self.base.column_names):
            raise KeyError(
                f"columns {sorted(columns - set(self.base.column_names))} "
                "not in the base table"
            )

        def row_bytes(table: Table) -> int:
            return sum(table.dtype_of(c).itemsize for c in table.column_names)

        return min(candidates, key=row_bytes)

    def scan(
        self, predicate: Expr, columns: list[str] | None = None
    ) -> tuple[dict[str, np.ndarray], QueryStats, str]:
        """Full scan through the routed table.

        Returns ``(rows, stats, table_name)`` so callers can see which
        projection served the query.
        """
        needed = set(predicate.referenced_columns())
        if columns:
            needed |= set(columns)
        table = self.route(needed)
        rows, stats = full_scan(table, predicate=predicate, columns=columns)
        return rows, stats, table.name
