"""Write-ahead logging, and why the paper turned it off.

The paper's working environment: "recovery mode was set to simple in
order to avoid huge / slow log processes" (§3).  Bulk-building spatial
indexes writes every page once; full recovery logging doubles the bytes
written (page image + log record) for no benefit on a static,
rebuildable database.  This module makes that a measurable choice:

* :class:`LoggedStorage` wraps any storage backend and appends a log
  record per page write -- the "full" recovery model;
* ``recovery="simple"`` (the default everywhere else) is the paper's
  configuration: no log, half the write traffic.

The E-extension bench builds the same index under both models and
reports the write amplification.
"""

from __future__ import annotations

import logging
import struct
import zlib
from dataclasses import dataclass

from repro.db.errors import CorruptPageError
from repro.db.pages import Page, PageCodec
from repro.db.storage import Storage

__all__ = ["LoggedStorage", "LogRecord"]

_LOG_MAGIC = b"RLG1"

logger = logging.getLogger(__name__)


@dataclass
class LogRecord:
    """One durable log entry: enough to redo a page write."""

    sequence: int
    namespace: str
    page_id: int
    payload: bytes
    checksum: int

    def verify(self) -> bool:
        """Whether the payload matches its recorded checksum."""
        return zlib.crc32(self.payload) == self.checksum


class LoggedStorage(Storage):
    """Full-recovery storage: every page write also appends a log record.

    The log lives in memory as encoded bytes (the cost model counts the
    bytes; durability of the log media is out of scope), and
    :meth:`replay` can rebuild a fresh storage backend from the log
    alone -- the property full recovery buys.
    """

    def __init__(self, inner: Storage):
        super().__init__()
        self.inner = inner
        self._log: list[bytes] = []
        self._sequence = 0

    # -- storage interface -------------------------------------------------------

    def write_page(self, namespace: str, page: Page) -> None:
        payload = PageCodec.encode(page)
        self._append_record(namespace, page.page_id, payload)
        self.inner.write_page(namespace, page)
        # Mirror the inner backend's counters plus the log's.
        self.stats.page_writes = self.inner.stats.page_writes
        self.stats.bytes_written = self.inner.stats.bytes_written + self.log_bytes()

    def read_page_bytes(self, namespace: str, page_id: int) -> bytes:
        data = self.inner.read_page_bytes(namespace, page_id)
        self.stats.page_reads = self.inner.stats.page_reads
        self.stats.bytes_read = self.inner.stats.bytes_read
        return data

    def read_pages_bytes(self, namespace: str, page_ids) -> list[bytes]:
        blobs = self.inner.read_pages_bytes(namespace, page_ids)
        self.stats.page_reads = self.inner.stats.page_reads
        self.stats.bytes_read = self.inner.stats.bytes_read
        return blobs

    def num_pages(self, namespace: str) -> int:
        return self.inner.num_pages(namespace)

    def drop_namespace(self, namespace: str) -> None:
        self.inner.drop_namespace(namespace)

    # -- the log -------------------------------------------------------------------

    def _append_record(self, namespace: str, page_id: int, payload: bytes) -> None:
        self._sequence += 1
        name_bytes = namespace.encode("utf-8")
        header = _LOG_MAGIC + struct.pack(
            "<qqiiI",
            self._sequence,
            page_id,
            len(name_bytes),
            len(payload),
            zlib.crc32(payload),
        )
        self._log.append(header + name_bytes + payload)

    @staticmethod
    def _decode_record(raw: bytes) -> LogRecord:
        """Decode one raw log entry; raises ``ValueError`` when mangled."""
        if raw[:4] != _LOG_MAGIC:
            raise ValueError("corrupt log record magic")
        try:
            sequence, page_id, name_len, payload_len, checksum = struct.unpack(
                "<qqiiI", raw[4:32]
            )
            name = raw[32: 32 + name_len].decode("utf-8")
        except (struct.error, UnicodeDecodeError) as exc:
            raise ValueError(f"corrupt log record header: {exc}") from exc
        payload = raw[32 + name_len: 32 + name_len + payload_len]
        return LogRecord(
            sequence=sequence,
            namespace=name,
            page_id=page_id,
            payload=payload,
            checksum=checksum,
        )

    def log_records(self) -> list[LogRecord]:
        """Decode every log record (oldest first)."""
        return [self._decode_record(raw) for raw in self._log]

    def log_bytes(self) -> int:
        """Total bytes the log occupies -- the 'huge / slow log' cost."""
        return sum(len(raw) for raw in self._log)

    def replay(self, target: Storage, on_corrupt: str = "skip") -> int:
        """Redo the log into an empty storage; returns records applied.

        A torn log record is never silently applied.  What happens to it
        depends on ``on_corrupt``:

        * ``"skip"`` (default) -- log a warning and continue with the
          remaining records, the way a real redo pass survives a torn
          tail write; the page is simply not recovered.
        * ``"raise"`` -- stop recovery with ``ValueError`` at the first
          bad record (strict mode for integrity audits).

        A record whose *payload* decodes wrong despite a matching
        checksum (possible for pre-checksum page formats) is treated the
        same way.
        """
        if on_corrupt not in ("skip", "raise"):
            raise ValueError("on_corrupt must be 'skip' or 'raise'")
        applied = 0
        for position, raw in enumerate(self._log):
            try:
                record = self._decode_record(raw)
            except ValueError as exc:
                if on_corrupt == "raise":
                    raise
                logger.warning("skipping unreadable log record %d: %s", position, exc)
                continue
            if not record.verify():
                message = f"log record {record.sequence} failed its checksum"
                if on_corrupt == "raise":
                    raise ValueError(message)
                logger.warning("skipping %s", message)
                continue
            try:
                page = PageCodec.decode(record.payload)
            except CorruptPageError as exc:
                if on_corrupt == "raise":
                    raise ValueError(
                        f"log record {record.sequence} holds an undecodable page"
                    ) from exc
                logger.warning(
                    "skipping log record %d (undecodable page): %s",
                    record.sequence,
                    exc,
                )
                continue
            target.write_page(record.namespace, page)
            applied += 1
        return applied
