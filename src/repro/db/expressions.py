"""Predicate expression trees.

The engine has no SQL parser; WHERE clauses are built as expression trees
with Python operators::

    g, r, i = Col("dered_g"), Col("dered_r"), Col("dered_i")
    predicate = ((r - i - (g - r) / 4 - 0.18) < 0.2) & ((g - r) > 0.5)

Trees evaluate page-at-a-time against the column arrays of a page.  The
crucial extra capability -- the bridge from relational predicates to the
spatial indexes -- is *linear extraction*: a conjunction of comparisons
between linear combinations of columns (exactly the family of the paper's
Figure 2 SkyServer queries) converts into a
:class:`repro.geometry.Polyhedron` over a chosen column ordering, which
the kd-tree and Voronoi indexes can then evaluate geometrically.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.geometry.halfspace import Halfspace, Polyhedron

__all__ = [
    "Expr",
    "Func",
    "log10",
    "Col",
    "Const",
    "InList",
    "LinearExtractionError",
    "expression_to_polyhedron",
    "expression_to_query",
    "expression_to_sql",
]


class LinearExtractionError(ValueError):
    """Raised when an expression is not a conjunction of linear inequalities."""


class Expr(abc.ABC):
    """Base class of all expression nodes; supports operator composition."""

    @abc.abstractmethod
    def evaluate(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """Evaluate against column arrays, returning an array result."""

    @abc.abstractmethod
    def referenced_columns(self) -> set[str]:
        """Column names this expression reads."""

    # arithmetic -----------------------------------------------------------

    def __add__(self, other) -> "Expr":
        return BinOp("+", self, _wrap(other))

    def __radd__(self, other) -> "Expr":
        return BinOp("+", _wrap(other), self)

    def __sub__(self, other) -> "Expr":
        return BinOp("-", self, _wrap(other))

    def __rsub__(self, other) -> "Expr":
        return BinOp("-", _wrap(other), self)

    def __mul__(self, other) -> "Expr":
        return BinOp("*", self, _wrap(other))

    def __rmul__(self, other) -> "Expr":
        return BinOp("*", _wrap(other), self)

    def __truediv__(self, other) -> "Expr":
        return BinOp("/", self, _wrap(other))

    def __rtruediv__(self, other) -> "Expr":
        return BinOp("/", _wrap(other), self)

    def __neg__(self) -> "Expr":
        return BinOp("-", Const(0.0), self)

    # comparisons -----------------------------------------------------------

    def __lt__(self, other) -> "Compare":
        return Compare("<", self, _wrap(other))

    def __le__(self, other) -> "Compare":
        return Compare("<=", self, _wrap(other))

    def __gt__(self, other) -> "Compare":
        return Compare(">", self, _wrap(other))

    def __ge__(self, other) -> "Compare":
        return Compare(">=", self, _wrap(other))

    # logic -------------------------------------------------------------------

    def __and__(self, other) -> "Expr":
        return And(self, other)

    def __or__(self, other) -> "Expr":
        return Or(self, other)

    def __invert__(self) -> "Expr":
        return Not(self)

    # membership ---------------------------------------------------------------

    def isin(self, values) -> "InList":
        return InList(self, tuple(float(v) for v in np.asarray(values).ravel()))


def _wrap(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, np.floating, np.integer)):
        return Const(float(value))
    raise TypeError(f"cannot use {type(value).__name__} in an expression")


@dataclass(frozen=True)
class Col(Expr):
    """Reference to a table column by name."""

    name: str

    def evaluate(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        return columns[self.name]

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:  # dataclass eq + Expr __lt__ overload
        return hash(("Col", self.name))


@dataclass(frozen=True)
class Const(Expr):
    """A numeric literal."""

    value: float

    def evaluate(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        return np.float64(self.value)

    def referenced_columns(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return f"{self.value:g}"

    def __hash__(self) -> int:
        return hash(("Const", self.value))


class BinOp(Expr):
    """Arithmetic node: ``left op right`` with op in ``+ - * /``."""

    _ops = {
        "+": np.add,
        "-": np.subtract,
        "*": np.multiply,
        "/": np.divide,
    }

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in self._ops:
            raise ValueError(f"unknown arithmetic op {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        return self._ops[self.op](
            self.left.evaluate(columns), self.right.evaluate(columns)
        )

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Func(Expr):
    """Scalar function node: LOG10 / ABS / SQRT / POWER-free subset.

    The paper's Figure 2 query uses ``LOG10`` inside its WHERE clause;
    function nodes evaluate page-at-a-time like everything else but are
    *nonlinear*, so linear extraction rejects them (the paper's framing:
    nonlinear surfaces are broken into polyhedron queries separately).
    """

    _funcs = {
        "log10": np.log10,
        "abs": np.abs,
        "sqrt": np.sqrt,
        "exp": np.exp,
    }

    def __init__(self, name: str, operand: Expr):
        lowered = name.lower()
        if lowered not in self._funcs:
            raise ValueError(f"unknown function {name!r}")
        self.name = lowered
        self.operand = operand

    def evaluate(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        return self._funcs[self.name](self.operand.evaluate(columns))

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __repr__(self) -> str:
        return f"{self.name.upper()}({self.operand!r})"


def log10(operand) -> "Func":
    """``LOG10(x)`` as an expression node."""
    return Func("log10", _wrap(operand))


class Compare(Expr):
    """Comparison node; evaluates to a boolean mask."""

    _ops = {
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
    }

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in self._ops:
            raise ValueError(f"unknown comparison op {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        return self._ops[self.op](
            self.left.evaluate(columns), self.right.evaluate(columns)
        )

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class InList(Expr):
    """Membership node: ``operand IN (v1, v2, ...)``.

    Evaluates page-at-a-time via :func:`numpy.isin`.  Membership over a
    *bare column* is the one shape the spatial engines accelerate
    specially (binned-bitmap probes, vectorized ``isin`` filters); over a
    computed expression it still evaluates, but only through the generic
    predicate path.
    """

    def __init__(self, operand: Expr, values: tuple[float, ...]):
        if not values:
            raise ValueError("IN list must not be empty")
        self.operand = operand
        self.values = tuple(values)

    def evaluate(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        return np.isin(
            np.asarray(self.operand.evaluate(columns)), np.asarray(self.values)
        )

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __repr__(self) -> str:
        inner = ", ".join(f"{v:g}" for v in self.values)
        return f"({self.operand!r} IN ({inner}))"


class And(Expr):
    """Logical conjunction of two boolean expressions."""

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def evaluate(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        return np.logical_and(
            self.left.evaluate(columns), self.right.evaluate(columns)
        )

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


class Or(Expr):
    """Logical disjunction of two boolean expressions."""

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def evaluate(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        return np.logical_or(
            self.left.evaluate(columns), self.right.evaluate(columns)
        )

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


class Not(Expr):
    """Logical negation of a boolean expression."""

    def __init__(self, operand: Expr):
        self.operand = operand

    def evaluate(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        return np.logical_not(self.operand.evaluate(columns))

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


# -- linear extraction -------------------------------------------------------


def _linear_form(expr: Expr) -> tuple[dict[str, float], float]:
    """Decompose an arithmetic expression into ``sum(coef_i * col_i) + const``.

    Raises :class:`LinearExtractionError` on nonlinear structure.
    """
    if isinstance(expr, Const):
        return {}, expr.value
    if isinstance(expr, Col):
        return {expr.name: 1.0}, 0.0
    if isinstance(expr, BinOp):
        left_coefs, left_const = _linear_form(expr.left)
        right_coefs, right_const = _linear_form(expr.right)
        if expr.op == "+":
            coefs = dict(left_coefs)
            for name, coef in right_coefs.items():
                coefs[name] = coefs.get(name, 0.0) + coef
            return coefs, left_const + right_const
        if expr.op == "-":
            coefs = dict(left_coefs)
            for name, coef in right_coefs.items():
                coefs[name] = coefs.get(name, 0.0) - coef
            return coefs, left_const - right_const
        if expr.op == "*":
            if not right_coefs:
                return (
                    {n: c * right_const for n, c in left_coefs.items()},
                    left_const * right_const,
                )
            if not left_coefs:
                return (
                    {n: c * left_const for n, c in right_coefs.items()},
                    left_const * right_const,
                )
            raise LinearExtractionError("product of two non-constant expressions")
        if expr.op == "/":
            if right_coefs:
                raise LinearExtractionError("division by a non-constant expression")
            if right_const == 0.0:
                raise LinearExtractionError("division by zero constant")
            return (
                {n: c / right_const for n, c in left_coefs.items()},
                left_const / right_const,
            )
    raise LinearExtractionError(
        f"non-arithmetic node {type(expr).__name__} inside a linear form"
    )


def _comparison_to_halfspace(expr: Compare, columns: list[str]) -> Halfspace:
    """Convert ``linear <op> linear`` to ``normal . x <= offset``.

    Strict and non-strict inequalities both map to the closed halfspace;
    the difference is measure-zero for continuous data, matching how the
    paper treats closed cell boundaries.
    """
    left_coefs, left_const = _linear_form(expr.left)
    right_coefs, right_const = _linear_form(expr.right)
    coefs = dict(left_coefs)
    for name, coef in right_coefs.items():
        coefs[name] = coefs.get(name, 0.0) - coef
    const = left_const - right_const
    if expr.op in (">", ">="):
        coefs = {n: -c for n, c in coefs.items()}
        const = -const
    unknown = set(coefs) - set(columns)
    if unknown:
        raise LinearExtractionError(f"columns not in the index space: {sorted(unknown)}")
    normal = np.array([coefs.get(name, 0.0) for name in columns])
    if not np.any(normal != 0.0):
        raise LinearExtractionError("comparison does not involve any index column")
    return Halfspace(normal, -const)


def _collect_conjuncts(expr: Expr, out: list[Compare]) -> None:
    if isinstance(expr, And):
        _collect_conjuncts(expr.left, out)
        _collect_conjuncts(expr.right, out)
    elif isinstance(expr, Compare):
        out.append(expr)
    else:
        raise LinearExtractionError(
            f"{type(expr).__name__} is not part of a conjunction of comparisons"
        )


def expression_to_polyhedron(expr: Expr, columns: list[str]) -> Polyhedron:
    """Convert a conjunction of linear comparisons into a polyhedron.

    Parameters
    ----------
    expr:
        A tree of :class:`And` over :class:`Compare` nodes whose sides are
        linear in the named columns (the Figure 2 query family).
    columns:
        The ordered column names that span the index space; the resulting
        polyhedron lives in ``len(columns)`` dimensions with this axis
        order.

    Raises
    ------
    LinearExtractionError
        For disjunctions, negations, nonlinear arithmetic, or references
        to columns outside ``columns``.
    """
    conjuncts: list[Compare] = []
    _collect_conjuncts(expr, conjuncts)
    return Polyhedron([_comparison_to_halfspace(c, columns) for c in conjuncts])


def _collect_query_conjuncts(
    expr: Expr, comparisons: list[Compare], in_lists: list[InList]
) -> None:
    if isinstance(expr, And):
        _collect_query_conjuncts(expr.left, comparisons, in_lists)
        _collect_query_conjuncts(expr.right, comparisons, in_lists)
    elif isinstance(expr, Compare):
        comparisons.append(expr)
    elif isinstance(expr, InList):
        in_lists.append(expr)
    else:
        raise LinearExtractionError(
            f"{type(expr).__name__} is not part of a conjunction of "
            "comparisons and IN lists"
        )


def expression_to_query(
    expr: Expr, columns: list[str]
) -> tuple[Polyhedron, dict[str, np.ndarray]]:
    """Split a conjunction into ``(polyhedron, memberships)``.

    The planner-facing generalization of :func:`expression_to_polyhedron`:
    linear comparisons become the polyhedron's halfspaces while top-level
    ``Col.isin(...)`` conjuncts become the memberships dict consumed by
    every engine's ``memberships=`` parameter.  IN lists over computed
    expressions (not bare columns) are rejected -- they have no binned
    representation.  A membership-only query gets the trivially-true
    halfspace ``x_0 <= +inf`` so the polyhedron spans ``len(columns)``
    dimensions and classifies every box INSIDE.
    """
    comparisons: list[Compare] = []
    in_lists: list[InList] = []
    _collect_query_conjuncts(expr, comparisons, in_lists)
    memberships: dict[str, np.ndarray] = {}
    for node in in_lists:
        if not isinstance(node.operand, Col):
            raise LinearExtractionError(
                "IN list over a computed expression, not a bare column"
            )
        name = node.operand.name
        values = np.asarray(node.values, dtype=np.float64)
        if name in memberships:
            values = np.intersect1d(memberships[name], values)
        memberships[name] = values
    if comparisons:
        halfspaces = [_comparison_to_halfspace(c, columns) for c in comparisons]
    else:
        trivial = np.zeros(len(columns))
        trivial[0] = 1.0
        halfspaces = [Halfspace(trivial, np.inf)]
    return Polyhedron(halfspaces), memberships


def expression_to_sql(expr: Expr) -> str:
    """Render an expression as SQL-flavored text (display / logging only)."""
    if isinstance(expr, Col):
        return expr.name
    if isinstance(expr, Const):
        return f"{expr.value:g}"
    if isinstance(expr, BinOp):
        return f"({expression_to_sql(expr.left)} {expr.op} {expression_to_sql(expr.right)})"
    if isinstance(expr, Func):
        return f"{expr.name.upper()}({expression_to_sql(expr.operand)})"
    if isinstance(expr, Compare):
        return f"({expression_to_sql(expr.left)} {expr.op} {expression_to_sql(expr.right)})"
    if isinstance(expr, InList):
        inner = ", ".join(f"{v:g}" for v in expr.values)
        return f"({expression_to_sql(expr.operand)} IN ({inner}))"
    if isinstance(expr, And):
        return f"({expression_to_sql(expr.left)} AND {expression_to_sql(expr.right)})"
    if isinstance(expr, Or):
        return f"({expression_to_sql(expr.left)} OR {expression_to_sql(expr.right)})"
    if isinstance(expr, Not):
        return f"(NOT {expression_to_sql(expr.operand)})"
    raise TypeError(f"cannot render {type(expr).__name__}")
