"""Deterministic fault injection at the :class:`~repro.db.storage.Storage` seam.

The paper's indexes lived inside a production engine where page reads
fail, bytes arrive torn, and disks stall; correctness under those
conditions -- not clean-room benchmarks -- is what made the schemes
deployable.  This module makes such conditions reproducible:

* :class:`FaultInjector` -- a seedable, thread-safe decision source.
  Rate-based faults (every read/write flips an independent coin) model
  steady background noise; scripted bursts (:meth:`~FaultInjector.fail_next_reads`)
  model outages that exhaust retry budgets deterministically.
* :class:`FaultyStorage` -- wraps any backend and consults the injector
  on every page operation.  Corruption goes through the real codec: the
  page is re-encoded, a body byte is flipped, and the decode raises
  :class:`~repro.db.errors.CorruptPageError` through the same checksum
  path a torn disk read would.
* :class:`RetryPolicy` / :func:`call_with_retries` -- the bounded
  exponential backoff loop shared by the buffer pool and the scan
  executors.

Everything is deterministic given the seed and the operation order, so a
failing fault sweep replays exactly.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.db.errors import CorruptPageError, TransientIOError, WriteFault
from repro.db.pages import Page
from repro.db.stats import IOStats
from repro.db.storage import Storage

__all__ = ["FaultInjector", "FaultyStorage", "RetryPolicy", "call_with_retries"]

T = TypeVar("T")


class FaultInjector:
    """Seedable source of injected failures, shared across worker threads.

    All rates are per *attempt* (a retried read rolls the dice again), so
    with rate ``p`` and ``k`` attempts a read is lost for good with
    probability ``p**k`` -- the quantity the fault sweeps assert on.

    Parameters
    ----------
    seed:
        Seeds the internal RNG; identical seeds and operation orders
        reproduce identical fault sequences.
    read_fault_rate:
        Probability a read attempt raises :class:`TransientIOError`.
    corrupt_rate:
        Probability a read attempt returns a corrupted page (detected by
        the codec checksum as :class:`CorruptPageError`).
    write_fault_rate:
        Probability a write attempt raises :class:`WriteFault`.
    read_latency_s:
        Sleep injected into every read attempt (I/O stall model).
    namespace_filter:
        Substring that a namespace must contain for rate-based faults to
        apply (``None`` = every namespace).  Lets a sweep target only
        index pages (``"__kdindex__"``) or only one table's data pages
        while the rest of the database reads clean.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        read_fault_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        write_fault_rate: float = 0.0,
        read_latency_s: float = 0.0,
        namespace_filter: str | None = None,
    ):
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.read_fault_rate = read_fault_rate
        self.corrupt_rate = corrupt_rate
        self.write_fault_rate = write_fault_rate
        self.read_latency_s = read_latency_s
        self.namespace_filter = namespace_filter
        self._burst_remaining = 0
        self._burst_namespace: str | None = None
        # Observability: how many of each fault actually fired.
        self.reads_failed = 0
        self.pages_corrupted = 0
        self.writes_failed = 0
        self.read_attempts = 0
        self.write_attempts = 0

    def configure(
        self,
        *,
        read_fault_rate: float | None = None,
        corrupt_rate: float | None = None,
        write_fault_rate: float | None = None,
        read_latency_s: float | None = None,
        namespace_filter: str | None = None,
    ) -> "FaultInjector":
        """Change rates at runtime (e.g. enable faults only after a build)."""
        with self._lock:
            if read_fault_rate is not None:
                self.read_fault_rate = read_fault_rate
            if corrupt_rate is not None:
                self.corrupt_rate = corrupt_rate
            if write_fault_rate is not None:
                self.write_fault_rate = write_fault_rate
            if read_latency_s is not None:
                self.read_latency_s = read_latency_s
            if namespace_filter is not None:
                self.namespace_filter = namespace_filter
        return self

    def quiesce(self) -> "FaultInjector":
        """Disable every fault kind (rates to zero, burst cancelled)."""
        with self._lock:
            self.read_fault_rate = 0.0
            self.corrupt_rate = 0.0
            self.write_fault_rate = 0.0
            self.read_latency_s = 0.0
            self.namespace_filter = None
            self._burst_remaining = 0
            self._burst_namespace = None
        return self

    def fail_next_reads(
        self, count: int, namespace: str | None = None
    ) -> "FaultInjector":
        """Script a burst: the next ``count`` read attempts fail transiently.

        Bursts are how tests exhaust a bounded retry budget on purpose
        (an outage), where rate-based faults would almost always recover.
        With ``namespace`` the burst counts down only on reads whose
        namespace contains that substring; other reads pass untouched,
        so an index-only outage leaves the data pages online.
        """
        with self._lock:
            self._burst_remaining = count
            self._burst_namespace = namespace
        return self

    def _namespace_matches(self, namespace: str | None) -> bool:
        """Whether rate-based faults apply to this namespace (lock held)."""
        if self.namespace_filter is None or namespace is None:
            return True
        return self.namespace_filter in namespace

    # -- decision points (called by FaultyStorage) --------------------------

    def on_read_attempt(self, namespace: str, page_id: int) -> None:
        """Raise/stall per the configured read faults; called before the read."""
        with self._lock:
            self.read_attempts += 1
            latency = self.read_latency_s
            if self._burst_remaining > 0 and (
                self._burst_namespace is None or self._burst_namespace in namespace
            ):
                self._burst_remaining -= 1
                self.reads_failed += 1
                raise TransientIOError(
                    f"injected burst read fault on ({namespace!r}, {page_id})"
                )
            if (
                self.read_fault_rate > 0
                and self._namespace_matches(namespace)
                and self._rng.random() < self.read_fault_rate
            ):
                self.reads_failed += 1
                raise TransientIOError(
                    f"injected transient read fault on ({namespace!r}, {page_id})"
                )
        if latency > 0:
            time.sleep(latency)

    def corrupt_this_read(self, namespace: str | None = None) -> bool:
        """Whether the page of the current read should come back torn.

        Filtered-out namespaces return ``False`` without consuming an RNG
        draw, so scoping the injector does not perturb the fault sequence
        the targeted namespace observes.
        """
        with self._lock:
            if not self._namespace_matches(namespace):
                return False
            if self.corrupt_rate > 0 and self._rng.random() < self.corrupt_rate:
                self.pages_corrupted += 1
                return True
            return False

    def on_write_attempt(self, namespace: str, page_id: int) -> None:
        """Raise per the configured write faults; called before the write."""
        with self._lock:
            self.write_attempts += 1
            if (
                self.write_fault_rate > 0
                and self._namespace_matches(namespace)
                and self._rng.random() < self.write_fault_rate
            ):
                self.writes_failed += 1
                raise WriteFault(
                    f"injected write fault on ({namespace!r}, {page_id})"
                )

    def counters(self) -> dict[str, int]:
        """Snapshot of what the injector has actually done."""
        with self._lock:
            return {
                "read_attempts": self.read_attempts,
                "write_attempts": self.write_attempts,
                "reads_failed": self.reads_failed,
                "pages_corrupted": self.pages_corrupted,
                "writes_failed": self.writes_failed,
            }

    # -- pickling (spawn-safe worker processes) -----------------------------

    def __getstate__(self) -> dict:
        """Everything but the lock: rates, counters, and the RNG state.

        Shard worker processes are handed the parent's injector so they
        reproduce its seeded fault configuration exactly; the
        ``threading.Lock`` cannot cross the process boundary and is
        recreated fresh on the other side.
        """
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


def _torn_bytes(data: bytes, page_id: int) -> bytes:
    """One body byte of an encoded page, flipped.

    Decoding the flipped bytes raises through the real checksum path, so
    the caller observes exactly what a torn disk read produces.  The
    flip lands past the 8-byte magic+crc header so the checksum, not the
    magic check, is what catches it -- which also means the *stored*
    checksum field survives intact, exactly as it does when a disk tears
    the data sectors of a page but not its header.
    """
    torn = bytearray(data)
    torn[8 + (page_id % max(len(torn) - 8, 1))] ^= 0xFF
    return bytes(torn)


class FaultyStorage(Storage):
    """A storage wrapper that injects the configured faults of an injector.

    Shares the inner backend's :class:`~repro.db.stats.IOStats` object,
    so buffer-pool hit/miss/retry accounting lands in one place
    regardless of wrapping.  Corruption flips a byte in the encoded
    blob, so it is observable wherever the bytes are eventually decoded
    (the buffer pool, or a direct :meth:`read_page`).
    """

    def __init__(self, inner: Storage, injector: FaultInjector | None = None):
        super().__init__()
        self.inner = inner
        self.injector = injector if injector is not None else FaultInjector()
        self.stats = inner.stats

    def write_page(self, namespace: str, page: Page) -> None:
        self.injector.on_write_attempt(namespace, page.page_id)
        self.inner.write_page(namespace, page)

    def read_page_bytes(self, namespace: str, page_id: int) -> bytes:
        self.injector.on_read_attempt(namespace, page_id)
        data = self.inner.read_page_bytes(namespace, page_id)
        if self.injector.corrupt_this_read(namespace):
            return _torn_bytes(data, page_id)
        return data

    def read_pages_bytes(self, namespace: str, page_ids) -> list[bytes]:
        # Each page of a coalesced batch rolls the fault dice on its own,
        # so a burst can kill the whole batch mid-flight (callers degrade
        # to page-at-a-time reads) and per-page corruption still fires.
        for page_id in page_ids:
            self.injector.on_read_attempt(namespace, page_id)
        blobs = self.inner.read_pages_bytes(namespace, page_ids)
        return [
            _torn_bytes(data, page_id)
            if self.injector.corrupt_this_read(namespace)
            else data
            for page_id, data in zip(page_ids, blobs)
        ]

    def num_pages(self, namespace: str) -> int:
        return self.inner.num_pages(namespace)

    def drop_namespace(self, namespace: str) -> None:
        self.inner.drop_namespace(namespace)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient read faults.

    ``attempts`` counts the first try: ``attempts=4`` means one read plus
    up to three retries.  Sleeps grow as ``backoff_s * multiplier**k``,
    capped at ``max_backoff_s``; the defaults keep the worst case per
    page read in the single-digit milliseconds, cheap enough to leave on
    everywhere.
    """

    attempts: int = 4
    backoff_s: float = 0.001
    multiplier: float = 2.0
    max_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff must be >= 0")

    def delay(self, retry_index: int) -> float:
        """Sleep before the ``retry_index``-th retry (0-based)."""
        return min(self.backoff_s * self.multiplier**retry_index, self.max_backoff_s)


#: Fault classes a retry can plausibly fix: transient I/O errors and torn
#: reads (a re-read returns the good copy).  Write faults are excluded.
RETRYABLE = (TransientIOError, CorruptPageError)


def call_with_retries(
    fn: Callable[[], T],
    policy: RetryPolicy,
    stats: IOStats | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Run ``fn`` retrying :data:`RETRYABLE` faults per ``policy``.

    Every caught fault increments ``stats.read_faults``; every extra
    attempt increments ``stats.read_retries``.  The final failure is
    re-raised unchanged once the budget is spent.
    """
    for attempt in range(policy.attempts):
        try:
            return fn()
        except RETRYABLE:
            if stats is not None:
                stats.add(read_faults=1)
            if attempt == policy.attempts - 1:
                raise
            if stats is not None:
                stats.add(read_retries=1)
            delay = policy.delay(attempt)
            if delay > 0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
