"""Per-page zone maps: min/max synopses that let queries skip pages.

The paper's indexes prune at the *cell* level -- a kd-box or Voronoi cell
fully outside the query polyhedron is never visited.  Zone maps push the
same Figure 4 trichotomy down to the *page* level: for every page of a
table we persist the componentwise min and max of its numeric columns
(the page's bounding box in attribute space).  Because tables are
clustered (by kd leaf, or simply sorted), consecutive pages cover tight,
nearly disjoint boxes, and a polyhedron query can classify every page in
one vectorized pass *before any byte is read*:

* ``OUTSIDE`` pages are skipped entirely -- no storage read, no decode,
  no predicate;
* ``INSIDE`` pages need no per-point residual filter -- every row
  qualifies by construction;
* ``PARTIAL`` pages go through the ordinary read + filter path.

Classification reuses the corner trick of
:meth:`~repro.geometry.halfspace.Halfspace.box_extremes`, vectorized
over all pages at once: with page minima ``mins`` and maxima ``maxs`` of
shape ``(P, d)`` and query normals ``(m, d)`` split into positive and
negative parts, two ``(P, d) @ (d, m)`` products yield the min and max
of every linear form over every page box.

Zone maps are synopses, not indexes: they are built as pages are written
(:meth:`ZoneMap.observe_page`), dropped wholesale when the table is
mutated, and consulting them can only *remove* work -- a pruner derived
from a zone map is sound (never skips a page that holds a qualifying
row) and conservative (unknown pages and uncovered dimensions degrade to
``PARTIAL``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.db.pages import Page
from repro.geometry.boxes import Box, BoxRelation
from repro.geometry.halfspace import Polyhedron

__all__ = ["ZoneMap", "ZonePruner"]

#: Integer encoding of :class:`BoxRelation` used inside pruner arrays.
_OUTSIDE, _PARTIAL, _INSIDE = 0, 1, 2
_RELATIONS = (BoxRelation.OUTSIDE, BoxRelation.PARTIAL, BoxRelation.INSIDE)


class ZoneMap:
    """Per-page min/max synopses for the numeric columns of one table.

    Pages must be observed in page-id order (the order the table writer
    emits them); the map is append-only and immutable once built, which
    matches how tables work here -- any mutation drops and rebuilds.
    """

    def __init__(self, table_name: str, columns: Sequence[str]):
        if not columns:
            raise ValueError("a zone map needs at least one column")
        self.table_name = table_name
        self.columns: tuple[str, ...] = tuple(columns)
        self._mins: list[np.ndarray] = []
        self._maxs: list[np.ndarray] = []
        self._empty: list[bool] = []
        self._stacked: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def num_pages(self) -> int:
        """How many pages have been observed."""
        return len(self._mins)

    def nbytes(self) -> int:
        """Approximate memory footprint of the synopses."""
        return 2 * 8 * len(self.columns) * len(self._mins)

    def observe_page(self, page: Page) -> None:
        """Fold one freshly written page into the map (id order enforced)."""
        if page.page_id != len(self._mins):
            raise ValueError(
                f"zone map for {self.table_name!r} expected page "
                f"{len(self._mins)}, got {page.page_id}"
            )
        if page.num_rows == 0:
            self._mins.append(np.zeros(len(self.columns)))
            self._maxs.append(np.zeros(len(self.columns)))
            self._empty.append(True)
        else:
            mins = np.empty(len(self.columns))
            maxs = np.empty(len(self.columns))
            for j, name in enumerate(self.columns):
                values = page.columns[name].astype(np.float64, copy=False)
                mins[j] = values.min()
                maxs[j] = values.max()
            self._mins.append(mins)
            self._maxs.append(maxs)
            self._empty.append(False)
        self._stacked = None

    def _matrices(self) -> tuple[np.ndarray, np.ndarray]:
        if self._stacked is None:
            self._stacked = (np.stack(self._mins), np.stack(self._maxs))
        return self._stacked

    def box(self, page_id: int) -> Box | None:
        """The page's bounding box in attribute space; ``None`` if empty."""
        if not 0 <= page_id < len(self._mins) or self._empty[page_id]:
            return None
        return Box(self._mins[page_id], self._maxs[page_id])

    def pruner(
        self, polyhedron: Polyhedron, dims: Sequence[str]
    ) -> "ZonePruner | None":
        """Classify every page against a polyhedron over ``dims``.

        ``dims`` names the columns the polyhedron's coordinates refer to,
        in order.  Returns ``None`` when the map does not cover every
        queried dimension -- the caller then scans without pruning, so a
        missing synopsis degrades performance, never correctness.
        """
        if len(dims) != polyhedron.dim:
            raise ValueError(
                f"polyhedron has dim {polyhedron.dim}, got {len(dims)} dims"
            )
        try:
            picks = [self.columns.index(name) for name in dims]
        except ValueError:
            return None
        if not self._mins:
            return ZonePruner(np.empty(0, dtype=np.int8))
        all_mins, all_maxs = self._matrices()
        mins = all_mins[:, picks]
        maxs = all_maxs[:, picks]
        normals = polyhedron.normals  # (m, d)
        offsets = polyhedron.offsets  # (m,)
        pos = np.maximum(normals, 0.0)
        neg = np.minimum(normals, 0.0)
        # Min and max of each linear form over each page box (corner trick,
        # vectorized over pages x halfspaces).
        lo_values = mins @ pos.T + maxs @ neg.T  # (P, m)
        hi_values = maxs @ pos.T + mins @ neg.T
        outside = (lo_values > offsets).any(axis=1)
        inside = (hi_values <= offsets).all(axis=1)
        relations = np.where(
            outside, _OUTSIDE, np.where(inside, _INSIDE, _PARTIAL)
        ).astype(np.int8)
        # An empty page holds no qualifying rows regardless of geometry.
        relations[np.asarray(self._empty)] = _OUTSIDE
        return ZonePruner(relations)

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form for the catalog file."""
        return {
            "table": self.table_name,
            "columns": list(self.columns),
            "mins": [row.tolist() for row in self._mins],
            "maxs": [row.tolist() for row in self._maxs],
            "empty": list(self._empty),
        }

    @staticmethod
    def from_dict(payload: dict) -> "ZoneMap":
        """Rebuild a map saved by :meth:`to_dict`."""
        zone_map = ZoneMap(payload["table"], payload["columns"])
        for mins, maxs, empty in zip(
            payload["mins"], payload["maxs"], payload["empty"]
        ):
            zone_map._mins.append(np.asarray(mins, dtype=np.float64))
            zone_map._maxs.append(np.asarray(maxs, dtype=np.float64))
            zone_map._empty.append(bool(empty))
        return zone_map

    def __repr__(self) -> str:
        return (
            f"ZoneMap(table={self.table_name!r}, columns={self.columns}, "
            f"pages={self.num_pages})"
        )


class ZonePruner:
    """Precomputed per-page verdicts for one (zone map, polyhedron) pair.

    Cheap to query inside scan loops (an array lookup); built once per
    query.  Pages the zone map never observed classify as ``PARTIAL`` --
    the conservative verdict that forces the ordinary read + filter path.
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: np.ndarray):
        self._relations = relations

    def classify(self, page_id: int) -> BoxRelation:
        """The page's Figure 4 verdict against the query polyhedron."""
        if not 0 <= page_id < len(self._relations):
            return BoxRelation.PARTIAL
        return _RELATIONS[self._relations[page_id]]

    def surviving(self, page_ids: Iterable[int]) -> list[int]:
        """The subset of ``page_ids`` that are not OUTSIDE, in order."""
        return [
            page_id
            for page_id in page_ids
            if self.classify(page_id) is not BoxRelation.OUTSIDE
        ]

    def counts(self) -> dict[str, int]:
        """How many pages fall in each class (observability for tests)."""
        return {
            "outside": int((self._relations == _OUTSIDE).sum()),
            "partial": int((self._relations == _PARTIAL).sum()),
            "inside": int((self._relations == _INSIDE).sum()),
        }
