"""Scan executors: the index-free baselines.

Everything an index is compared against in the paper reduces to one of
these: a full table scan with a residual predicate, or a clustered range
scan (``BETWEEN`` over the clustered position).

Scans are the engine's longest-running reads, so they carry their own
(small) retry budget on top of the buffer pool's: when the pool exhausts
its backoff on a page, the scan re-attempts that one page before giving
up -- a page lost to a fault burst mid-scan does not forfeit the pages
already processed.

Both executors accept two optional accelerators:

* a ``pruner`` (usually :meth:`repro.db.zonemap.ZoneMap.pruner`): pages
  it classifies ``OUTSIDE`` are skipped before any read or decode
  (counted as ``pages_skipped``), and pages classified ``INSIDE`` skip
  the per-row predicate -- every row qualifies by construction.  The
  pruner must be derived from the same geometry as the predicate, which
  is the caller's contract.
* ``readahead``: surviving pages are grouped into runs of consecutive
  ids (at most ``readahead`` long) and each multi-page run is pulled
  into the buffer pool with one coalesced storage request before the
  per-page loop touches it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.db.expressions import Expr
from repro.db.faults import RetryPolicy, call_with_retries
from repro.db.pages import Page
from repro.db.stats import QueryStats
from repro.db.table import Table
from repro.db.zonemap import ZonePruner
from repro.geometry.boxes import BoxRelation

__all__ = [
    "BatchScanMember",
    "PartialOnlyPruner",
    "batch_full_scan",
    "full_scan",
    "range_scan",
    "membership_predicate",
    "predicate_from_expression",
    "AUTO_TOMBSTONES",
    "SCAN_RETRY",
]

#: Per-page retry budget of the scan executors, applied after (on top
#: of) the buffer pool's own retries.
SCAN_RETRY = RetryPolicy(attempts=2, backoff_s=0.002)

#: Sentinel for ``tombstones=``: resolve suppression from the table's
#: own delta snapshot (the common case).  Callers that already hold a
#: query-level snapshot pass its tombstone array explicitly so every
#: scan of the query suppresses against the same consistent view.
AUTO_TOMBSTONES = object()


def _alive_mask(row_ids: np.ndarray, tombstones: np.ndarray) -> np.ndarray:
    """Rows not suppressed by a sorted tombstone array."""
    pos = np.searchsorted(tombstones, row_ids)
    pos = np.minimum(pos, len(tombstones) - 1)
    return tombstones[pos] != row_ids


def _resolve_delta(table: Table, tombstones, include_delta: bool):
    """Resolve ``(tombstones, snapshot)`` for one scan.

    ``snapshot`` is the delta view whose live inserts the scan appends
    (``None`` when none or when the caller appends them itself).
    """
    snapshot = None
    if tombstones is AUTO_TOMBSTONES or include_delta:
        snapshot = table.delta_snapshot()
    if tombstones is AUTO_TOMBSTONES:
        tombstones = snapshot.tombstones if snapshot is not None else None
    if tombstones is not None and len(tombstones) == 0:
        tombstones = None
    if not include_delta:
        snapshot = None
    return tombstones, snapshot


def _read_page_retrying(
    table: Table, page_id: int, retry: RetryPolicy | None
) -> Page:
    if retry is None:
        return table.read_page(page_id)
    return call_with_retries(lambda: table.read_page(page_id), retry)


def _coalesced_runs(page_ids: list[int], window: int) -> list[list[int]]:
    """Split page ids into runs of consecutive ids, each at most ``window``."""
    runs: list[list[int]] = []
    run: list[int] = []
    for page_id in page_ids:
        if run and (page_id != run[-1] + 1 or len(run) >= window):
            runs.append(run)
            run = []
        run.append(page_id)
    if run:
        runs.append(run)
    return runs


def _iter_planned_pages(
    table: Table,
    page_ids: Iterable[int],
    pruner: ZonePruner | None,
    stats: QueryStats,
    cancel_check: Callable[[], None] | None,
    retry: RetryPolicy | None,
    window: int,
) -> Iterator[tuple[Page, bool]]:
    """Yield ``(page, fully_inside)`` for the pages that survive pruning.

    OUTSIDE pages are dropped up front (``stats.pages_skipped``); the
    survivors are grouped into coalesced read-ahead runs when ``window``
    allows, so the storage sees one request per run instead of one per
    page.
    """
    plan: list[tuple[int, bool]] = []
    for page_id in page_ids:
        if pruner is not None:
            relation = pruner.classify(page_id)
            if relation is BoxRelation.OUTSIDE:
                stats.pages_skipped += 1
                continue
            plan.append((page_id, relation is BoxRelation.INSIDE))
        else:
            plan.append((page_id, False))
    prefetch_at: dict[int, list[int]] = {}
    if window > 1:
        for run in _coalesced_runs([page_id for page_id, _ in plan], window):
            if len(run) > 1:
                prefetch_at[run[0]] = run
    for page_id, inside in plan:
        if cancel_check is not None:
            cancel_check()
        run = prefetch_at.get(page_id)
        if run is not None:
            stats.pages_prefetched += table.prefetch(run)
        page = _read_page_retrying(table, page_id, retry)
        yield page, inside


def membership_predicate(
    memberships: dict[str, np.ndarray],
    base: Callable[[dict[str, np.ndarray]], np.ndarray] | None = None,
) -> Callable[[dict[str, np.ndarray]], np.ndarray]:
    """Vectorized IN-list filter: AND of ``np.isin`` per column.

    ``base`` (when given) is a predicate to AND in front -- how the scan
    and kd engines degrade membership predicates that the bitmap engine
    evaluates natively.  ``memberships`` must be non-empty.
    """
    if not memberships:
        raise ValueError("memberships must be non-empty")
    pairs = [(col, np.asarray(values)) for col, values in memberships.items()]

    def predicate(columns: dict[str, np.ndarray]) -> np.ndarray:
        mask = None if base is None else np.asarray(base(columns), dtype=bool)
        for col, values in pairs:
            piece = np.isin(columns[col], values)
            mask = piece if mask is None else mask & piece
        return mask

    return predicate


class PartialOnlyPruner:
    """A zone pruner whose INSIDE verdicts are demoted to PARTIAL.

    The scan executors skip the residual predicate on pages the pruner
    proves INSIDE -- sound only while predicate and pruner share the
    same geometry.  When the predicate is *stronger* (polyhedron AND
    membership filter), INSIDE pages still need the filter; this wrapper
    keeps the OUTSIDE page skipping and gives up only the filter skip.
    """

    def __init__(self, pruner: ZonePruner):
        self._pruner = pruner

    def classify(self, page_id: int) -> BoxRelation:
        relation = self._pruner.classify(page_id)
        return (
            BoxRelation.PARTIAL if relation is BoxRelation.INSIDE else relation
        )


def predicate_from_expression(expr: Expr) -> Callable[[dict[str, np.ndarray]], np.ndarray]:
    """Wrap an expression tree as a page-level boolean predicate."""

    def predicate(columns: dict[str, np.ndarray]) -> np.ndarray:
        mask = expr.evaluate(columns)
        return np.asarray(mask, dtype=bool)

    return predicate


def full_scan(
    table: Table,
    predicate: Expr | Callable[[dict[str, np.ndarray]], np.ndarray] | None = None,
    columns: list[str] | None = None,
    cancel_check: Callable[[], None] | None = None,
    retry: RetryPolicy | None = SCAN_RETRY,
    pruner: ZonePruner | None = None,
    readahead: int | None = None,
    tombstones=AUTO_TOMBSTONES,
    include_delta: bool = True,
) -> tuple[dict[str, np.ndarray], QueryStats]:
    """Scan every page, apply an optional predicate, project columns.

    Returns the matching rows (plus a ``_row_id`` column of global ids)
    and per-query statistics.  This is the baseline of Figure 5.

    ``cancel_check`` is invoked once per surviving page; it may raise
    (e.g. a deadline check from the query service) to abandon the scan
    cooperatively between pages.  ``retry`` bounds per-page re-attempts
    after the buffer pool's own retries are exhausted.  ``pruner`` skips
    pages as described in the module docstring -- pass one only when its
    geometry matches ``predicate``.  ``readahead`` overrides the table's
    default coalescing window (``None`` = table default, ``0``/``1``
    disables).

    Merge-on-read: ``tombstones`` (default: the table's current delta
    snapshot) suppresses deleted rows, and ``include_delta`` appends the
    delta tier's live inserts after the page loop, evaluated against the
    same predicate.  Pass ``tombstones=None, include_delta=False`` for a
    main-layout-only scan (e.g. the merge itself).
    """
    if isinstance(predicate, Expr):
        predicate = predicate_from_expression(predicate)
    wanted = columns if columns is not None else table.column_names
    stats = QueryStats()
    chunks: dict[str, list[np.ndarray]] = {name: [] for name in wanted}
    row_id_chunks: list[np.ndarray] = []
    tombstones, snapshot = _resolve_delta(table, tombstones, include_delta)
    window = readahead if readahead is not None else table.readahead_pages
    for page, inside in _iter_planned_pages(
        table, range(table.num_pages), pruner, stats, cancel_check, retry, window
    ):
        stats.record_page(table.name, page.page_id)
        stats.rows_examined += page.num_rows
        row_ids = page.row_ids()
        alive = (
            _alive_mask(row_ids, tombstones) if tombstones is not None else None
        )
        if predicate is None or inside:
            mask = alive
        else:
            mask = predicate(page.columns)
            if alive is not None:
                mask &= alive
        matched = page.num_rows if mask is None else int(np.count_nonzero(mask))
        if matched == 0:
            continue
        stats.rows_returned += matched
        if mask is None:
            row_id_chunks.append(row_ids)
            for name in wanted:
                chunks[name].append(page.columns[name])
        else:
            row_id_chunks.append(row_ids[mask])
            for name in wanted:
                chunks[name].append(page.columns[name][mask])
    if snapshot is not None and snapshot.num_rows:
        # Merge-on-read: delta-tier inserts join the scan's result as if
        # they were a final page (same predicate, same projection).
        delta_cols = snapshot.columns
        stats.rows_examined += snapshot.num_rows
        dmask = None if predicate is None else predicate(delta_cols)
        matched = (
            snapshot.num_rows if dmask is None else int(np.count_nonzero(dmask))
        )
        if matched:
            stats.rows_returned += matched
            if dmask is None:
                row_id_chunks.append(snapshot.row_ids)
                for name in wanted:
                    chunks[name].append(delta_cols[name])
            else:
                row_id_chunks.append(snapshot.row_ids[dmask])
                for name in wanted:
                    chunks[name].append(delta_cols[name][dmask])
    result = _assemble(table, wanted, chunks, row_id_chunks)
    return result, stats


def range_scan(
    table: Table,
    start_row: int,
    stop_row: int,
    predicate: Expr | Callable[[dict[str, np.ndarray]], np.ndarray] | None = None,
    columns: list[str] | None = None,
    cancel_check: Callable[[], None] | None = None,
    retry: RetryPolicy | None = SCAN_RETRY,
    pruner: ZonePruner | None = None,
    readahead: int | None = None,
    tombstones=AUTO_TOMBSTONES,
) -> tuple[dict[str, np.ndarray], QueryStats]:
    """Scan only pages overlapping ``[start_row, stop_row)``.

    The engine-level realization of the paper's ``BETWEEN`` on post-order
    numbered kd-leaves or space-filling-curve cell ids.  ``cancel_check``,
    ``retry``, ``pruner`` and ``readahead`` behave as in
    :func:`full_scan`.  ``tombstones`` suppresses deleted rows the same
    way, but a range scan never appends delta inserts -- the caller (kd
    traversal) owns the query-level delta merge and appends them exactly
    once.
    """
    if isinstance(predicate, Expr):
        predicate = predicate_from_expression(predicate)
    wanted = columns if columns is not None else table.column_names
    stats = QueryStats()
    chunks: dict[str, list[np.ndarray]] = {name: [] for name in wanted}
    row_id_chunks: list[np.ndarray] = []
    tombstones, _ = _resolve_delta(table, tombstones, include_delta=False)
    start_row = max(0, start_row)
    stop_row = min(table.num_rows, stop_row)
    if start_row >= stop_row:
        return _assemble(table, wanted, chunks, row_id_chunks), stats
    first = start_row // table.rows_per_page
    last = (stop_row - 1) // table.rows_per_page
    window = readahead if readahead is not None else table.readahead_pages
    for page, inside in _iter_planned_pages(
        table, range(first, last + 1), pruner, stats, cancel_check, retry, window
    ):
        lo = max(start_row - page.start_row, 0)
        hi = min(stop_row - page.start_row, page.num_rows)
        stats.record_page(table.name, page.page_id)
        stats.rows_examined += hi - lo
        view = page.slice(lo, hi)
        row_ids = np.arange(page.start_row + lo, page.start_row + hi, dtype=np.int64)
        alive = (
            _alive_mask(row_ids, tombstones) if tombstones is not None else None
        )
        if predicate is None or inside:
            mask = alive
        else:
            mask = predicate(view)
            if alive is not None:
                mask &= alive
        matched = hi - lo if mask is None else int(np.count_nonzero(mask))
        if matched == 0:
            continue
        stats.rows_returned += matched
        if mask is None:
            row_id_chunks.append(row_ids)
            for name in wanted:
                chunks[name].append(view[name])
        else:
            row_id_chunks.append(row_ids[mask])
            for name in wanted:
                chunks[name].append(view[name][mask])
    result = _assemble(table, wanted, chunks, row_id_chunks)
    return result, stats


@dataclass
class BatchScanMember:
    """One query's slice of a shared multi-predicate scan.

    ``predicate=None`` means every row qualifies (the member's geometry
    is known to contain the whole table, e.g. a shard routed INSIDE).
    ``pruner`` and ``cancel_check`` behave exactly as their solo-scan
    counterparts, but per member: a member whose pruner rejects a page
    skips it even while siblings read it, and a member whose check
    raises drops out of the batch without disturbing the others.
    """

    predicate: Callable[[dict[str, np.ndarray]], np.ndarray] | None = None
    pruner: ZonePruner | None = None
    cancel_check: Callable[[], None] | None = None


def batch_full_scan(
    table: Table,
    members: list[BatchScanMember],
    retry: RetryPolicy | None = SCAN_RETRY,
    readahead: int | None = None,
    tombstones=AUTO_TOMBSTONES,
    include_delta: bool = True,
) -> tuple[list[tuple[dict[str, np.ndarray] | None, QueryStats, BaseException | None]], dict]:
    """One pass over the table evaluating every member's predicate.

    The cooperative-scan move: instead of N concurrent queries each
    reading, verifying, and decoding the same pages, one scan decodes
    each surviving page once and evaluates all member predicates against
    the shared column arrays.  Page pruning is the *union* of the member
    pruners -- a page is read iff at least one member wants it, and each
    member that pruned it still counts it in its own ``pages_skipped``
    exactly as a solo scan would.

    Member isolation: each member's ``cancel_check`` runs before the
    member consumes a page; a check that raises (e.g. a deadline)
    removes that member from the rest of the scan -- its error is
    reported in its result slot, its partial rows are discarded, and its
    siblings continue undisturbed.  A :class:`StorageFault` from the
    shared read path (after retries) propagates to the caller, who may
    degrade the batch to solo execution.

    Returns ``(results, counters)``: ``results[i]`` is
    ``(rows, stats, error)`` with ``rows=None`` iff ``error`` is set;
    ``counters`` carries ``pages_decoded`` (pages this scan actually
    read) and ``shared_decode_hits`` (additional members served per
    decoded page beyond the first -- the work a solo execution would
    have repeated).
    """
    n = len(members)
    wanted = table.column_names
    stats = [QueryStats() for _ in range(n)]
    errors: list[BaseException | None] = [None] * n
    chunks: list[dict[str, list[np.ndarray]]] = [
        {name: [] for name in wanted} for _ in range(n)
    ]
    row_id_chunks: list[list[np.ndarray]] = [[] for _ in range(n)]
    counters = {"pages_decoded": 0, "shared_decode_hits": 0}
    tombstones, snapshot = _resolve_delta(table, tombstones, include_delta)

    # Plan: per page, which members take it and whether they can skip
    # their residual filter (their pruner proved the page fully inside).
    plan: list[tuple[int, list[tuple[int, bool]]]] = []
    for page_id in range(table.num_pages):
        takers: list[tuple[int, bool]] = []
        for m, member in enumerate(members):
            if member.pruner is not None:
                relation = member.pruner.classify(page_id)
                if relation is BoxRelation.OUTSIDE:
                    stats[m].pages_skipped += 1
                    continue
                takers.append((m, relation is BoxRelation.INSIDE))
            else:
                takers.append((m, False))
        if takers:
            plan.append((page_id, takers))

    window = readahead if readahead is not None else table.readahead_pages
    prefetch_at: dict[int, list[int]] = {}
    if window > 1:
        for run in _coalesced_runs([page_id for page_id, _ in plan], window):
            if len(run) > 1:
                prefetch_at[run[0]] = run

    for page_id, takers in plan:
        live: list[tuple[int, bool]] = []
        for m, inside in takers:
            if errors[m] is not None:
                continue
            check = members[m].cancel_check
            if check is not None:
                try:
                    check()
                except BaseException as exc:
                    errors[m] = exc
                    continue
            live.append((m, inside))
        if not live:
            continue
        run = prefetch_at.get(page_id)
        if run is not None:
            # Attributed to the first live member so service-level sums
            # still equal the pages actually prefetched.
            stats[live[0][0]].pages_prefetched += table.prefetch(run)
        page = _read_page_retrying(table, page_id, retry)
        counters["pages_decoded"] += 1
        counters["shared_decode_hits"] += len(live) - 1
        row_ids = page.row_ids()
        alive = (
            _alive_mask(row_ids, tombstones) if tombstones is not None else None
        )
        for m, inside in live:
            member_stats = stats[m]
            member_stats.record_page(table.name, page_id)
            member_stats.rows_examined += page.num_rows
            predicate = members[m].predicate
            if predicate is None or inside:
                mask = alive
            else:
                mask = predicate(page.columns)
                if alive is not None:
                    mask = mask & alive
            matched = (
                page.num_rows if mask is None else int(np.count_nonzero(mask))
            )
            if matched == 0:
                continue
            member_stats.rows_returned += matched
            if mask is None:
                row_id_chunks[m].append(row_ids)
                for name in wanted:
                    chunks[m][name].append(page.columns[name])
            else:
                row_id_chunks[m].append(row_ids[mask])
                for name in wanted:
                    chunks[m][name].append(page.columns[name][mask])

    if snapshot is not None and snapshot.num_rows:
        # Per-member merge-on-read: delta inserts are evaluated against
        # each surviving member's predicate (decoded zero extra pages).
        delta_cols = snapshot.columns
        for m in range(n):
            if errors[m] is not None:
                continue
            predicate = members[m].predicate
            stats[m].rows_examined += snapshot.num_rows
            dmask = None if predicate is None else predicate(delta_cols)
            matched = (
                snapshot.num_rows
                if dmask is None
                else int(np.count_nonzero(dmask))
            )
            if matched == 0:
                continue
            stats[m].rows_returned += matched
            if dmask is None:
                row_id_chunks[m].append(snapshot.row_ids)
                for name in wanted:
                    chunks[m][name].append(delta_cols[name])
            else:
                row_id_chunks[m].append(snapshot.row_ids[dmask])
                for name in wanted:
                    chunks[m][name].append(delta_cols[name][dmask])

    results: list[tuple[dict[str, np.ndarray] | None, QueryStats, BaseException | None]] = []
    for m in range(n):
        if errors[m] is not None:
            results.append((None, stats[m], errors[m]))
        else:
            results.append(
                (_assemble(table, wanted, chunks[m], row_id_chunks[m]), stats[m], None)
            )
    return results, counters


def _assemble(
    table: Table,
    wanted: list[str],
    chunks: dict[str, list[np.ndarray]],
    row_id_chunks: list[np.ndarray],
) -> dict[str, np.ndarray]:
    result: dict[str, np.ndarray] = {}
    for name in wanted:
        parts = chunks[name]
        result[name] = (
            np.concatenate(parts) if parts else np.empty(0, dtype=table.dtype_of(name))
        )
    result["_row_id"] = (
        np.concatenate(row_id_chunks)
        if row_id_chunks
        else np.empty(0, dtype=np.int64)
    )
    return result
