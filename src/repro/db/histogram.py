"""Equi-depth histograms: the optimizer's selectivity statistics.

The planner's page-sample estimate (see :mod:`repro.core.planner`) costs
a few page reads per query; a real optimizer instead keeps per-column
histograms built once and consults them for free at plan time.  This is
the classic equi-depth design: bucket boundaries at quantiles, so every
bucket holds the same row mass and skewed data (the SDSS color space is
nothing but skew) is resolved where the mass is.

Multidimensional selectivity uses the attribute-independence assumption
-- the known weakness the E-ablation quantifies against page sampling on
correlated columns.
"""

from __future__ import annotations

import numpy as np

from repro.db.table import Table
from repro.geometry.halfspace import Polyhedron

__all__ = ["ColumnHistogram", "HistogramStatistics"]


class ColumnHistogram:
    """Equi-depth histogram of one numeric column."""

    def __init__(self, values: np.ndarray, num_buckets: int = 32):
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            raise ValueError("cannot build a histogram of an empty column")
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        quantiles = np.linspace(0.0, 1.0, num_buckets + 1)
        self.edges = np.quantile(values, quantiles)
        self.num_rows = len(values)
        self.num_buckets = num_buckets

    def selectivity_below(self, threshold: float) -> float:
        """Estimated fraction of rows with value <= threshold."""
        edges = self.edges
        if threshold <= edges[0]:
            return 0.0
        if threshold >= edges[-1]:
            return 1.0
        bucket = int(np.searchsorted(edges, threshold, side="right")) - 1
        bucket = min(bucket, self.num_buckets - 1)
        lo, hi = edges[bucket], edges[bucket + 1]
        within = 0.0 if hi == lo else (threshold - lo) / (hi - lo)
        return (bucket + within) / self.num_buckets

    def selectivity_range(self, lo: float, hi: float) -> float:
        """Estimated fraction of rows in ``[lo, hi]``."""
        if hi < lo:
            return 0.0
        return max(0.0, self.selectivity_below(hi) - self.selectivity_below(lo))


class HistogramStatistics:
    """Per-column histograms over a table, with polyhedron estimates."""

    def __init__(self, table: Table, columns: list[str], num_buckets: int = 32):
        data = table.read_columns(list(columns))
        self.columns = list(columns)
        self.histograms = {
            name: ColumnHistogram(data[name], num_buckets) for name in columns
        }
        self.num_rows = table.num_rows

    def estimate_polyhedron(self, polyhedron: Polyhedron) -> float:
        """Selectivity of a polyhedron under attribute independence.

        Axis-aligned halfspaces consult the matching histogram exactly;
        oblique halfspaces are approximated by the histogram of the
        dominant axis after dividing through its coefficient (a standard
        optimizer fallback -- crude, and exactly the case where page
        sampling wins; the ablation shows it).
        """
        if polyhedron.dim != len(self.columns):
            raise ValueError("polyhedron dimension must match the statistics")
        # Collect per-axis interval constraints where possible.
        lows = {i: -np.inf for i in range(polyhedron.dim)}
        highs = {i: np.inf for i in range(polyhedron.dim)}
        for halfspace in polyhedron.halfspaces:
            nonzero = np.flatnonzero(halfspace.normal)
            axis = int(nonzero[np.argmax(np.abs(halfspace.normal[nonzero]))])
            coefficient = halfspace.normal[axis]
            bound = halfspace.offset / coefficient
            if coefficient > 0:
                highs[axis] = min(highs[axis], bound)
            else:
                lows[axis] = max(lows[axis], bound)
        estimate = 1.0
        for axis, name in enumerate(self.columns):
            histogram = self.histograms[name]
            lo = lows[axis] if np.isfinite(lows[axis]) else histogram.edges[0]
            hi = highs[axis] if np.isfinite(highs[axis]) else histogram.edges[-1]
            estimate *= histogram.selectivity_range(float(lo), float(hi))
        return estimate
