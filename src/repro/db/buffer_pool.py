"""LRU buffer pool over a page store.

The buffer pool is the engine's RAM: the paper's server had 8 GB (with AWE
tricks to use it all); we model memory pressure as a configurable page
budget.  A query that touches a small clustered range of pages runs from
cache on repeat; a full scan of a table larger than the pool thrashes --
exactly the contrast the layered grid / kd-tree / Voronoi indexes exploit.

The pool is shared by every worker of the concurrent query service, so
all cache operations hold an internal lock: the LRU ``OrderedDict`` is
never observed mid-reorder and hit/miss counts are never dropped.

The pool is also the first line of defense against storage faults: a
miss that hits a transient read error or a torn (checksum-failing) page
is retried with bounded exponential backoff before the fault is allowed
to propagate (see :class:`repro.db.faults.RetryPolicy`).  Retries happen
under the pool lock -- the backoff caps keep the worst case per read in
the milliseconds, and serializing them preserves exact counters.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.db.faults import RetryPolicy, call_with_retries
from repro.db.pages import Page
from repro.db.storage import Storage

__all__ = ["BufferPool"]


class BufferPool:
    """A shared LRU cache of decoded pages keyed by ``(namespace, page_id)``.

    Parameters
    ----------
    storage:
        The backing page store.
    capacity_pages:
        Maximum number of pages held in memory; ``None`` means unbounded
        (an "everything fits in RAM" configuration).
    retry:
        Backoff policy for transient/corrupt read faults on a miss;
        ``None`` disables retrying (one attempt, faults propagate).
    """

    def __init__(
        self,
        storage: Storage,
        capacity_pages: int | None = 1024,
        retry: RetryPolicy | None = RetryPolicy(),
    ):
        if capacity_pages is not None and capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1 or None")
        self.storage = storage
        self.capacity_pages = capacity_pages
        self.retry = retry if retry is not None else RetryPolicy(attempts=1)
        self._cache: OrderedDict[tuple[str, int], Page] = OrderedDict()
        self._lock = threading.RLock()

    @property
    def stats(self):
        """The storage backend's I/O statistics (hits/misses included)."""
        return self.storage.stats

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def get(self, namespace: str, page_id: int) -> Page:
        """Fetch a page, from cache when possible.

        The lock is held across the backing read on a miss, so two
        workers missing on the same page never both hit storage; the
        counters therefore stay exact under concurrency.  Transient and
        torn-page read faults are retried per the pool's
        :class:`~repro.db.faults.RetryPolicy` before propagating.
        """
        key = (namespace, page_id)
        with self._lock:
            page = self._cache.get(key)
            if page is not None:
                self._cache.move_to_end(key)
                self.storage.stats.add(cache_hits=1)
                return page
            self.storage.stats.add(cache_misses=1)
            page = call_with_retries(
                lambda: self.storage.read_page(namespace, page_id),
                self.retry,
                stats=self.storage.stats,
            )
            self._admit(key, page)
            return page

    def put(self, namespace: str, page: Page) -> None:
        """Write a page through to storage and cache it."""
        with self._lock:
            self.storage.write_page(namespace, page)
            self._admit((namespace, page.page_id), page)

    def _admit(self, key: tuple[str, int], page: Page) -> None:
        # Callers hold self._lock.
        self._cache[key] = page
        self._cache.move_to_end(key)
        if self.capacity_pages is not None:
            while len(self._cache) > self.capacity_pages:
                self._cache.popitem(last=False)

    def invalidate(self, namespace: str) -> None:
        """Drop every cached page of a namespace."""
        with self._lock:
            stale = [key for key in self._cache if key[0] == namespace]
            for key in stale:
                del self._cache[key]

    def clear(self) -> None:
        """Empty the cache entirely (cold-cache experiments)."""
        with self._lock:
            self._cache.clear()
