"""LRU buffer pool over a page store, with a decoded-page cache.

The buffer pool is the engine's RAM: the paper's server had 8 GB (with AWE
tricks to use it all); we model memory pressure as a configurable page
budget.  A query that touches a small clustered range of pages runs from
cache on repeat; a full scan of a table larger than the pool thrashes --
exactly the contrast the layered grid / kd-tree / Voronoi indexes exploit.

Two caches, two costs.  The primary cache models *page frames*: a hit
skips the storage read entirely.  Behind it sits the **decoded-page
cache**, keyed by ``(namespace, page_id, stored checksum)`` and bounded
by an approximate byte budget: when a primary miss re-reads bytes whose
stored CRC matches an already-decoded copy, the pool skips both the CRC
verification and :meth:`~repro.db.pages.PageCodec.decode` (counted as
``decode_hits``).  A page is CRC-verified exactly once per distinct byte
content (counted as ``checksum_verifications``); torn bytes surface as
:class:`~repro.db.errors.CorruptPageError` on first load, where fault
injection expects to see them.

The pool is also the coalescing seam for read-ahead: :meth:`prefetch`
turns a batch of wanted page ids into a single multi-page storage
request (``coalesced_reads`` / ``pages_prefetched`` counters).  Faulted
batches are retried under the pool's bounded exponential backoff
(:class:`repro.db.faults.RetryPolicy`); when the budget runs out the
prefetch is abandoned and the pages are read one at a time through
:meth:`get`, which applies the same retry policy per page before letting
faults propagate.

The pool is shared by every worker of the concurrent query service, so
all cache operations hold an internal lock: the LRU ``OrderedDict`` is
never observed mid-reorder and hit/miss counts are never dropped.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Sequence

from repro.db.errors import CorruptPageError, StorageFault
from repro.db.faults import RetryPolicy, call_with_retries
from repro.db.pages import Page, PageCodec
from repro.db.storage import Storage

__all__ = [
    "BufferPool",
    "DEFAULT_DECODED_BYTES",
    "DEFAULT_INDEX_CACHE_BYTES",
    "DEFAULT_READAHEAD_PAGES",
]

#: Default byte budget of the decoded-page cache (~8K pages of the
#: default SDSS magnitude schema).
DEFAULT_DECODED_BYTES = 64 << 20

#: Default byte budget of a paged kd-tree's decoded node cache
#: (:mod:`repro.core.kdpaged`).  Deliberately small relative to the
#: node arrays of a deep tree: the paged tree is the "index bigger than
#: RAM" configuration, so its working set must not silently grow to the
#: whole index.
DEFAULT_INDEX_CACHE_BYTES = 4 << 20

#: Default coalescing window of the scan layer's read-ahead: how many
#: adjacent surviving pages ride in one multi-page storage request.
DEFAULT_READAHEAD_PAGES = 8


class BufferPool:
    """A shared LRU cache of decoded pages keyed by ``(namespace, page_id)``.

    Parameters
    ----------
    storage:
        The backing page store.
    capacity_pages:
        Maximum number of pages held in memory; ``None`` means unbounded
        (an "everything fits in RAM" configuration).
    retry:
        Backoff policy for transient/corrupt read faults on a miss;
        ``None`` disables retrying (one attempt, faults propagate).
    decoded_bytes:
        Approximate byte budget of the decoded-page cache; ``0`` or
        ``None`` disables it (every miss decodes and re-verifies).
    readahead_pages:
        Default coalescing window the scan executors use when the caller
        does not pass one; ``0`` disables read-ahead.
    """

    def __init__(
        self,
        storage: Storage,
        capacity_pages: int | None = 1024,
        retry: RetryPolicy | None = RetryPolicy(),
        decoded_bytes: int | None = DEFAULT_DECODED_BYTES,
        readahead_pages: int = DEFAULT_READAHEAD_PAGES,
    ):
        if capacity_pages is not None and capacity_pages < 1:
            raise ValueError("capacity_pages must be >= 1 or None")
        if readahead_pages < 0:
            raise ValueError("readahead_pages must be >= 0")
        self.storage = storage
        self.capacity_pages = capacity_pages
        self.retry = retry if retry is not None else RetryPolicy(attempts=1)
        self.decoded_bytes = decoded_bytes if decoded_bytes else 0
        self.readahead_pages = readahead_pages
        self._cache: OrderedDict[tuple[str, int], Page] = OrderedDict()
        self._decoded: OrderedDict[tuple[str, int, int], Page] = OrderedDict()
        self._decoded_nbytes = 0
        self._lock = threading.RLock()

    @property
    def stats(self):
        """The storage backend's I/O statistics (hits/misses included)."""
        return self.storage.stats

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    @property
    def decoded_cache_bytes(self) -> int:
        """Approximate bytes currently held by the decoded-page cache."""
        with self._lock:
            return self._decoded_nbytes

    def get(self, namespace: str, page_id: int) -> Page:
        """Fetch a page, from cache when possible.

        The lock is held across the backing read on a miss, so two
        workers missing on the same page never both hit storage; the
        counters therefore stay exact under concurrency.  Transient and
        torn-page read faults are retried per the pool's
        :class:`~repro.db.faults.RetryPolicy` before propagating.
        """
        key = (namespace, page_id)
        with self._lock:
            page = self._cache.get(key)
            if page is not None:
                self._cache.move_to_end(key)
                self.storage.stats.add(cache_hits=1)
                return page
            self.storage.stats.add(cache_misses=1)
            page = call_with_retries(
                lambda: self._load(namespace, page_id),
                self.retry,
                stats=self.storage.stats,
            )
            self._admit(key, page)
            return page

    def prefetch(self, namespace: str, page_ids: Sequence[int]) -> int:
        """Pull the missing pages among ``page_ids`` in with one coalesced read.

        Returns how many pages were actually fetched (already-cached
        pages cost nothing).  A transient fault anywhere in the batch
        retries the whole batch under the pool's
        :class:`~repro.db.faults.RetryPolicy` (counted in
        ``read_faults`` / ``read_retries`` like any other read); a batch
        that exhausts the budget is abandoned, and a torn page inside a
        successful batch is dropped -- either way those pages fall back
        to the page-at-a-time retry path of :meth:`get`, so prefetching
        is strictly an optimization.
        """
        with self._lock:
            missing = [
                page_id
                for page_id in page_ids
                if (namespace, page_id) not in self._cache
            ]
            if not missing:
                return 0
            try:
                blobs = call_with_retries(
                    lambda: self.storage.read_pages_bytes(namespace, missing),
                    self.retry,
                    stats=self.storage.stats,
                )
            except StorageFault:
                return 0
            fetched = 0
            for page_id, data in zip(missing, blobs):
                try:
                    page = self._decode(namespace, page_id, data)
                except CorruptPageError:
                    continue
                self._admit((namespace, page_id), page)
                fetched += 1
            self.storage.stats.add(
                pages_prefetched=fetched,
                coalesced_reads=1 if len(missing) > 1 else 0,
            )
            return fetched

    def put(self, namespace: str, page: Page) -> None:
        """Write a page through to storage and cache it."""
        with self._lock:
            self.storage.write_page(namespace, page)
            self._admit((namespace, page.page_id), page)

    # -- internals -----------------------------------------------------------

    def _load(self, namespace: str, page_id: int) -> Page:
        # Callers hold self._lock.
        data = self.storage.read_page_bytes(namespace, page_id)
        return self._decode(namespace, page_id, data)

    def _decode(self, namespace: str, page_id: int, data: bytes) -> Page:
        """Decode encoded bytes, reusing a decoded copy when the CRC matches.

        Raises :class:`~repro.db.errors.CorruptPageError` for torn bytes
        never seen intact before.  Torn bytes whose *stored* checksum
        matches an already-verified copy are absorbed (the body bytes are
        not consulted again), which is the cache doing its job: the good
        decode of that exact page version is already in memory.
        """
        checksum = PageCodec.stored_checksum(data)
        if checksum is not None and self.decoded_bytes:
            dkey = (namespace, page_id, checksum)
            page = self._decoded.get(dkey)
            if page is not None:
                self._decoded.move_to_end(dkey)
                self.storage.stats.add(decode_hits=1)
                return page
        page = PageCodec.decode(data)  # CRC verified here; may raise
        self.storage.stats.add(checksum_verifications=1)
        if checksum is not None and self.decoded_bytes:
            self._remember_decoded((namespace, page_id, checksum), page)
        return page

    def _remember_decoded(self, dkey: tuple[str, int, int], page: Page) -> None:
        if dkey not in self._decoded:
            self._decoded_nbytes += page.nbytes()
        self._decoded[dkey] = page
        self._decoded.move_to_end(dkey)
        while self._decoded_nbytes > self.decoded_bytes and self._decoded:
            _, evicted = self._decoded.popitem(last=False)
            self._decoded_nbytes -= evicted.nbytes()

    def _admit(self, key: tuple[str, int], page: Page) -> None:
        # Callers hold self._lock.
        self._cache[key] = page
        self._cache.move_to_end(key)
        if self.capacity_pages is not None:
            while len(self._cache) > self.capacity_pages:
                self._cache.popitem(last=False)

    def cached_namespaces(self) -> set[str]:
        """Namespaces with at least one page in either cache level.

        Introspection for cache-hygiene tests: after a drop or a
        generation swap, the retired namespace must not appear here.
        """
        with self._lock:
            names = {key[0] for key in self._cache}
            names.update(key[0] for key in self._decoded)
            return names

    def invalidate(self, namespace: str) -> None:
        """Drop every cached page of a namespace (both cache levels)."""
        with self._lock:
            stale = [key for key in self._cache if key[0] == namespace]
            for key in stale:
                del self._cache[key]
            stale_decoded = [key for key in self._decoded if key[0] == namespace]
            for key in stale_decoded:
                self._decoded_nbytes -= self._decoded.pop(key).nbytes()

    def clear(self) -> None:
        """Empty both cache levels (cold-cache / restart experiments)."""
        with self._lock:
            self._cache.clear()
            self._decoded.clear()
            self._decoded_nbytes = 0
