"""The database: storage + buffer pool + catalog of tables, indexes, procs.

A :class:`Database` is the top-level handle users create first::

    db = Database.in_memory(buffer_pages=512)
    table = db.create_table("magnitudes", {"u": u, "g": g, ...})

Spatial indexes register themselves in the catalog so stored procedures
can find them by name, mirroring how the paper's CLR procedures resolve
the index tables that live next to the data.
"""

from __future__ import annotations

import logging
import os
import threading
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.db.buffer_pool import (
    DEFAULT_DECODED_BYTES,
    DEFAULT_INDEX_CACHE_BYTES,
    DEFAULT_READAHEAD_PAGES,
    BufferPool,
)
from repro.db.faults import FaultInjector, FaultyStorage, RetryPolicy
from repro.db.procedures import ProcedureRegistry
from repro.db.stats import IOStats
from repro.db.storage import FileStorage, MemoryStorage, Storage, index_namespace
from repro.db.table import DEFAULT_ROWS_PER_PAGE, Table
from repro.db.zonemap import ZoneMap
from repro.ingest.manager import IngestManager
from repro.ingest.wal import IngestWal

__all__ = ["Database", "DatabaseOptions"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class DatabaseOptions:
    """Picklable open-options of a :class:`Database`.

    A plain value object capturing every constructor knob except the
    storage backend itself, so a worker *process* can be handed the
    parent's configuration (buffer budget, retry policy, I/O
    acceleration toggles, optionally a seeded
    :class:`~repro.db.faults.FaultInjector`) and open an identically
    behaving database on its side of the fork/spawn boundary.
    """

    buffer_pages: int | None = 1024
    retry: RetryPolicy | None = None
    zone_maps: bool = True
    #: Restrict zone maps to these columns (``None`` = every numeric
    #: column).  A tuning knob: dropping synopses for never-queried
    #: columns trades pruning coverage for catalog bytes.
    zone_map_columns: tuple[str, ...] | None = None
    decoded_cache_bytes: int | None = DEFAULT_DECODED_BYTES
    readahead_pages: int = DEFAULT_READAHEAD_PAGES
    #: Byte budget of each paged kd-tree's decoded node cache
    #: (:mod:`repro.core.kdpaged`).
    index_cache_bytes: int = DEFAULT_INDEX_CACHE_BYTES
    #: When set, the opened storage is wrapped in a
    #: :class:`~repro.db.faults.FaultyStorage` around this injector.
    fault: FaultInjector | None = None

    def open(self, storage: Storage | None = None) -> "Database":
        """Open a database with these options (in-memory by default)."""
        if storage is None:
            storage = MemoryStorage()
        if self.fault is not None:
            storage = FaultyStorage(storage, self.fault)
        return Database(
            storage,
            buffer_pages=self.buffer_pages,
            retry=self.retry,
            zone_maps=self.zone_maps,
            zone_map_columns=self.zone_map_columns,
            decoded_cache_bytes=self.decoded_cache_bytes,
            readahead_pages=self.readahead_pages,
            index_cache_bytes=self.index_cache_bytes,
        )


class Database:
    """A catalog of tables and indexes over one storage backend.

    ``retry`` is the buffer pool's backoff policy for transient/corrupt
    page reads (``None`` keeps the default policy).  The I/O acceleration
    knobs -- ``zone_maps`` (per-page min/max synopses built at table
    creation), ``decoded_cache_bytes`` (the buffer pool's decoded-page
    cache budget; ``0`` disables) and ``readahead_pages`` (coalescing
    window of scan read-ahead; ``0`` disables) -- all default on and
    exist so benchmarks and differential tests can toggle each feature
    independently.
    """

    def __init__(
        self,
        storage: Storage,
        buffer_pages: int | None = 1024,
        retry: RetryPolicy | None = None,
        zone_maps: bool = True,
        zone_map_columns: tuple[str, ...] | None = None,
        decoded_cache_bytes: int | None = DEFAULT_DECODED_BYTES,
        readahead_pages: int = DEFAULT_READAHEAD_PAGES,
        index_cache_bytes: int = DEFAULT_INDEX_CACHE_BYTES,
    ):
        self.storage = storage
        # Picklable record of how this database was opened, so shard
        # worker processes can reproduce the configuration exactly (the
        # fault injector, if any, lives on the storage wrapper and is
        # recorded by whoever does the wrapping).
        self.options = DatabaseOptions(
            buffer_pages=buffer_pages,
            retry=retry,
            zone_maps=zone_maps,
            zone_map_columns=zone_map_columns,
            decoded_cache_bytes=decoded_cache_bytes,
            readahead_pages=readahead_pages,
            index_cache_bytes=index_cache_bytes,
        )
        self.buffer_pool = BufferPool(
            storage,
            capacity_pages=buffer_pages,
            retry=retry if retry is not None else RetryPolicy(),
            decoded_bytes=decoded_cache_bytes,
            readahead_pages=readahead_pages,
        )
        self.procedures = ProcedureRegistry(self)
        self.zone_maps_enabled = zone_maps
        self.zone_map_columns = zone_map_columns
        self._zone_maps: dict[str, ZoneMap] = {}
        #: Per-table planner calibration snapshots (persisted in the
        #: catalog so a reattached database keeps its learned per-engine
        #: page-cost constants).
        self._planner_calibrations: dict[str, dict] = {}
        #: Tables whose calibration came from a catalog reattach; only
        #: these warm new planners (see :meth:`planner_calibration`).
        self._restored_calibrations: set[str] = set()
        self._tables: dict[str, Table] = {}
        self._indexes: dict[str, Any] = {}
        self._mutation_listeners: list[Any] = []
        #: The catalog lock: generation swaps (table + index + delta
        #: tier) happen atomically under it, so a reader either sees the
        #: whole old layout or the whole new one.
        self.lock = threading.RLock()
        #: The logical write-ahead log of the ingest path (WAL-first).
        self.ingest_wal = IngestWal()
        #: Per-table delta tiers and merge policy.
        self.ingest = IngestManager(self)

    # -- constructors -----------------------------------------------------

    @staticmethod
    def in_memory(buffer_pages: int | None = 1024, **options: Any) -> "Database":
        """Database over in-process page storage (default for tests)."""
        return Database(MemoryStorage(), buffer_pages=buffer_pages, **options)

    @staticmethod
    def on_disk(
        root: str | os.PathLike, buffer_pages: int | None = 1024, **options: Any
    ) -> "Database":
        """Database over file-per-page storage (real disk round trips)."""
        return Database(FileStorage(root), buffer_pages=buffer_pages, **options)

    # -- tables -----------------------------------------------------------

    def create_table(
        self,
        name: str,
        data: dict[str, np.ndarray],
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
        clustered_by: tuple[str, ...] | list[str] = (),
    ) -> Table:
        """Create and register a table; fails if the name is taken."""
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table.create(
            self, name, data, rows_per_page=rows_per_page, clustered_by=clustered_by
        )
        self._tables[name] = table
        self._notify_mutation(name)
        return table

    def adopt_table(self, table: Table) -> None:
        """Register a table object whose pages already exist in storage.

        Used by catalog persistence (reattaching a disk database) --
        normal creation goes through :meth:`create_table`.
        """
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table {name!r} in catalog") from None

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name in self._tables

    def drop_table(self, name: str) -> None:
        """Remove a table, its pages, and any indexes registered for it."""
        with self.lock:
            table = self._tables.pop(name, None)
            namespaces = {name}
            if table is not None:
                namespaces.add(table.physical_name)
            state = self.ingest.state(name)
            if state is not None:
                namespaces.update(self.ingest.take_retirees(name, name))
            self.ingest.forget(name)
            for namespace in namespaces:
                self._zone_maps.pop(namespace, None)
                # Each data namespace may carry index node pages in its
                # paired index namespace; both cache levels and storage
                # are cleared for both.
                for ns in (namespace, index_namespace(namespace)):
                    self.buffer_pool.invalidate(ns)
                    self.storage.drop_namespace(ns)
            stale = [
                k
                for k, v in self._indexes.items()
                if getattr(v, "table_name", None) == name
            ]
            for key in stale:
                self._teardown_index(self._indexes.pop(key))
        self._notify_mutation(name)

    def swap_table(
        self,
        name: str,
        table: Table,
        indexes: dict[str, Any] | None = None,
        generation: int | None = None,
        retire: list[str] | None = None,
    ) -> Table:
        """Atomically replace a table's layout with a new generation.

        Under the catalog lock, installs the new table object, replaces
        the given indexes, attaches a fresh delta tier for the new
        generation, and drops long-superseded physical namespaces
        (``retire``).  In-flight queries holding the old table object
        keep reading its (still present) pages and its frozen delta.
        Returns the superseded table.
        """
        with self.lock:
            if name not in self._tables:
                raise KeyError(f"no table {name!r} in catalog")
            old = self._tables[name]
            self._tables[name] = table
            for key, index in (indexes or {}).items():
                self._indexes[key] = index
            if generation is not None:
                self.ingest.install_generation(name, table, generation)
            for namespace in retire or ():
                if namespace == table.physical_name:
                    continue
                self._zone_maps.pop(namespace, None)
                # Retire the generation's index pages with its data
                # pages: a stale node page served after the swap would
                # route reads through a dead layout.
                for ns in (namespace, index_namespace(namespace)):
                    self.buffer_pool.invalidate(ns)
                    self.storage.drop_namespace(ns)
        self._notify_mutation(name)
        return old

    # -- mutation listeners -------------------------------------------------

    def add_mutation_listener(self, listener) -> None:
        """Register ``listener(table_name)`` to run on catalog mutations
        (table create/drop, ingest writes, merges).

        The query service's result cache and the planner's probe cache
        subscribe here so cached state never outlives the layout it was
        computed from.  Adding the same listener twice is a no-op: a
        listener fires once per mutation no matter how many components
        re-registered it.
        """
        if not any(existing is listener for existing in self._mutation_listeners):
            self._mutation_listeners.append(listener)

    def remove_mutation_listener(self, listener) -> None:
        """Unregister a previously added mutation listener (no-op if absent)."""
        try:
            self._mutation_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_mutation(self, table_name: str) -> None:
        # Listener isolation: one misbehaving subscriber must not stop
        # cache invalidation for the others -- a swallowed notification
        # would leave a stale cache serving rows from a dead layout.
        for listener in list(self._mutation_listeners):
            try:
                listener(table_name)
            except Exception:
                logger.exception(
                    "mutation listener %r failed for table %r", listener, table_name
                )

    def table_names(self) -> list[str]:
        """Names of all registered tables."""
        return sorted(self._tables)

    # -- zone maps -----------------------------------------------------------

    def register_zone_map(self, zone_map: ZoneMap) -> None:
        """Attach per-page synopses to a table (replaces any existing map)."""
        self._zone_maps[zone_map.table_name] = zone_map

    def zone_map(self, table_name: str) -> ZoneMap | None:
        """The table's zone map, or ``None`` when absent or disabled."""
        if not self.zone_maps_enabled:
            return None
        return self._zone_maps.get(table_name)

    def zone_map_names(self) -> list[str]:
        """Names of tables that carry zone maps."""
        return sorted(self._zone_maps)

    # -- planner calibration ------------------------------------------------

    def save_planner_calibration(self, table_name: str, snapshot: dict) -> None:
        """Record a planner's learned cost state for one table.

        Called by :class:`~repro.core.planner.QueryPlanner` whenever its
        EWMA calibration moves; :func:`repro.db.persistence.save_catalog`
        writes the latest snapshot so a reattach starts warm.
        """
        with self.lock:
            self._planner_calibrations[table_name] = dict(snapshot)

    def planner_calibration(self, table_name: str) -> dict | None:
        """A *restored* calibration snapshot for a table, if any.

        Only snapshots installed by
        :meth:`restore_planner_calibrations` (a catalog reattach) are
        handed out: live snapshots are persisted but never shared
        between planner instances in the same process, so a fresh
        planner over a live database still starts from the neutral
        constants its tests and its operators expect.
        """
        with self.lock:
            if table_name not in self._restored_calibrations:
                return None
            snapshot = self._planner_calibrations.get(table_name)
            return dict(snapshot) if snapshot is not None else None

    def planner_calibrations(self) -> dict[str, dict]:
        """All stored calibration snapshots (catalog persistence)."""
        with self.lock:
            return {
                name: dict(snapshot)
                for name, snapshot in self._planner_calibrations.items()
            }

    def restore_planner_calibrations(self, snapshots: dict[str, dict]) -> None:
        """Install snapshots loaded from a persisted catalog.

        Restored snapshots (and only those) warm the next planner built
        over their table -- see :meth:`planner_calibration`.
        """
        with self.lock:
            for name, snapshot in snapshots.items():
                self._planner_calibrations[name] = dict(snapshot)
                self._restored_calibrations.add(name)

    # -- indexes ------------------------------------------------------------

    def register_index(self, name: str, index: Any) -> None:
        """Register a spatial index object under a catalog name."""
        if name in self._indexes:
            raise ValueError(f"index {name!r} already exists")
        self._indexes[name] = index

    def index(self, name: str) -> Any:
        """Look up an index by name."""
        try:
            return self._indexes[name]
        except KeyError:
            raise KeyError(f"no index {name!r} in catalog") from None

    def index_if_exists(self, name: str) -> Any | None:
        """Look up an index by name, ``None`` when absent.

        Long-lived components (planners) resolve their index through
        this on every query so a merge's index swap takes effect without
        re-wiring them.
        """
        return self._indexes.get(name)

    def index_names(self) -> list[str]:
        """Names of all registered indexes."""
        return sorted(self._indexes)

    def drop_index(self, name: str) -> bool:
        """Unregister an index by catalog name; ``True`` if it existed.

        Used by merges that could not rebuild a secondary index for the
        new generation: dropping the stale entry makes dependent
        planners degrade (no index) instead of serving a superseded
        layout.  A paged index's node pages are invalidated from the
        buffer pool and dropped from storage, and its node cache is
        emptied -- nothing of the dropped index can be served afterwards.
        """
        with self.lock:
            index = self._indexes.pop(name, None)
            if index is None:
                return False
            self._teardown_index(index)
            return True

    def _teardown_index(self, index: Any) -> None:
        # Duck-typed on purpose: the catalog cannot import repro.core
        # (core imports the catalog).  Paged trees expose ``namespace``
        # and ``drop_node_cache``; in-memory trees and bitmap indexes
        # expose neither and need no storage teardown here.
        tree = getattr(index, "tree", None)
        namespace = getattr(tree, "namespace", None)
        if namespace is not None:
            self.buffer_pool.invalidate(namespace)
            self.storage.drop_namespace(namespace)
        drop = getattr(tree, "drop_node_cache", None)
        if drop is not None:
            drop()

    def registered_indexes(self) -> dict[str, Any]:
        """Snapshot of the index registry (persistence, introspection)."""
        with self.lock:
            return dict(self._indexes)

    # -- stats ------------------------------------------------------------

    @property
    def io_stats(self) -> IOStats:
        """Live I/O counters of the storage backend."""
        return self.storage.stats

    def reset_io_stats(self) -> None:
        """Zero the I/O counters (does not clear the buffer pool)."""
        self.storage.stats.reset()

    def cold_cache(self) -> None:
        """Clear every cache, simulating a restart / cold run.

        Covers the buffer pool (both levels) *and* the node caches of
        paged kd-trees -- a cold run that kept decoded index nodes
        around would understate cold-start I/O.
        """
        self.buffer_pool.clear()
        with self.lock:
            for index in self._indexes.values():
                drop = getattr(getattr(index, "tree", None), "drop_node_cache", None)
                if drop is not None:
                    drop()

    def __repr__(self) -> str:
        return (
            f"Database(tables={self.table_names()}, indexes={self.index_names()}, "
            f"buffer_pages={self.buffer_pool.capacity_pages})"
        )
