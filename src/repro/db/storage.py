"""Page storage backends.

Two backends share one interface:

* :class:`MemoryStorage` keeps encoded page bytes in a dict.  Reads still
  decode bytes, so the relative cost of touching a page is non-trivial and
  the I/O counters are exact; this is the default for tests and most
  benchmarks.
* :class:`FileStorage` writes one file per page under a directory and
  reads them back through the OS, giving real disk round trips for
  experiments that want them (the out-of-core story of the paper).

Storage is deliberately dumb: no caching here.  Caching lives in
:class:`repro.db.buffer_pool.BufferPool`, so that cache hits and misses
are attributable.  Reads come in two granularities: the raw-bytes
primitives (:meth:`Storage.read_page_bytes`,
:meth:`Storage.read_pages_bytes`) return encoded blobs without decoding
-- the buffer pool owns decoding so it can skip it on a decoded-cache
hit -- and :meth:`Storage.read_page` remains the decode-included
convenience for direct callers.  ``read_pages_bytes`` is the coalescing
seam: one call fetches a batch of pages (the scan layer's read-ahead),
and a backend accounts the whole batch with a single counter update.

Failure contract (see :mod:`repro.db.errors`): a read may raise
:class:`~repro.db.errors.TransientIOError` (retryable) or
:class:`~repro.db.errors.CorruptPageError` (checksum failure; a re-read
may return a good copy); a write may raise
:class:`~repro.db.errors.WriteFault`.  ``KeyError`` stays reserved for
a page that genuinely does not exist -- it is never retried.
:class:`repro.db.faults.FaultyStorage` wraps any backend to inject these
failures deterministically.
"""

from __future__ import annotations

import abc
import os
from pathlib import Path
from typing import Sequence

from repro.db.errors import TransientIOError, WriteFault
from repro.db.pages import Page, PageCodec
from repro.db.stats import IOStats

__all__ = [
    "Storage",
    "MemoryStorage",
    "FileStorage",
    "INDEX_NAMESPACE_PREFIX",
    "index_namespace",
]

#: Namespace prefix for on-disk index pages.  Index namespaces live in
#: the same storage as data pages (so they share the buffer pool, fault
#: injection, and retry machinery) but are visibly segregated so cache
#: hygiene can target them per table generation.
INDEX_NAMESPACE_PREFIX = "__kdindex__"


def index_namespace(physical_name: str) -> str:
    """The storage namespace holding index node pages for a table.

    Keyed by *physical* name (``sky@g1``), so each merge generation gets
    its own index namespace and a generation swap can drop the retiree's
    node pages without touching the incoming tree's.
    """
    return f"{INDEX_NAMESPACE_PREFIX}/{physical_name}"


class Storage(abc.ABC):
    """Abstract page store keyed by ``(namespace, page_id)``.

    A namespace is a table name; page ids are dense per namespace.
    """

    def __init__(self) -> None:
        self.stats = IOStats()

    @abc.abstractmethod
    def write_page(self, namespace: str, page: Page) -> None:
        """Persist a page (overwrites an existing page with the same id)."""

    @abc.abstractmethod
    def read_page_bytes(self, namespace: str, page_id: int) -> bytes:
        """Load a page's encoded bytes; raises ``KeyError`` when absent."""

    def read_pages_bytes(
        self, namespace: str, page_ids: Sequence[int]
    ) -> list[bytes]:
        """Load several pages' encoded bytes in one coalesced request.

        The base implementation loops :meth:`read_page_bytes`; real
        backends override it to account the batch as one I/O operation.
        A fault on any page fails the whole batch (callers degrade to
        page-at-a-time reads with retries).
        """
        return [self.read_page_bytes(namespace, page_id) for page_id in page_ids]

    def read_page(self, namespace: str, page_id: int) -> Page:
        """Load and decode a page; raises ``KeyError`` when absent."""
        return PageCodec.decode(self.read_page_bytes(namespace, page_id))

    @abc.abstractmethod
    def num_pages(self, namespace: str) -> int:
        """Number of pages stored under a namespace."""

    @abc.abstractmethod
    def drop_namespace(self, namespace: str) -> None:
        """Remove all pages of a namespace (no-op when absent)."""


class MemoryStorage(Storage):
    """Encoded pages held in process memory with exact I/O accounting."""

    def __init__(self) -> None:
        super().__init__()
        self._pages: dict[str, dict[int, bytes]] = {}

    def write_page(self, namespace: str, page: Page) -> None:
        data = PageCodec.encode(page)
        self._pages.setdefault(namespace, {})[page.page_id] = data
        self.stats.add(page_writes=1, bytes_written=len(data))

    def read_page_bytes(self, namespace: str, page_id: int) -> bytes:
        data = self._pages[namespace][page_id]
        self.stats.add(page_reads=1, bytes_read=len(data))
        return data

    def read_pages_bytes(
        self, namespace: str, page_ids: Sequence[int]
    ) -> list[bytes]:
        store = self._pages[namespace]
        blobs = [store[page_id] for page_id in page_ids]
        self.stats.add(
            page_reads=len(blobs), bytes_read=sum(len(b) for b in blobs)
        )
        return blobs

    def num_pages(self, namespace: str) -> int:
        return len(self._pages.get(namespace, {}))

    def drop_namespace(self, namespace: str) -> None:
        self._pages.pop(namespace, None)


class FileStorage(Storage):
    """One file per page under ``root/namespace/``; real disk I/O."""

    def __init__(self, root: str | os.PathLike) -> None:
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _page_path(self, namespace: str, page_id: int) -> Path:
        return self.root / namespace / f"{page_id:08d}.page"

    def write_page(self, namespace: str, page: Page) -> None:
        path = self._page_path(namespace, page.page_id)
        data = PageCodec.encode(page)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "wb") as fh:
                fh.write(data)
        except OSError as exc:
            raise WriteFault(f"write of ({namespace!r}, {page.page_id}) failed: {exc}") from exc
        self.stats.add(page_writes=1, bytes_written=len(data))

    def _read_bytes(self, namespace: str, page_id: int) -> bytes:
        path = self._page_path(namespace, page_id)
        try:
            with open(path, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            raise KeyError((namespace, page_id)) from None
        except OSError as exc:
            # Real disk hiccups map onto the retryable fault class, so
            # the buffer pool's backoff applies to them too.
            raise TransientIOError(f"read of ({namespace!r}, {page_id}) failed: {exc}") from exc

    def read_page_bytes(self, namespace: str, page_id: int) -> bytes:
        data = self._read_bytes(namespace, page_id)
        self.stats.add(page_reads=1, bytes_read=len(data))
        return data

    def read_pages_bytes(
        self, namespace: str, page_ids: Sequence[int]
    ) -> list[bytes]:
        blobs = [self._read_bytes(namespace, page_id) for page_id in page_ids]
        self.stats.add(
            page_reads=len(blobs), bytes_read=sum(len(b) for b in blobs)
        )
        return blobs

    def num_pages(self, namespace: str) -> int:
        directory = self.root / namespace
        if not directory.is_dir():
            return 0
        return sum(1 for entry in directory.iterdir() if entry.suffix == ".page")

    def drop_namespace(self, namespace: str) -> None:
        directory = self.root / namespace
        if not directory.is_dir():
            return
        for entry in directory.iterdir():
            if entry.suffix == ".page":
                entry.unlink()
        directory.rmdir()
