"""Storage-fault exception hierarchy.

The paper's indexes ran inside SQL Server, where a page read can fail
transiently (I/O subsystem hiccup), return torn/corrupt bytes (detected
by page checksums, ``PAGE_VERIFY CHECKSUM``), or a write can fail
outright.  The engine's contract is that none of these crash the server:
reads are retried, corruption is detected rather than silently decoded,
and queries that cannot recover fail with a structured error.

This module is the shared vocabulary for that contract.  It sits at the
bottom of the ``repro.db`` import graph (it imports nothing) so the page
codec, the storage backends, the buffer pool, the scan executors, the
planner, and the query service can all agree on what is retryable:

* :class:`TransientIOError` -- the read may succeed if retried;
* :class:`CorruptPageError` -- the bytes decoded wrong; a re-read may
  return a good copy (torn read), so it is also treated as retryable;
* :class:`WriteFault` -- a page write failed; never retried implicitly
  (the caller decides whether the half-written state is recoverable,
  e.g. via the write-ahead log).

All three derive from :class:`StorageFault`, which is what the layers
above catch when they degrade (planner index -> scan fallback) or
convert to a structured per-query error (the service executor).

:class:`StaleLayoutError` is deliberately *not* a :class:`StorageFault`:
nothing about the storage failed.  It means a background merge retired
the physical generation a query was reading mid-flight, so re-reading
the same pages can never succeed -- the only correct recovery is to
re-resolve the table through the catalog and re-run against the current
layout, which the planner does.
"""

from __future__ import annotations

__all__ = [
    "StorageFault",
    "TransientIOError",
    "CorruptPageError",
    "WriteFault",
    "StaleLayoutError",
]


class StorageFault(Exception):
    """Base class for every storage-level failure the engine can survive."""


class TransientIOError(StorageFault, OSError):
    """A read failed in a way that may succeed on retry."""


class CorruptPageError(StorageFault, ValueError):
    """Page bytes failed verification (bad magic, checksum, or shape).

    Subclasses :class:`ValueError` for compatibility with callers that
    predate the fault subsystem and catch decode errors broadly.
    """


class WriteFault(StorageFault, OSError):
    """A page write failed; the page may be missing or stale in storage."""


class StaleLayoutError(RuntimeError):
    """A read hit a physical generation that a merge has since retired.

    Raised by :meth:`~repro.db.table.Table.read_page` (and ``prefetch``)
    when the backing namespace is gone *and* the catalog holds a newer
    generation of the same table -- the reader captured a table object
    whose layout moved out from under it.  Retrying the read is useless;
    callers must re-resolve the table and re-run.  Genuinely missing
    pages of a live table still surface as the backend's own error.
    """
