"""A small paged column-store database engine.

This package is the substrate that stands in for MS SQL Server 2005 in the
paper.  The paper's central performance argument is about **disk I/O**:
spatial indexes win because they cluster rows so a query touches only the
pages that contribute output, while a full scan touches every page.  To
reproduce those shapes faithfully we need an engine where "pages touched"
is a first-class, measurable quantity:

* :mod:`repro.db.pages` -- the page abstraction (a row-group of all
  columns for a contiguous row range) and its binary serialization.
* :mod:`repro.db.storage` -- page stores: in-memory (fast, counted) and
  file-backed (real disk round trips), both reporting
  :class:`repro.db.stats.IOStats`.
* :mod:`repro.db.buffer_pool` -- an LRU buffer pool with a configurable
  page budget, the analog of the server's RAM (the paper's 8 GB box).
* :mod:`repro.db.table` -- typed, immutable tables with an optional
  clustered order (the paper clusters the magnitude table on kd-leaf id /
  Voronoi cell id / (Layer, ContainedBy)).
* :mod:`repro.db.expressions` -- predicate ASTs evaluated page-at-a-time
  with numpy, plus extraction of linear inequalities into
  :class:`repro.geometry.Polyhedron` queries.
* :mod:`repro.db.scan` -- full-scan and range-scan executors, with
  zone-map pruning and coalesced read-ahead on their hot paths.
* :mod:`repro.db.zonemap` -- per-page min/max synopses that let scans
  skip pages before any read or decode.
* :mod:`repro.db.procedures` -- the stored-procedure registry (the CLR
  stored procedures of the paper become registered Python callables that
  run "inside" the engine, next to the data).
"""

from repro.db.stats import IOStats
from repro.db.errors import CorruptPageError, StorageFault, TransientIOError, WriteFault
from repro.db.pages import Page, PageCodec
from repro.db.storage import FileStorage, MemoryStorage, Storage
from repro.db.faults import FaultInjector, FaultyStorage, RetryPolicy, call_with_retries
from repro.db.buffer_pool import BufferPool
from repro.db.zonemap import ZoneMap, ZonePruner
from repro.db.table import ColumnSpec, Table
from repro.db.catalog import Database, DatabaseOptions
from repro.db.expressions import (
    Col,
    Const,
    Expr,
    InList,
    LinearExtractionError,
    expression_to_polyhedron,
    expression_to_query,
)
from repro.db.scan import AUTO_TOMBSTONES, batch_full_scan, full_scan, range_scan
from repro.db.aggregates import aggregate_scan, count_rows
from repro.db.procedures import ProcedureRegistry, procedure
from repro.db.recovery import LoggedStorage, LogRecord
from repro.db.persistence import attach_database, save_catalog
from repro.db.projections import ProjectionSet, create_projection
from repro.db.histogram import ColumnHistogram, HistogramStatistics
from repro.db.sqlparse import SqlParseError, parse_where

__all__ = [
    "IOStats",
    "StorageFault",
    "TransientIOError",
    "CorruptPageError",
    "WriteFault",
    "Page",
    "PageCodec",
    "Storage",
    "MemoryStorage",
    "FileStorage",
    "FaultInjector",
    "FaultyStorage",
    "RetryPolicy",
    "call_with_retries",
    "BufferPool",
    "ZoneMap",
    "ZonePruner",
    "ColumnSpec",
    "Table",
    "Database",
    "DatabaseOptions",
    "Expr",
    "Col",
    "Const",
    "LinearExtractionError",
    "expression_to_polyhedron",
    "expression_to_query",
    "InList",
    "AUTO_TOMBSTONES",
    "batch_full_scan",
    "full_scan",
    "range_scan",
    "aggregate_scan",
    "count_rows",
    "ProcedureRegistry",
    "procedure",
    "LoggedStorage",
    "LogRecord",
    "save_catalog",
    "attach_database",
    "create_projection",
    "ProjectionSet",
    "ColumnHistogram",
    "HistogramStatistics",
    "parse_where",
    "SqlParseError",
]
