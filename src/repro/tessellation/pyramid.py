"""The multi-level Delaunay pyramid of §5.2.

"As a demonstration, we exported a 1K, a 10K and 100K sample of the
magnitude table and computed its Delaunay graph in-memory and imported
it back into the database.  This enables us to do a 3-level adaptive
visualization."

:class:`DelaunayPyramid` formalizes that construction: *nested* random
samples (every coarser level's seeds are a subset of the finer level's,
so zooming refines rather than reshuffles), one Delaunay graph per
level, and the level-selection rule the producers use ("if not enough
edges are returned, it goes on to the 10K and subsequently 100K
tables").
"""

from __future__ import annotations

import numpy as np

from repro.geometry.boxes import Box
from repro.tessellation.delaunay import DelaunayGraph

__all__ = ["DelaunayPyramid"]


class DelaunayPyramid:
    """Nested multi-resolution Delaunay graphs over one point set."""

    def __init__(self, graphs: list[DelaunayGraph], sample_rows: list[np.ndarray]):
        if not graphs:
            raise ValueError("pyramid needs at least one level")
        self.graphs = graphs
        self.sample_rows = sample_rows

    @staticmethod
    def build(
        points: np.ndarray,
        level_sizes: list[int] | None = None,
        seed: int = 0,
    ) -> "DelaunayPyramid":
        """Draw nested samples and triangulate each.

        ``level_sizes`` must be increasing (the paper's 1K / 10K / 100K
        pattern); the default scales three decades to the data size.
        """
        points = np.asarray(points, dtype=np.float64)
        n, dim = points.shape
        if level_sizes is None:
            top = min(n, 4096)
            level_sizes = [max(dim + 2, top // 16), max(dim + 2, top // 4), top]
        if sorted(level_sizes) != list(level_sizes):
            raise ValueError("level_sizes must be increasing")
        if level_sizes[-1] > n:
            raise ValueError("largest level exceeds the point count")
        rng = np.random.default_rng(seed)
        # Draw the finest sample once; coarser levels are prefixes, so
        # the levels are nested by construction.
        finest = rng.choice(n, level_sizes[-1], replace=False)
        graphs, rows = [], []
        for size in level_sizes:
            subset = finest[:size]
            rows.append(subset)
            graphs.append(DelaunayGraph(points[subset]))
        return DelaunayPyramid(graphs, rows)

    @property
    def num_levels(self) -> int:
        """Number of resolution levels."""
        return len(self.graphs)

    def level(self, index: int) -> DelaunayGraph:
        """The graph at a 0-based level (0 = coarsest)."""
        return self.graphs[index]

    def is_nested(self) -> bool:
        """Whether every coarser seed set is a subset of the finer ones."""
        for coarse, fine in zip(self.sample_rows, self.sample_rows[1:]):
            if not set(coarse.tolist()) <= set(fine.tolist()):
                return False
        return True

    def edges_in_view(self, level: int, view: Box) -> int:
        """Edges with an endpoint inside the view at a level."""
        graph = self.graphs[level]
        edges = graph.edges()
        if len(edges) == 0:
            return 0
        a_in = view.contains_points(graph.seeds[edges[:, 0]])
        b_in = view.contains_points(graph.seeds[edges[:, 1]])
        return int(np.count_nonzero(a_in | b_in))

    def level_for_view(self, view: Box, target_edges: int) -> int:
        """The §5.2 rule: coarsest level showing >= target edges.

        Falls through to the finest level when even it cannot satisfy
        the target (a deep zoom into sparse space).
        """
        for index in range(self.num_levels):
            if self.edges_in_view(index, view) >= target_edges:
                return index
        return self.num_levels - 1
