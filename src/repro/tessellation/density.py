"""Voronoi-volume density estimation.

"Because the volume of the cells is inversely proportional to the local
density (of data points) it can be used for finding clusters and
outliers" (§3.4), and the planned full-tessellation application is "to
use the inverse of the Voronoi cells' volume as a density estimator ...
a highly detailed, parameter-free density map of the entire magnitude
space".

Computing exact Voronoi cell volumes in 5-D is expensive; the standard
astronomy estimator (Ascasibar & Binney 2005, the paper's reference [1])
splits every Delaunay simplex's volume equally among its ``d + 1``
vertices.  The estimates are exact in aggregate -- they sum to the hull
volume -- and proportional to true cell volumes up to boundary effects,
which is all the density-based applications (BST clustering, outlier
detection) need.
"""

from __future__ import annotations

import math

import numpy as np

from repro.tessellation.delaunay import DelaunayGraph

__all__ = ["simplex_volumes", "voronoi_volume_estimates", "density_from_volumes"]


def simplex_volumes(vertices: np.ndarray, simplices: np.ndarray) -> np.ndarray:
    """Volumes of simplices over a vertex array.

    Volume of the simplex ``v_0 .. v_d`` is ``|det(v_i - v_0)| / d!``.
    """
    vertices = np.asarray(vertices, dtype=np.float64)
    simplices = np.asarray(simplices, dtype=np.int64)
    dim = vertices.shape[1]
    base = vertices[simplices[:, 0]]
    edges = vertices[simplices[:, 1:]] - base[:, np.newaxis, :]
    dets = np.linalg.det(edges)
    return np.abs(dets) / math.factorial(dim)


def voronoi_volume_estimates(graph: DelaunayGraph) -> np.ndarray:
    """Per-seed Voronoi cell volume estimates (simplex-share rule).

    Each simplex contributes ``volume / (d + 1)`` to each of its vertices.
    Hull seeds with unbounded cells receive only the bounded share; callers
    that need conservative behaviour should mask with
    :meth:`repro.tessellation.voronoi.VoronoiCells.bounded_mask`.
    """
    volumes = simplex_volumes(graph.seeds, graph.simplices)
    shares = np.zeros(graph.num_seeds)
    weight = 1.0 / (graph.dim + 1)
    for simplex, volume in zip(graph.simplices, volumes):
        shares[simplex] += volume * weight
    return shares


def density_from_volumes(
    volumes: np.ndarray, counts: np.ndarray | None = None
) -> np.ndarray:
    """Densities = (points per cell) / cell volume.

    With ``counts`` omitted each cell counts its own seed only (density
    of the seed sample itself); passing per-cell data-point counts gives
    the density of the full dataset, which is what the Basin Spanning
    Tree (§4) and outlier detection consume.  Zero-volume cells get the
    maximum finite density rather than infinity.
    """
    volumes = np.asarray(volumes, dtype=np.float64)
    if counts is None:
        counts = np.ones_like(volumes)
    counts = np.asarray(counts, dtype=np.float64)
    if counts.shape != volumes.shape:
        raise ValueError("counts and volumes must align")
    with np.errstate(divide="ignore", invalid="ignore"):
        density = counts / volumes
    finite = density[np.isfinite(density)]
    ceiling = float(finite.max()) if len(finite) else 1.0
    density[~np.isfinite(density)] = ceiling
    return density
