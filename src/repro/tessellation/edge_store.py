"""Persisting the Delaunay triangulation inside the database.

§3.4's future-work plan, verbatim: "A possible solution is to store only
the edges of the Delaunay triangulation, which is a much more compact
description: we estimate that the Delaunay triangulation can be stored
in 270GB" (vs terabytes for the full tessellation with vertices).

:class:`DelaunayEdgeStore` realizes that design at our scale: the seed
coordinates and the (directed) edge list live in engine tables, edges
clustered by source seed so a cell's neighbor list is one contiguous
range scan.  Point location (the directed walk) then runs *against the
stored structure*, touching only the pages of the cells the walk crosses
-- which is exactly what makes the full-table tessellation usable
out-of-core.

What edges alone cannot give you is exact cell volumes (those need the
simplices); :meth:`approximate_volumes` provides the standard
neighbor-distance proxy, adequate for density ranking (E13 measures how
adequate).
"""

from __future__ import annotations

import math

import numpy as np

from repro.db.catalog import Database
from repro.db.scan import range_scan
from repro.db.stats import QueryStats
from repro.db.table import Table
from repro.tessellation.delaunay import DelaunayGraph, WalkResult

__all__ = ["DelaunayEdgeStore"]


class DelaunayEdgeStore:
    """A Delaunay graph persisted as two engine tables.

    ``<name>_seeds``: one row per seed -- ``seed_id`` plus coordinate
    columns ``c0..c{d-1}``, clustered by ``seed_id``.
    ``<name>_edges``: one row per *directed* edge -- ``(src, dst)``,
    clustered by ``src`` so each neighbor list is a contiguous range.
    """

    def __init__(
        self,
        database: Database,
        seeds_table: Table,
        edges_table: Table,
        neighbor_ranges: np.ndarray,
        dim: int,
    ):
        self._db = database
        self._seeds_table = seeds_table
        self._edges_table = edges_table
        self._neighbor_ranges = neighbor_ranges
        self.dim = dim

    # -- persistence -----------------------------------------------------------

    @staticmethod
    def save(database: Database, name: str, graph: DelaunayGraph) -> "DelaunayEdgeStore":
        """Write a graph's seeds and edges into engine tables."""
        num_seeds = graph.num_seeds
        seed_data: dict[str, np.ndarray] = {
            "seed_id": np.arange(num_seeds, dtype=np.int64)
        }
        for axis in range(graph.dim):
            seed_data[f"c{axis}"] = graph.seeds[:, axis]
        seeds_table = database.create_table(
            f"{name}_seeds", seed_data, clustered_by=("seed_id",)
        )
        undirected = graph.edges()
        directed = np.vstack([undirected, undirected[:, ::-1]])
        edges_table = database.create_table(
            f"{name}_edges",
            {
                "src": directed[:, 0],
                "dst": directed[:, 1],
            },
            clustered_by=("src", "dst"),
        )
        ranges = _neighbor_ranges(edges_table, num_seeds)
        store = DelaunayEdgeStore(database, seeds_table, edges_table, ranges, graph.dim)
        database.register_index(f"{name}.delaunay_edges", store)
        return store

    @staticmethod
    def open(database: Database, name: str) -> "DelaunayEdgeStore":
        """Re-open a previously saved store from its tables."""
        seeds_table = database.table(f"{name}_seeds")
        edges_table = database.table(f"{name}_edges")
        dim = sum(1 for column in seeds_table.column_names if column.startswith("c"))
        ranges = _neighbor_ranges(edges_table, seeds_table.num_rows)
        return DelaunayEdgeStore(database, seeds_table, edges_table, ranges, dim)

    # -- structure access (I/O-counted) ---------------------------------------------

    @property
    def num_seeds(self) -> int:
        """Number of stored seeds."""
        return self._seeds_table.num_rows

    @property
    def num_directed_edges(self) -> int:
        """Number of stored directed edges (2x the undirected count)."""
        return self._edges_table.num_rows

    def seed_point(self, seed: int, stats: QueryStats | None = None) -> np.ndarray:
        """Coordinates of one seed, read through the engine."""
        rows, read_stats = range_scan(self._seeds_table, seed, seed + 1)
        if stats is not None:
            stats.merge(read_stats)
        return np.array([rows[f"c{axis}"][0] for axis in range(self.dim)])

    def seed_points(self, seeds: np.ndarray) -> np.ndarray:
        """Coordinates of several seeds (one gather)."""
        rows = self._seeds_table.gather(np.asarray(seeds, dtype=np.int64))
        return np.column_stack([rows[f"c{axis}"] for axis in range(self.dim)])

    def neighbors(self, seed: int, stats: QueryStats | None = None) -> np.ndarray:
        """Neighbor seed ids of one seed: a clustered range scan."""
        start, end = self._neighbor_ranges[seed]
        if start == end:
            return np.empty(0, dtype=np.int64)
        rows, read_stats = range_scan(self._edges_table, int(start), int(end))
        if stats is not None:
            stats.merge(read_stats)
        return rows["dst"]

    def degrees(self) -> np.ndarray:
        """Neighbor counts of every seed (from the range index, no I/O)."""
        return (self._neighbor_ranges[:, 1] - self._neighbor_ranges[:, 0]).astype(
            np.int64
        )

    # -- algorithms over the stored structure ---------------------------------------

    def directed_walk(
        self, point: np.ndarray, start: int = 0
    ) -> tuple[WalkResult, QueryStats]:
        """Greedy walk to the nearest seed, reading the graph from disk.

        Returns the walk plus the I/O it cost -- the measurement that
        shows a full-table tessellation is navigable out-of-core.
        """
        point = np.asarray(point, dtype=np.float64)
        stats = QueryStats()
        current = int(start)
        current_point = self.seed_point(current, stats)
        current_dist = float(np.sum((current_point - point) ** 2))
        path = [current]
        hops = 0
        while True:
            neighbor_ids = self.neighbors(current, stats)
            if len(neighbor_ids) == 0:
                break
            neighbor_points = self.seed_points(neighbor_ids)
            dists = np.einsum(
                "ij,ij->i", neighbor_points - point, neighbor_points - point
            )
            best = int(np.argmin(dists))
            if dists[best] >= current_dist:
                break
            current = int(neighbor_ids[best])
            current_dist = float(dists[best])
            path.append(current)
            hops += 1
        return WalkResult(seed=current, hops=hops, path=path), stats

    def approximate_volumes(self) -> np.ndarray:
        """Cell-volume proxy from mean neighbor distance.

        A cell with mean Delaunay-neighbor distance r has volume on the
        order of the d-ball of radius r/2; the constant cancels in any
        density *ranking*, which is all the BST and outlier applications
        consume.  Exact volumes require the simplices the edge store
        deliberately does not keep.
        """
        seeds = self.seed_points(np.arange(self.num_seeds))
        volumes = np.empty(self.num_seeds)
        unit_ball = math.pi ** (self.dim / 2.0) / math.gamma(self.dim / 2.0 + 1.0)
        for seed in range(self.num_seeds):
            neighbor_ids = self.neighbors(seed)
            if len(neighbor_ids) == 0:
                volumes[seed] = np.inf
                continue
            neighbor_points = self.seed_points(neighbor_ids)
            mean_dist = float(
                np.mean(np.linalg.norm(neighbor_points - seeds[seed], axis=1))
            )
            volumes[seed] = unit_ball * (mean_dist / 2.0) ** self.dim
        return volumes

    def storage_bytes(self) -> dict[str, int]:
        """On-disk footprint of the stored structure, per table.

        The comparison behind the paper's 270 GB estimate: edges cost
        O(#edges * 16 bytes) while the full tessellation with vertices
        costs orders of magnitude more in high dimension (each 5-D cell
        has ~1000 vertices of 5 float64s).
        """
        edge_bytes = self._edges_table.num_rows * 2 * 8
        seed_bytes = self._seeds_table.num_rows * (self.dim + 1) * 8
        return {
            "seeds": seed_bytes,
            "edges": edge_bytes,
            "total": seed_bytes + edge_bytes,
        }


def _neighbor_ranges(edges_table: Table, num_seeds: int) -> np.ndarray:
    """Row range per source seed in the clustered edge table."""
    src = edges_table.read_column("src")
    ranges = np.zeros((num_seeds, 2), dtype=np.int64)
    if len(src) == 0:
        return ranges
    change = np.flatnonzero(np.diff(src) != 0) + 1
    starts = np.concatenate([[0], change])
    ends = np.concatenate([change, [len(src)]])
    for start, end in zip(starts, ends):
        ranges[int(src[start])] = (start, end)
    return ranges
