"""Voronoi / Delaunay substrate (§3.4).

The paper computes the 5-D Voronoi tessellation of a 10K seed sample with
QHull; ``scipy.spatial`` wraps the same QHull library, and everything
above it -- the Delaunay neighbor graph, the directed-walk point location,
cell shape statistics, circumcenter vertices and the cell-volume density
estimator -- is implemented here.
"""

from repro.tessellation.delaunay import DelaunayGraph, WalkResult
from repro.tessellation.edge_store import DelaunayEdgeStore
from repro.tessellation.pyramid import DelaunayPyramid
from repro.tessellation.voronoi import VoronoiCells
from repro.tessellation.density import (
    density_from_volumes,
    simplex_volumes,
    voronoi_volume_estimates,
)

__all__ = [
    "DelaunayGraph",
    "DelaunayEdgeStore",
    "DelaunayPyramid",
    "WalkResult",
    "VoronoiCells",
    "simplex_volumes",
    "voronoi_volume_estimates",
    "density_from_volumes",
]
