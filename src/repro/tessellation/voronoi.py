"""Voronoi cell geometry and shape statistics.

The Voronoi diagram is the dual of the Delaunay triangulation: the cell
of seed *i* has one vertex per Delaunay simplex incident to *i* (the
simplex's circumcenter) and one face per Delaunay neighbor.  This module
derives the cell statistics the paper reports -- "Voronoi cells in five
dimensions tend to have about a thousand vertices compared to the 32 for
5D hyper-rectangles and 50 neighboring cells ('faces') compared to 10 for
hyper-rectangles" -- directly from the Delaunay structure, which works in
any dimension without materializing cell polytopes.
"""

from __future__ import annotations

import numpy as np

from repro.tessellation.delaunay import DelaunayGraph

__all__ = ["VoronoiCells"]


class VoronoiCells:
    """Per-seed Voronoi cell statistics over a Delaunay graph."""

    def __init__(self, graph: DelaunayGraph):
        self.graph = graph
        self._incident_counts = self._count_incident_simplices()
        self._hull_seeds = self._hull_seed_mask()

    def _count_incident_simplices(self) -> np.ndarray:
        counts = np.zeros(self.graph.num_seeds, dtype=np.int64)
        for simplex in self.graph.simplices:
            counts[simplex] += 1
        return counts

    def _hull_seed_mask(self) -> np.ndarray:
        """Seeds on the convex hull have unbounded Voronoi cells."""
        mask = np.zeros(self.graph.num_seeds, dtype=bool)
        hull = self.graph._tri.convex_hull
        mask[np.unique(hull)] = True
        return mask

    @property
    def num_cells(self) -> int:
        """One cell per seed."""
        return self.graph.num_seeds

    def is_bounded(self, seed: int) -> bool:
        """Whether the cell of a seed is a bounded polytope."""
        return not bool(self._hull_seeds[seed])

    def bounded_mask(self) -> np.ndarray:
        """Boolean mask of seeds with bounded cells."""
        return ~self._hull_seeds

    def vertex_counts(self) -> np.ndarray:
        """Voronoi vertex count per cell (incident Delaunay simplices).

        For unbounded (hull) cells this counts the finite vertices only.
        """
        return self._incident_counts.copy()

    def face_counts(self) -> np.ndarray:
        """Face (= Delaunay neighbor) count per cell."""
        return self.graph.degrees()

    def cell_vertices(self, seed: int) -> np.ndarray:
        """Finite vertex coordinates of one cell (incident circumcenters)."""
        centers, _ = self.graph.circumcenters()
        incident = np.any(self.graph.simplices == seed, axis=1)
        verts = centers[incident]
        return verts[np.all(np.isfinite(verts), axis=1)]

    def geometric_radii(self) -> np.ndarray:
        """Max seed-to-vertex distance per cell; inf for unbounded cells.

        This is the true circumscribed radius of each bounded cell and a
        sound enclosing-ball radius for the index's INSIDE/OUTSIDE cell
        classification.
        """
        centers, _ = self.graph.circumcenters()
        radii = np.zeros(self.graph.num_seeds)
        for idx, simplex in enumerate(self.graph.simplices):
            center = centers[idx]
            if not np.all(np.isfinite(center)):
                continue
            for seed in simplex:
                dist = float(np.linalg.norm(center - self.graph.seeds[seed]))
                if dist > radii[seed]:
                    radii[seed] = dist
        radii[self._hull_seeds] = np.inf
        return radii

    def roundness_report(self) -> dict[str, float]:
        """The E5 summary: interior-cell vertex/face counts vs hyper-boxes.

        Hyper-rectangles in d dimensions have ``2^d`` vertices and ``2d``
        faces; the comparison quantifies the paper's observation that
        Voronoi cells are far "rounder".
        """
        interior = self.bounded_mask()
        vertices = self.vertex_counts()[interior]
        faces = self.face_counts()[interior]
        dim = self.graph.dim
        return {
            "dim": float(dim),
            "interior_cells": float(interior.sum()),
            "mean_vertices": float(vertices.mean()) if len(vertices) else 0.0,
            "median_vertices": float(np.median(vertices)) if len(vertices) else 0.0,
            "mean_faces": float(faces.mean()) if len(faces) else 0.0,
            "median_faces": float(np.median(faces)) if len(faces) else 0.0,
            "box_vertices": float(2**dim),
            "box_faces": float(2 * dim),
        }
