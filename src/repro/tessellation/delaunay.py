"""Delaunay triangulation graph and directed-walk point location.

"To find the containing cell we used a directed walk on the Delaunay
graph, which on average takes O(sqrt(Nseed)) steps" (§3.4).  The walk
exploits a classic property of Delaunay triangulations: greedy routing by
Euclidean distance to the target -- always move to the neighbor closest
to the query -- terminates at the seed nearest the query (there are no
false local minima on a Delaunay graph).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import Delaunay

from repro.geometry.distance import squared_distances

__all__ = ["DelaunayGraph", "WalkResult"]


@dataclass
class WalkResult:
    """Outcome of one directed walk."""

    seed: int
    hops: int
    path: list[int]


class DelaunayGraph:
    """The Delaunay triangulation of a seed set, as an adjacency graph.

    Parameters
    ----------
    seeds:
        ``(n, d)`` seed coordinates with ``n >= d + 2`` in general
        position (QHull joggles degenerate inputs via the ``QJ`` option).
    """

    def __init__(self, seeds: np.ndarray):
        seeds = np.asarray(seeds, dtype=np.float64)
        if seeds.ndim != 2:
            raise ValueError("seeds must be (n, d)")
        n, dim = seeds.shape
        if n < dim + 2:
            raise ValueError(f"need at least d + 2 = {dim + 2} seeds, got {n}")
        self.seeds = seeds
        self.dim = dim
        self._tri = Delaunay(seeds, qhull_options="QJ Qbb")
        self._neighbors = self._adjacency_from_simplices(self._tri.simplices, n)

    @staticmethod
    def _adjacency_from_simplices(
        simplices: np.ndarray, num_seeds: int
    ) -> list[np.ndarray]:
        adjacency: list[set[int]] = [set() for _ in range(num_seeds)]
        for simplex in simplices:
            for a in simplex:
                for b in simplex:
                    if a != b:
                        adjacency[a].add(int(b))
        return [np.fromiter(sorted(s), dtype=np.int64) for s in adjacency]

    # -- structure -------------------------------------------------------------

    @property
    def num_seeds(self) -> int:
        """Number of seeds."""
        return len(self.seeds)

    @property
    def simplices(self) -> np.ndarray:
        """Delaunay simplices as ``(m, d+1)`` seed-index rows."""
        return self._tri.simplices

    def neighbors(self, seed: int) -> np.ndarray:
        """Delaunay-adjacent seed indices (= Voronoi face neighbors)."""
        return self._neighbors[seed]

    def degree(self, seed: int) -> int:
        """Number of Delaunay neighbors of a seed."""
        return len(self._neighbors[seed])

    def degrees(self) -> np.ndarray:
        """All seed degrees; this is the paper's 'number of faces' metric."""
        return np.array([len(nbrs) for nbrs in self._neighbors], dtype=np.int64)

    def num_edges(self) -> int:
        """Undirected Delaunay edge count."""
        return int(self.degrees().sum()) // 2

    def edges(self) -> np.ndarray:
        """Unique undirected edges as an ``(m, 2)`` array of seed indices."""
        pairs = []
        for a, nbrs in enumerate(self._neighbors):
            for b in nbrs:
                if a < b:
                    pairs.append((a, int(b)))
        return np.array(pairs, dtype=np.int64).reshape(-1, 2)

    # -- point location ------------------------------------------------------------

    def directed_walk(self, point: np.ndarray, start: int | None = None) -> WalkResult:
        """Greedy walk to the seed nearest ``point``.

        Starting from ``start`` (or seed 0), repeatedly hop to the
        neighbor strictly closer to the query; a seed with no closer
        neighbor is the global nearest seed.
        """
        point = np.asarray(point, dtype=np.float64)
        current = 0 if start is None else int(start)
        if not (0 <= current < self.num_seeds):
            raise IndexError(f"start seed {current} out of range")
        path = [current]
        current_dist = float(np.sum((self.seeds[current] - point) ** 2))
        hops = 0
        while True:
            nbrs = self._neighbors[current]
            if len(nbrs) == 0:
                break
            dists = squared_distances(self.seeds[nbrs], point)
            best = int(np.argmin(dists))
            if dists[best] >= current_dist:
                break
            current = int(nbrs[best])
            current_dist = float(dists[best])
            path.append(current)
            hops += 1
        return WalkResult(seed=current, hops=hops, path=path)

    def nearest_seed_exact(self, point: np.ndarray) -> int:
        """Brute-force nearest seed (ground truth for the walk)."""
        return int(np.argmin(squared_distances(self.seeds, np.asarray(point, float))))

    def circumcenters(self) -> tuple[np.ndarray, np.ndarray]:
        """Circumcenters (= Voronoi vertices) and radii of every simplex.

        For simplex vertices ``v_0 .. v_d`` the circumcenter ``c`` solves
        ``2 (v_i - v_0) . c = |v_i|^2 - |v_0|^2``; nearly degenerate
        simplices (QHull joggle artifacts) get a NaN row.
        """
        simplices = self._tri.simplices
        centers = np.full((len(simplices), self.dim), np.nan)
        radii = np.full(len(simplices), np.nan)
        for idx, simplex in enumerate(simplices):
            verts = self.seeds[simplex]
            a = 2.0 * (verts[1:] - verts[0])
            b = np.sum(verts[1:] ** 2, axis=1) - np.sum(verts[0] ** 2)
            try:
                center = np.linalg.solve(a, b)
            except np.linalg.LinAlgError:
                continue
            centers[idx] = center
            radii[idx] = float(np.linalg.norm(center - verts[0]))
        return centers, radii
