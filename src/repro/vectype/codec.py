"""Vector column codecs: UDT-style pickle vs native binary.

See the package docstring for the §3.5 background.  Both codecs
round-trip ``(n, d)`` float arrays through fixed-width byte rows stored
as a numpy ``S``-dtype column (the engine pages those like any scalar
column); the experiment of E10 measures their decode cost against native
scalar columns during scans.
"""

from __future__ import annotations

import abc
import pickle

import numpy as np

from repro.db.table import Table

__all__ = ["VectorCodec", "UdtPickleCodec", "NativeBinaryCodec", "VectorColumn"]


class VectorCodec(abc.ABC):
    """Encodes float vectors of a fixed dimension into fixed-width bytes."""

    def __init__(self, dim: int):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim

    @property
    @abc.abstractmethod
    def row_bytes(self) -> int:
        """Fixed width of one encoded vector in bytes."""

    @abc.abstractmethod
    def encode_rows(self, vectors: np.ndarray) -> np.ndarray:
        """``(n, dim)`` float64 -> numpy bytes column of width row_bytes."""

    @abc.abstractmethod
    def decode_rows(self, raw: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`encode_rows`."""


class NativeBinaryCodec(VectorCodec):
    """Raw IEEE-754 bytes: the paper's unsafe-copy fast path.

    Encoding is ``ndarray.tobytes`` per row; decoding a whole column is
    one zero-copy ``frombuffer`` + reshape -- the analog of copying a
    SqlBinary into a typed array with pointer arithmetic.
    """

    @property
    def row_bytes(self) -> int:
        return 8 * self.dim

    def encode_rows(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.ascontiguousarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(f"vectors must be (n, {self.dim})")
        return vectors.view(f"S{self.row_bytes}").ravel()

    def decode_rows(self, raw: np.ndarray) -> np.ndarray:
        raw = np.asarray(raw)
        if raw.dtype != np.dtype(f"S{self.row_bytes}"):
            raw = raw.astype(f"S{self.row_bytes}")
        flat = np.frombuffer(raw.tobytes(), dtype=np.float64)
        return flat.reshape(-1, self.dim)


class UdtPickleCodec(VectorCodec):
    """Pickle per row: the BinaryFormatter-backed UDT analog.

    Each vector is serialized independently with :mod:`pickle` and padded
    to a fixed width; decoding unpickles row by row.  Deliberately the
    slow, general mechanism the paper measured and rejected.
    """

    def __init__(self, dim: int):
        super().__init__(dim)
        probe = pickle.dumps(np.zeros(dim), protocol=pickle.HIGHEST_PROTOCOL)
        # Pickles of same-shape float arrays are same-sized; pad a little
        # for safety anyway.
        self._width = len(probe) + 16

    @property
    def row_bytes(self) -> int:
        return self._width

    def encode_rows(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise ValueError(f"vectors must be (n, {self.dim})")
        out = np.empty(len(vectors), dtype=f"S{self._width}")
        for idx, row in enumerate(vectors):
            out[idx] = pickle.dumps(row, protocol=pickle.HIGHEST_PROTOCOL)
        return out

    def decode_rows(self, raw: np.ndarray) -> np.ndarray:
        raw = np.asarray(raw)
        out = np.empty((len(raw), self.dim))
        for idx, blob in enumerate(raw):
            out[idx] = pickle.loads(blob)
        return out


class VectorColumn:
    """A vector-valued column over an engine table.

    Wraps a byte column created by one of the codecs; :meth:`scan`
    iterates pages and decodes each into an ``(page_rows, dim)`` array,
    so E10 can time 'scan with decode' against scanning native scalar
    columns of the same data.
    """

    def __init__(self, table: Table, column: str, codec: VectorCodec):
        self.table = table
        self.column = column
        self.codec = codec

    def scan(self):
        """Yield decoded ``(start_row, vectors)`` per page."""
        for page in self.table.scan():
            yield page.start_row, self.codec.decode_rows(page.columns[self.column])

    def read_all(self) -> np.ndarray:
        """Materialize every vector (touches every page)."""
        parts = [vectors for _, vectors in self.scan()]
        if not parts:
            return np.empty((0, self.codec.dim))
        return np.vstack(parts)
