"""Vector data type for multidimensional columns (§3.5).

The paper wanted one column holding a whole vector (e.g. a 5-D feature
vector or a 3000-sample spectrum) instead of d scalar columns, and found
that SQL Server's CLR UDTs -- which serialize through BinaryFormatter --
were CPU-bound; their solution was a plain ``binary`` column decoded by
unsafe C# pointer copies, costing only ~20% over native scalar columns.

The Python analog: :class:`UdtPickleCodec` (pickle = the BinaryFormatter
of this world) vs :class:`NativeBinaryCodec` (raw ``tobytes`` /
``frombuffer`` = the unsafe copy).  :class:`VectorColumn` stores vectors
in fixed-width byte rows that page into the engine like any other column.
"""

from repro.vectype.codec import (
    NativeBinaryCodec,
    UdtPickleCodec,
    VectorCodec,
    VectorColumn,
)

__all__ = [
    "VectorCodec",
    "UdtPickleCodec",
    "NativeBinaryCodec",
    "VectorColumn",
]
