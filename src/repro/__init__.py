"""repro: spatial indexing of large multidimensional databases.

A faithful, self-contained reproduction of Csabai et al., *Spatial
Indexing of Large Multidimensional Databases* (CIDR 2007): in-database
multidimensional spatial indexes (layered uniform grid, balanced
post-order kd-tree, sampled Voronoi tessellation), the boundary-point
k-NN search, the scientific applications built on them (basin spanning
tree clustering, k-NN photometric redshifts, spectral similarity
search), and the adaptive visualization pipeline -- all over a small
paged column-store engine with page-level I/O accounting.

Quickstart::

    import numpy as np
    from repro import Database, KdTreeIndex, Polyhedron, sdss_color_sample

    sample = sdss_color_sample(100_000, seed=1)
    db = Database.in_memory()
    index = KdTreeIndex.build(
        db, "magnitudes", sample.columns(), dims=["u", "g", "r", "i", "z"]
    )
    rows, stats = index.query_box(some_box)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.db import (
    Col,
    CorruptPageError,
    Database,
    FaultInjector,
    FaultyStorage,
    LoggedStorage,
    RetryPolicy,
    StorageFault,
    TransientIOError,
    WriteFault,
    aggregate_scan,
    attach_database,
    count_rows,
    expression_to_polyhedron,
    full_scan,
    parse_where,
    save_catalog,
)
from repro.geometry import Box, Halfspace, Polyhedron, Whitener
from repro.archive import SimilarSpectrum, SpectrumArchive
from repro.core import (
    KdTree,
    QueryPlanner,
    RTreeIndex,
    KdTreeIndex,
    KnnResult,
    LayeredGridIndex,
    TableSampleBaseline,
    VoronoiIndex,
    ball_polyhedron,
    ball_query,
    hybrid_query,
    linear_relaxations,
    knn_best_first,
    knn_boundary_points,
    knn_brute_force,
    polyhedron_full_scan,
    selectivity,
)
from repro.tessellation import (
    DelaunayEdgeStore,
    DelaunayGraph,
    DelaunayPyramid,
    VoronoiCells,
    density_from_volumes,
    voronoi_volume_estimates,
)
from repro.datasets import (
    FilterBank,
    GaussianMixtureField,
    PhotozDataset,
    QueryWorkload,
    SdssSample,
    SkySample,
    SpectrumTemplates,
    sky_survey_sample,
    make_photoz_dataset,
    sdss_color_sample,
)
from repro.ml import (
    ConvexHullSelector,
    KnnClassifier,
    KdTreeOutlierDetector,
    KnnPolyRedshiftEstimator,
    VoronoiOutlierDetector,
    PrincipalComponents,
    TemplateFitEstimator,
    basin_spanning_tree,
    cluster_class_agreement,
    clusters_from_parents,
    merge_small_clusters,
    smooth_densities,
    regression_report,
    retrieval_precision,
)
from repro.service import (
    AdmissionRejected,
    Deadline,
    DeadlineExceeded,
    QueryFault,
    QueryService,
    ReplayReport,
    replay_workload,
)
from repro.shard import (
    KdPartitioner,
    ScatterGatherExecutor,
    Shard,
    ShardRouter,
    ShardSet,
    ShardSpec,
    ShardedKnnResult,
    build_shard,
    scatter_gather_knn,
)
from repro.net import (
    QueryClient,
    QueryServer,
    ShardWorkerPool,
    WorkerDied,
    replay_over_network,
)
from repro.ingest import (
    DELTA_BASE,
    DeltaTier,
    IngestManager,
    IngestWal,
    MergeDaemon,
    MergeReport,
    merge_table,
)
from repro.bitmap import BitmapIndex, CompressedBitmap
from repro.vectype import NativeBinaryCodec, UdtPickleCodec, VectorColumn
from repro.viz import (
    AdaptivePointCloudProducer,
    ClipBoxPipe,
    ColorByDensityPipe,
    SubsamplePipe,
    Camera,
    DelaunayEdgeProducer,
    ExportConsumer,
    GeometrySet,
    KdBoxProducer,
    PluginHost,
    RecordingConsumer,
    VoronoiCellProducer,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # engine
    "Database",
    "Col",
    "full_scan",
    "expression_to_polyhedron",
    "LoggedStorage",
    "parse_where",
    "save_catalog",
    "attach_database",
    # ingest (the write path)
    "DELTA_BASE",
    "DeltaTier",
    "IngestManager",
    "IngestWal",
    "MergeDaemon",
    "MergeReport",
    "merge_table",
    # faults & recovery
    "StorageFault",
    "TransientIOError",
    "CorruptPageError",
    "WriteFault",
    "FaultInjector",
    "FaultyStorage",
    "RetryPolicy",
    # geometry
    "Box",
    "Halfspace",
    "Polyhedron",
    "Whitener",
    # indexes
    "KdTree",
    "KdTreeIndex",
    "LayeredGridIndex",
    "TableSampleBaseline",
    "VoronoiIndex",
    "KnnResult",
    "knn_boundary_points",
    "knn_best_first",
    "knn_brute_force",
    "ball_polyhedron",
    "ball_query",
    "hybrid_query",
    "linear_relaxations",
    "polyhedron_full_scan",
    "selectivity",
    "QueryPlanner",
    "RTreeIndex",
    "BitmapIndex",
    "CompressedBitmap",
    "ConvexHullSelector",
    "KnnClassifier",
    "aggregate_scan",
    "count_rows",
    "SpectrumArchive",
    "SimilarSpectrum",
    "KdTreeOutlierDetector",
    "VoronoiOutlierDetector",
    # tessellation
    "DelaunayGraph",
    "DelaunayEdgeStore",
    "DelaunayPyramid",
    "VoronoiCells",
    "voronoi_volume_estimates",
    "density_from_volumes",
    # datasets
    "SdssSample",
    "sdss_color_sample",
    "GaussianMixtureField",
    "SkySample",
    "sky_survey_sample",
    "SpectrumTemplates",
    "FilterBank",
    "PhotozDataset",
    "make_photoz_dataset",
    "QueryWorkload",
    # query service
    "QueryService",
    "Deadline",
    "DeadlineExceeded",
    "AdmissionRejected",
    "QueryFault",
    "ReplayReport",
    "replay_workload",
    # sharded execution
    "KdPartitioner",
    "Shard",
    "ShardSet",
    "ShardSpec",
    "ShardRouter",
    "ScatterGatherExecutor",
    "ShardedKnnResult",
    "build_shard",
    "scatter_gather_knn",
    # networked execution
    "ShardWorkerPool",
    "WorkerDied",
    "QueryServer",
    "QueryClient",
    "replay_over_network",
    # analysis
    "PrincipalComponents",
    "KnnPolyRedshiftEstimator",
    "TemplateFitEstimator",
    "basin_spanning_tree",
    "clusters_from_parents",
    "merge_small_clusters",
    "smooth_densities",
    "cluster_class_agreement",
    "regression_report",
    "retrieval_precision",
    # vector type
    "NativeBinaryCodec",
    "UdtPickleCodec",
    "VectorColumn",
    # visualization
    "Camera",
    "GeometrySet",
    "PluginHost",
    "AdaptivePointCloudProducer",
    "KdBoxProducer",
    "DelaunayEdgeProducer",
    "VoronoiCellProducer",
    "RecordingConsumer",
    "SubsamplePipe",
    "ClipBoxPipe",
    "ColorByDensityPipe",
    "ExportConsumer",
]
