"""Axis-aligned boxes in arbitrary dimension.

Boxes are the work-horse of the kd-tree index (every node owns one) and of
the layered uniform grid (query boxes, grid cells).  A box is a closed
product of intervals ``[lo_i, hi_i]``.  All coordinates are stored as
float64 numpy arrays; boxes are immutable value objects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Box", "BoxRelation"]


class BoxRelation(enum.Enum):
    """Classification of one region against another.

    Mirrors the three colors of the paper's Figure 4: cells fully inside
    the query polyhedron (purple) are bulk-returned, cells fully outside
    (empty) are rejected, and partially covered cells (red) need a
    per-point residual filter.
    """

    OUTSIDE = "outside"
    PARTIAL = "partial"
    INSIDE = "inside"


@dataclass(frozen=True)
class Box:
    """A closed axis-aligned box ``[lo, hi]`` in d dimensions.

    Parameters
    ----------
    lo, hi:
        Arrays of shape ``(d,)`` with ``lo <= hi`` componentwise.
    """

    lo: np.ndarray
    hi: np.ndarray
    _dim: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float64)
        hi = np.asarray(self.hi, dtype=np.float64)
        if lo.ndim != 1 or hi.ndim != 1 or lo.shape != hi.shape:
            raise ValueError("lo and hi must be 1-d arrays of equal length")
        if np.any(lo > hi):
            raise ValueError(f"box has lo > hi: lo={lo}, hi={hi}")
        lo.setflags(write=False)
        hi.setflags(write=False)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "_dim", lo.shape[0])

    # -- constructors ---------------------------------------------------

    @staticmethod
    def from_points(points: np.ndarray, pad: float = 0.0) -> "Box":
        """Bounding box of a point set, optionally padded on every side."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        return Box(points.min(axis=0) - pad, points.max(axis=0) + pad)

    @staticmethod
    def unit(dim: int) -> "Box":
        """The unit cube ``[0, 1]^dim``."""
        return Box(np.zeros(dim), np.ones(dim))

    @staticmethod
    def cube(center: np.ndarray, half_width: float) -> "Box":
        """Axis-aligned cube of side ``2 * half_width`` around ``center``."""
        center = np.asarray(center, dtype=np.float64)
        return Box(center - half_width, center + half_width)

    # -- basic properties -----------------------------------------------

    @property
    def dim(self) -> int:
        """Dimensionality of the box."""
        return self._dim

    @property
    def center(self) -> np.ndarray:
        """Geometric center of the box."""
        return (self.lo + self.hi) / 2.0

    @property
    def widths(self) -> np.ndarray:
        """Side lengths along each axis."""
        return self.hi - self.lo

    @property
    def volume(self) -> float:
        """Product of the side lengths."""
        return float(np.prod(self.widths))

    @property
    def elongation(self) -> float:
        """Longest-to-shortest side ratio (inf for degenerate boxes).

        The paper notes that kd-tree boxes over the SDSS distribution tend
        to be very elongated, unlike the "round" Voronoi cells; this metric
        quantifies that (E5).
        """
        widths = self.widths
        shortest = widths.min()
        if shortest <= 0.0:
            return float("inf")
        return float(widths.max() / shortest)

    # -- predicates ------------------------------------------------------

    def contains_point(self, point: np.ndarray) -> bool:
        """Whether ``point`` lies in the closed box."""
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(point >= self.lo) and np.all(point <= self.hi))

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorized membership mask for an ``(n, d)`` point array."""
        points = np.asarray(points, dtype=np.float64)
        return np.all((points >= self.lo) & (points <= self.hi), axis=1)

    def contains_box(self, other: "Box") -> bool:
        """Whether ``other`` lies entirely inside this box."""
        return bool(np.all(other.lo >= self.lo) and np.all(other.hi <= self.hi))

    def intersects(self, other: "Box") -> bool:
        """Whether the closed boxes share at least one point."""
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def relation_to(self, other: "Box") -> BoxRelation:
        """Classify *this* box against ``other``.

        ``INSIDE`` means self is fully contained in other, ``OUTSIDE``
        means they are disjoint, ``PARTIAL`` otherwise.
        """
        if not self.intersects(other):
            return BoxRelation.OUTSIDE
        if other.contains_box(self):
            return BoxRelation.INSIDE
        return BoxRelation.PARTIAL

    # -- algebra ----------------------------------------------------------

    def intersection(self, other: "Box") -> "Box | None":
        """The overlap box, or ``None`` when the boxes are disjoint."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        if np.any(lo > hi):
            return None
        return Box(lo, hi)

    def union_bounds(self, other: "Box") -> "Box":
        """Smallest box enclosing both operands."""
        return Box(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def expanded(self, pad: float) -> "Box":
        """Box grown by ``pad`` on every side (may shrink if pad < 0)."""
        return Box(self.lo - pad, self.hi + pad)

    def split(self, axis: int, value: float) -> "tuple[Box, Box]":
        """Split into (low side, high side) at ``value`` along ``axis``.

        Both halves are closed and share the cut plane, matching the
        closed-box semantics the kd-tree uses (a point exactly on the
        median plane is assigned to exactly one side by the *builder*, but
        geometric routines treat both halves as closed).

        A cut that lands epsilon-outside ``[lo, hi]`` (e.g. ``lo + 1.0 *
        (hi - lo)`` overshooting ``hi`` in floating point over
        near-duplicate coordinates) is clamped into the extent before
        validation and degrades to a degenerate split; cuts genuinely
        outside the extent still raise ``ValueError``.
        """
        lo_edge, hi_edge = float(self.lo[axis]), float(self.hi[axis])
        tolerance = 1e-9 * max(1.0, abs(lo_edge), abs(hi_edge))
        if lo_edge - tolerance <= value <= hi_edge + tolerance:
            value = float(np.clip(value, lo_edge, hi_edge))
        if not (lo_edge <= value <= hi_edge):
            raise ValueError(
                f"cut {value} outside box extent "
                f"[{lo_edge}, {hi_edge}] on axis {axis}"
            )
        lo_hi = self.hi.copy()
        lo_hi[axis] = value
        hi_lo = self.lo.copy()
        hi_lo[axis] = value
        return Box(self.lo, lo_hi), Box(hi_lo, self.hi)

    # -- distances --------------------------------------------------------

    def min_distance_to_point(self, point: np.ndarray) -> float:
        """Euclidean distance from ``point`` to the nearest point of the box.

        Zero when the point is inside.  This is the classic kd-tree
        pruning bound.
        """
        point = np.asarray(point, dtype=np.float64)
        delta = np.maximum(self.lo - point, 0.0)
        delta = np.maximum(delta, point - self.hi)
        return float(np.sqrt(np.dot(delta, delta)))

    def max_distance_to_point(self, point: np.ndarray) -> float:
        """Distance from ``point`` to the farthest corner of the box."""
        point = np.asarray(point, dtype=np.float64)
        delta = np.maximum(np.abs(point - self.lo), np.abs(point - self.hi))
        return float(np.sqrt(np.dot(delta, delta)))

    # -- corners and faces --------------------------------------------------

    def corners(self) -> np.ndarray:
        """All ``2^d`` corner points, shape ``(2**d, d)``.

        Only sensible for small d (the kd-tree boundary-point k-NN uses
        this on 3-5 dimensional boxes; 2^5 = 32 corners).
        """
        d = self.dim
        if d > 16:
            raise ValueError("corner enumeration is exponential; d too large")
        bounds = np.stack([self.lo, self.hi])  # (2, d)
        grid = np.indices((2,) * d).reshape(d, -1).T  # (2**d, d) of 0/1
        return bounds[grid, np.arange(d)]

    def project_point_to_faces(self, point: np.ndarray) -> np.ndarray:
        """Projections of ``point`` onto each of the ``2d`` face planes.

        Used by the paper's boundary-point k-NN (§3.3): boundary points are
        box vertices plus "the projection of p (along the coordinates)
        onto the faces of the kd-boxes examined".  Each projection clamps
        the point into the box and then pins one coordinate to a face.
        """
        point = np.asarray(point, dtype=np.float64)
        clamped = np.clip(point, self.lo, self.hi)
        projections = np.empty((2 * self.dim, self.dim))
        for axis in range(self.dim):
            low_face = clamped.copy()
            low_face[axis] = self.lo[axis]
            high_face = clamped.copy()
            high_face[axis] = self.hi[axis]
            projections[2 * axis] = low_face
            projections[2 * axis + 1] = high_face
        return projections

    def __str__(self) -> str:
        parts = ", ".join(
            f"[{lo:g}, {hi:g}]" for lo, hi in zip(self.lo, self.hi)
        )
        return f"Box({parts})"
