"""Geometric primitives for multidimensional spatial indexing.

This package provides the geometry substrate the indexes are built on:

* :mod:`repro.geometry.boxes` -- axis-aligned bounding boxes in any
  dimension, with intersection / containment / distance algebra.
* :mod:`repro.geometry.halfspace` -- halfspaces and convex polyhedra
  (intersections of halfspaces), the query shape of the paper: complex
  SkyServer WHERE clauses are conjunctions of linear inequalities over
  magnitudes, i.e. convex polyhedra in color space.
* :mod:`repro.geometry.sfc` -- space-filling curves (Morton / Z-order and
  Hilbert) used to number Voronoi cells and grid cells so that nearby
  cells land on nearby disk pages.
* :mod:`repro.geometry.distance` -- metrics and the whitening transform
  the paper applies before using the Euclidean metric.
"""

from repro.geometry.boxes import Box, BoxRelation
from repro.geometry.halfspace import Halfspace, Polyhedron
from repro.geometry.sfc import hilbert_index, morton_index, morton_sort_key
from repro.geometry.distance import Whitener, euclidean, minkowski

__all__ = [
    "Box",
    "BoxRelation",
    "Halfspace",
    "Polyhedron",
    "Whitener",
    "euclidean",
    "minkowski",
    "morton_index",
    "morton_sort_key",
    "hilbert_index",
]
