"""Metrics and whitening.

"We use the natural Euclidian metric; after whitening this should give
correct results" (§3.4).  The Voronoi index and the k-NN procedures assume
a meaningful Euclidean distance, which the paper obtains by whitening the
color space (zero mean, unit covariance).  :class:`Whitener` implements
that transform (full ZCA or diagonal standardization).
"""

from __future__ import annotations

import numpy as np

__all__ = ["euclidean", "minkowski", "squared_distances", "Whitener"]


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two points."""
    diff = np.asarray(a, float) - np.asarray(b, float)
    return float(np.sqrt(np.dot(diff, diff)))


def minkowski(a: np.ndarray, b: np.ndarray, p: float = 2.0) -> float:
    """Minkowski distance of order ``p`` between two points."""
    if p <= 0:
        raise ValueError("p must be positive")
    diff = np.abs(np.asarray(a, float) - np.asarray(b, float))
    if np.isinf(p):
        return float(diff.max())
    return float(np.sum(diff**p) ** (1.0 / p))


def squared_distances(points: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances from every row of ``points`` to ``query``.

    Kept squared so k-NN inner loops avoid the sqrt until the end.
    """
    diff = np.asarray(points, float) - np.asarray(query, float)
    return np.einsum("ij,ij->i", diff, diff)


class Whitener:
    """Affine whitening transform fit on a sample.

    Parameters
    ----------
    mode:
        ``"zca"`` whitens with the inverse principal square root of the
        covariance (rotation-free whitening); ``"std"`` only standardizes
        each axis (divide by standard deviation), which preserves axis
        alignment -- useful when downstream structures (grids, kd-trees)
        are axis-aligned.
    """

    def __init__(self, mode: str = "std"):
        if mode not in ("zca", "std"):
            raise ValueError("mode must be 'zca' or 'std'")
        self.mode = mode
        self._mean: np.ndarray | None = None
        self._transform: np.ndarray | None = None
        self._inverse: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._mean is not None

    def fit(self, points: np.ndarray) -> "Whitener":
        """Estimate the transform from a point sample."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] < 2:
            raise ValueError("need an (n >= 2, d) sample to fit")
        self._mean = points.mean(axis=0)
        if self.mode == "std":
            std = points.std(axis=0)
            std[std == 0.0] = 1.0
            self._transform = np.diag(1.0 / std)
            self._inverse = np.diag(std)
        else:
            cov = np.cov(points, rowvar=False)
            cov = np.atleast_2d(cov)
            eigvals, eigvecs = np.linalg.eigh(cov)
            eigvals = np.maximum(eigvals, 1e-12)
            self._transform = eigvecs @ np.diag(eigvals**-0.5) @ eigvecs.T
            self._inverse = eigvecs @ np.diag(eigvals**0.5) @ eigvecs.T
        return self

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Apply the whitening transform to points (any leading shape)."""
        if not self.is_fitted:
            raise RuntimeError("Whitener not fitted")
        points = np.asarray(points, dtype=np.float64)
        return (points - self._mean) @ self._transform.T

    def inverse_transform(self, points: np.ndarray) -> np.ndarray:
        """Map whitened coordinates back to the original space."""
        if not self.is_fitted:
            raise RuntimeError("Whitener not fitted")
        points = np.asarray(points, dtype=np.float64)
        return points @ self._inverse.T + self._mean

    def fit_transform(self, points: np.ndarray) -> np.ndarray:
        """Fit on ``points`` then transform them."""
        return self.fit(points).transform(points)
