"""Halfspaces and convex polyhedra.

The paper's query shapes: "scientific questions are hence transformed into
queries which are hyper planes (linear theories) or curved surfaces
(nonlinear theories).  In practice these can be broken down into polyhedron
queries" (§1).  A :class:`Polyhedron` here is an intersection of closed
halfspaces ``a . x <= b`` -- exactly the form the SkyServer WHERE clauses
of Figure 2 take after moving terms to one side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.boxes import Box, BoxRelation

__all__ = ["Halfspace", "Polyhedron"]


@dataclass(frozen=True)
class Halfspace:
    """The closed halfspace ``normal . x <= offset``."""

    normal: np.ndarray
    offset: float

    def __post_init__(self) -> None:
        normal = np.asarray(self.normal, dtype=np.float64)
        if normal.ndim != 1:
            raise ValueError("normal must be a 1-d array")
        if not np.any(normal != 0.0):
            raise ValueError("normal must be non-zero")
        normal.setflags(write=False)
        object.__setattr__(self, "normal", normal)
        object.__setattr__(self, "offset", float(self.offset))

    @property
    def dim(self) -> int:
        """Ambient dimension."""
        return self.normal.shape[0]

    def contains_point(self, point: np.ndarray) -> bool:
        """Whether ``point`` satisfies ``normal . x <= offset``."""
        return bool(np.dot(self.normal, np.asarray(point, float)) <= self.offset)

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorized membership mask for an ``(n, d)`` array."""
        return np.asarray(points, float) @ self.normal <= self.offset

    def signed_distance(self, point: np.ndarray) -> float:
        """Signed Euclidean distance to the boundary plane (<= 0 inside)."""
        norm = float(np.linalg.norm(self.normal))
        return float(
            (np.dot(self.normal, np.asarray(point, float)) - self.offset) / norm
        )

    def box_extremes(self, box: Box) -> tuple[float, float]:
        """Min and max of ``normal . x`` over the box.

        The extremes are attained at corners; which corner is determined
        per-axis by the sign of the normal component, so this is O(d)
        rather than O(2^d).
        """
        pos = np.maximum(self.normal, 0.0)
        neg = np.minimum(self.normal, 0.0)
        lo_value = float(pos @ box.lo + neg @ box.hi)
        hi_value = float(pos @ box.hi + neg @ box.lo)
        return lo_value, hi_value

    def flipped(self) -> "Halfspace":
        """The complementary closed halfspace ``-normal . x <= -offset``."""
        return Halfspace(-self.normal, -self.offset)


class Polyhedron:
    """A convex polyhedron as an intersection of closed halfspaces.

    This is the query object of the whole system: every index evaluates
    polyhedron queries by classifying its cells against instances of this
    class (Figure 4 of the paper).
    """

    def __init__(self, halfspaces: list[Halfspace]):
        if not halfspaces:
            raise ValueError("a polyhedron needs at least one halfspace")
        dim = halfspaces[0].dim
        for hs in halfspaces:
            if hs.dim != dim:
                raise ValueError("halfspaces must share a dimension")
        self._halfspaces = tuple(halfspaces)
        self._dim = dim
        # Stacked form for vectorized evaluation.
        self._normals = np.stack([hs.normal for hs in halfspaces])
        self._offsets = np.array([hs.offset for hs in halfspaces])

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_box(box: Box) -> "Polyhedron":
        """The box as a polyhedron of ``2 d`` axis-aligned halfspaces."""
        halfspaces = []
        dim = box.dim
        for axis in range(dim):
            unit = np.zeros(dim)
            unit[axis] = 1.0
            halfspaces.append(Halfspace(unit, box.hi[axis]))
            halfspaces.append(Halfspace(-unit, -box.lo[axis]))
        return Polyhedron(halfspaces)

    @staticmethod
    def from_inequalities(normals: np.ndarray, offsets: np.ndarray) -> "Polyhedron":
        """Build from stacked ``A x <= b`` form."""
        normals = np.asarray(normals, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.float64)
        return Polyhedron(
            [Halfspace(normal, offset) for normal, offset in zip(normals, offsets)]
        )

    @staticmethod
    def simplex_around(center: np.ndarray, radius: float) -> "Polyhedron":
        """A regular-ish simplex-shaped polyhedron around a center point.

        Handy for generating non-axis-aligned test queries: d+1 halfspaces
        whose normals are the coordinate axes plus the all-ones diagonal.
        """
        center = np.asarray(center, dtype=np.float64)
        dim = center.shape[0]
        halfspaces = []
        for axis in range(dim):
            unit = np.zeros(dim)
            unit[axis] = -1.0
            halfspaces.append(Halfspace(unit, -(center[axis] - radius)))
        ones = np.ones(dim) / np.sqrt(dim)
        halfspaces.append(Halfspace(ones, float(ones @ center) + radius))
        return Polyhedron(halfspaces)

    # -- properties ---------------------------------------------------------

    @property
    def dim(self) -> int:
        """Ambient dimension."""
        return self._dim

    @property
    def halfspaces(self) -> tuple[Halfspace, ...]:
        """The defining halfspaces."""
        return self._halfspaces

    @property
    def normals(self) -> np.ndarray:
        """Stacked normals, shape ``(m, d)``."""
        return self._normals

    @property
    def offsets(self) -> np.ndarray:
        """Stacked offsets, shape ``(m,)``."""
        return self._offsets

    # -- membership -----------------------------------------------------------

    def contains_point(self, point: np.ndarray) -> bool:
        """Whether ``point`` satisfies every inequality."""
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(self._normals @ point <= self._offsets))

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorized membership mask for an ``(n, d)`` array."""
        points = np.asarray(points, dtype=np.float64)
        return np.all(points @ self._normals.T <= self._offsets, axis=1)

    # -- classification against boxes ------------------------------------------

    def classify_box(self, box: Box) -> BoxRelation:
        """Classify a box as INSIDE / OUTSIDE / PARTIAL w.r.t. the polyhedron.

        This is the primitive of the paper's Figure 4.  For each halfspace
        we compute the min and max of the linear form over the box (O(d)
        per halfspace):

        * if some halfspace's *minimum* exceeds its offset, the box is
          entirely outside that halfspace, hence OUTSIDE the polyhedron;
        * if every halfspace's *maximum* is within its offset, the box
          satisfies all constraints everywhere, hence INSIDE;
        * otherwise the box straddles at least one boundary: PARTIAL.

        The OUTSIDE test is conservative for genuinely *partial* overlaps
        of the polyhedron with the box when no single halfspace separates
        them (the box may still be disjoint from the intersection); those
        rare cases are safely reported PARTIAL and resolved by the
        per-point residual filter, so correctness is never affected.
        """
        all_inside = True
        for halfspace in self._halfspaces:
            lo_value, hi_value = halfspace.box_extremes(box)
            if lo_value > halfspace.offset:
                return BoxRelation.OUTSIDE
            if hi_value > halfspace.offset:
                all_inside = False
        return BoxRelation.INSIDE if all_inside else BoxRelation.PARTIAL

    # -- classification against balls -------------------------------------------

    def classify_ball(self, center: np.ndarray, radius: float) -> BoxRelation:
        """Classify the ball ``|x - center| <= radius``.

        Used by the sampled-Voronoi index: a Voronoi cell is enclosed in
        the ball around its seed with radius = distance to its farthest
        member, and encloses nothing we rely on -- so ball classification
        gives a sound INSIDE/OUTSIDE/PARTIAL verdict for the cell
        (conservative toward PARTIAL).
        """
        center = np.asarray(center, dtype=np.float64)
        all_inside = True
        for halfspace in self._halfspaces:
            signed = halfspace.signed_distance(center)
            if signed - radius > 0.0:
                return BoxRelation.OUTSIDE
            if signed + radius > 0.0:
                all_inside = False
        return BoxRelation.INSIDE if all_inside else BoxRelation.PARTIAL

    def min_distance_to_point(self, point: np.ndarray) -> float:
        """Lower bound on the distance from ``point`` to the polyhedron.

        Zero when inside; otherwise the largest violated halfspace's
        plane distance (a valid lower bound for convex bodies).
        """
        point = np.asarray(point, dtype=np.float64)
        worst = 0.0
        for halfspace in self._halfspaces:
            signed = halfspace.signed_distance(point)
            if signed > worst:
                worst = signed
        return worst

    def intersected_with(self, other: "Polyhedron") -> "Polyhedron":
        """Polyhedron from the union of both constraint sets."""
        return Polyhedron(list(self._halfspaces) + list(other.halfspaces))

    def __len__(self) -> int:
        return len(self._halfspaces)

    def __repr__(self) -> str:
        return f"Polyhedron(dim={self._dim}, faces={len(self._halfspaces)})"
