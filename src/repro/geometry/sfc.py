"""Space-filling curves: Morton (Z-order) and Hilbert.

The paper numbers Voronoi cells "along a space filling curve" (§3.4) so
that cells that are close in space get close cell ids and therefore land on
nearby disk pages once the table is clustered on the cell id.  We provide
Morton (the simple bit-interleaving curve) and Hilbert (better locality)
for any dimension, plus helpers to order arbitrary float point sets.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "morton_index",
    "morton_indices",
    "morton_decode",
    "hilbert_index",
    "hilbert_indices",
    "morton_sort_key",
    "quantize_points",
]


def quantize_points(
    points: np.ndarray,
    bits: int,
    lo: np.ndarray | None = None,
    hi: np.ndarray | None = None,
) -> np.ndarray:
    """Map float points into the integer lattice ``[0, 2**bits)`` per axis.

    Degenerate axes (zero extent) map to 0.  The caller may pass explicit
    bounds; by default the point set's own bounding box is used.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be (n, d)")
    if bits < 1 or bits > 21:
        raise ValueError("bits must be in [1, 21] to fit in int64 products")
    lo = points.min(axis=0) if lo is None else np.asarray(lo, float)
    hi = points.max(axis=0) if hi is None else np.asarray(hi, float)
    span = hi - lo
    span[span == 0.0] = 1.0
    cells = (1 << bits) - 1
    scaled = np.clip((points - lo) / span, 0.0, 1.0) * cells
    return np.rint(scaled).astype(np.int64)


def morton_index(coords: np.ndarray, bits: int) -> int:
    """Morton code of a single integer lattice point.

    Interleaves the ``bits`` low bits of each coordinate, axis 0 being the
    most significant within each group.
    """
    coords = np.asarray(coords, dtype=np.int64)
    code = 0
    dim = coords.shape[0]
    for bit in range(bits - 1, -1, -1):
        for axis in range(dim):
            code = (code << 1) | ((int(coords[axis]) >> bit) & 1)
    return code


def morton_indices(coords: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized Morton codes for an ``(n, d)`` integer lattice array."""
    coords = np.asarray(coords, dtype=np.int64)
    n, dim = coords.shape
    if bits * dim > 62:
        raise ValueError("bits * dim must be <= 62 to fit in int64")
    codes = np.zeros(n, dtype=np.int64)
    for bit in range(bits - 1, -1, -1):
        for axis in range(dim):
            codes = (codes << 1) | ((coords[:, axis] >> bit) & 1)
    return codes


def morton_sort_key(points: np.ndarray, bits: int = 10) -> np.ndarray:
    """Morton codes of float points after lattice quantization.

    This is the ordering used to number grid cells and Voronoi seeds.
    """
    return morton_indices(quantize_points(points, bits), bits)


def _hilbert_transpose_to_axes(transpose: np.ndarray, bits: int) -> np.ndarray:
    """Inverse of the Hilbert 'transpose' encoding (Skilling's algorithm)."""
    x = transpose.copy()
    dim = x.shape[0]
    top = np.int64(2) << (bits - 1)
    # Gray decode.
    t = x[dim - 1] >> 1
    for i in range(dim - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work.
    q = np.int64(2)
    while q != top:
        p = q - 1
        for i in range(dim - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return x


def _hilbert_axes_to_transpose(axes: np.ndarray, bits: int) -> np.ndarray:
    """Skilling's forward transform: lattice axes -> Hilbert transpose form."""
    x = axes.copy()
    dim = x.shape[0]
    m = np.int64(1) << (bits - 1)
    # Inverse undo.
    q = m
    while q > 1:
        p = q - 1
        for i in range(dim):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, dim):
        x[i] ^= x[i - 1]
    t = np.int64(0)
    q = m
    while q > 1:
        if x[dim - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(dim):
        x[i] ^= t
    return x


def morton_decode(code: int, dim: int, bits: int) -> np.ndarray:
    """Inverse of :func:`morton_index` -- lattice point of a Morton code."""
    coords = np.zeros(dim, dtype=np.int64)
    position = bits * dim - 1
    for bit in range(bits - 1, -1, -1):
        for axis in range(dim):
            coords[axis] |= ((code >> position) & 1) << bit
            position -= 1
    return coords


def hilbert_index(coords: np.ndarray, bits: int) -> int:
    """Hilbert curve index of one integer lattice point (any dimension).

    Uses Skilling's transpose representation; the result is the integer
    whose bits are the transpose array's bits interleaved MSB-first.
    """
    coords = np.asarray(coords, dtype=np.int64)
    dim = coords.shape[0]
    if bits * dim > 62:
        raise ValueError("bits * dim must be <= 62 to fit in int64")
    transpose = _hilbert_axes_to_transpose(coords.copy(), bits)
    code = 0
    for bit in range(bits - 1, -1, -1):
        for axis in range(dim):
            code = (code << 1) | ((int(transpose[axis]) >> bit) & 1)
    return code


def hilbert_indices(coords: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert indices for an ``(n, d)`` integer lattice array."""
    coords = np.asarray(coords, dtype=np.int64)
    return np.array(
        [hilbert_index(row, bits) for row in coords], dtype=np.int64
    )


def hilbert_decode(code: int, dim: int, bits: int) -> np.ndarray:
    """Inverse of :func:`hilbert_index` -- lattice point of a curve index."""
    transpose = np.zeros(dim, dtype=np.int64)
    position = bits * dim - 1
    for bit in range(bits - 1, -1, -1):
        for axis in range(dim):
            transpose[axis] |= ((code >> position) & 1) << bit
            position -= 1
    return _hilbert_transpose_to_axes(transpose, bits)
