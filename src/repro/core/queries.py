"""Shared polyhedron-query plumbing and the full-scan baseline.

Figure 5 compares "using the kd-tree index" against "simple SQL queries";
the latter is :func:`polyhedron_full_scan`.  :func:`selectivity` is the
x-axis of that figure: returned rows / total rows.
"""

from __future__ import annotations

import numpy as np

from repro.db.scan import (
    BatchScanMember,
    PartialOnlyPruner,
    batch_full_scan,
    full_scan,
    membership_predicate,
)
from repro.db.stats import QueryStats
from repro.db.table import Table
from repro.geometry.halfspace import Polyhedron

__all__ = ["polyhedron_batch_full_scan", "polyhedron_full_scan", "selectivity"]


def polyhedron_full_scan(
    table: Table,
    dims: list[str],
    polyhedron: Polyhedron,
    cancel_check=None,
    use_zone_maps: bool = True,
    memberships: dict[str, np.ndarray] | None = None,
) -> tuple[dict[str, np.ndarray], QueryStats]:
    """Evaluate a polyhedron query by scanning every page (the baseline).

    ``cancel_check`` is forwarded to :func:`repro.db.scan.full_scan` and
    runs once per page (cooperative deadline cancellation).  When the
    table carries a zone map covering ``dims`` (and ``use_zone_maps`` is
    left on), pages whose min/max box is disjoint from the polyhedron are
    skipped before any read, and fully-inside pages skip the per-point
    filter -- the "baseline" then behaves like a poor man's index, which
    is exactly the comparison the I/O bench draws.

    ``memberships`` ANDs vectorized IN-list filters into the predicate;
    the zone pruner (built from the polyhedron alone) then keeps its
    OUTSIDE skipping but loses the INSIDE filter skip, which would be
    unsound under the stronger predicate.
    """
    if polyhedron.dim != len(dims):
        raise ValueError(f"polyhedron dim {polyhedron.dim} != len(dims) {len(dims)}")

    def predicate(columns: dict[str, np.ndarray]) -> np.ndarray:
        pts = np.column_stack([columns[d] for d in dims])
        return polyhedron.contains_points(pts)

    if memberships:
        predicate = membership_predicate(memberships, base=predicate)
    pruner = None
    if use_zone_maps:
        zone_map = table.zone_map()
        if zone_map is not None:
            pruner = zone_map.pruner(polyhedron, dims)
            if memberships:
                pruner = PartialOnlyPruner(pruner)
    return full_scan(
        table, predicate=predicate, cancel_check=cancel_check, pruner=pruner
    )


def polyhedron_batch_full_scan(
    table: Table,
    dims: list[str],
    polyhedra: list[Polyhedron],
    cancel_checks: list | None = None,
    use_zone_maps: bool = True,
    memberships_list: list[dict | None] | None = None,
) -> tuple[list[tuple[dict[str, np.ndarray] | None, QueryStats, BaseException | None]], dict]:
    """Evaluate several polyhedron queries in one shared scan pass.

    The multi-query analog of :func:`polyhedron_full_scan`: each
    surviving page is read and decoded once and every member's predicate
    is evaluated vectorized against the shared column arrays; per-page
    pruning is the union of the members' zone-map pruners.  Per-member
    results (rows, stats, error) and the shared-work counters come back
    exactly as from :func:`repro.db.scan.batch_full_scan`.
    ``memberships_list`` adds per-member IN-list filters, handled as in
    the solo scan.
    """
    checks = list(cancel_checks) if cancel_checks is not None else [None] * len(polyhedra)
    member_filters = (
        list(memberships_list)
        if memberships_list is not None
        else [None] * len(polyhedra)
    )
    zone_map = table.zone_map() if use_zone_maps else None

    def make_predicate(polyhedron: Polyhedron, memberships: dict | None):
        if polyhedron.dim != len(dims):
            raise ValueError(
                f"polyhedron dim {polyhedron.dim} != len(dims) {len(dims)}"
            )

        def predicate(columns: dict[str, np.ndarray]) -> np.ndarray:
            pts = np.column_stack([columns[d] for d in dims])
            return polyhedron.contains_points(pts)

        if memberships:
            return membership_predicate(memberships, base=predicate)
        return predicate

    def make_pruner(polyhedron: Polyhedron, memberships: dict | None):
        if zone_map is None:
            return None
        pruner = zone_map.pruner(polyhedron, dims)
        return PartialOnlyPruner(pruner) if memberships else pruner

    members = [
        BatchScanMember(
            predicate=make_predicate(polyhedron, memberships),
            pruner=make_pruner(polyhedron, memberships),
            cancel_check=check,
        )
        for polyhedron, check, memberships in zip(polyhedra, checks, member_filters)
    ]
    return batch_full_scan(table, members)


def selectivity(stats: QueryStats, total_rows: int) -> float:
    """Returned / total rows: the x-axis of Figure 5."""
    if total_rows <= 0:
        return 0.0
    return stats.rows_returned / total_rows


def ball_polyhedron(center: np.ndarray, radius: float, facets: int = 32, seed: int = 0) -> Polyhedron:
    """A circumscribing polytope of the ball ``|x - center| <= radius``.

    §1: nonlinear query surfaces "can be broken down into polyhedron
    queries".  The construction: tangent halfspaces at ``facets``
    well-spread directions (the 2d axis directions plus quasi-random unit
    vectors), each of the form ``u . x <= u . center + radius``.  The
    polytope strictly contains the ball, so running it through an index
    and then filtering by exact distance yields the exact ball query.
    """
    center = np.asarray(center, dtype=np.float64)
    if radius <= 0:
        raise ValueError("radius must be positive")
    dim = len(center)
    if facets < 2 * dim:
        raise ValueError(f"need at least 2d = {2 * dim} facets")
    rng = np.random.default_rng(seed)
    directions = [np.eye(dim)[axis] * sign for axis in range(dim) for sign in (1.0, -1.0)]
    while len(directions) < facets:
        vec = rng.normal(size=dim)
        directions.append(vec / np.linalg.norm(vec))
    from repro.geometry.halfspace import Halfspace

    # A hair of relative slack keeps surface points inside despite
    # floating-point roundoff; the exact distance filter removes it.
    slack = 1e-9 * (float(np.abs(center).max()) + radius + 1.0)
    halfspaces = [
        Halfspace(u, float(u @ center) + radius + slack)
        for u in directions[:facets]
    ]
    return Polyhedron(halfspaces)


def ball_query(
    index, center: np.ndarray, radius: float, facets: int = 32
) -> tuple[dict[str, np.ndarray], QueryStats]:
    """Exact range (ball) query through a spatial index.

    Runs the circumscribing polytope through ``index.query_polyhedron``
    and applies the exact distance filter to the (slightly larger)
    candidate set.  The polytope's volume overhead shrinks as ``facets``
    grows; 32 facets in 5-D keeps it within a few percent.
    """
    center = np.asarray(center, dtype=np.float64)
    polytope = ball_polyhedron(center, radius, facets=facets)
    rows, stats = index.query_polyhedron(polytope)
    pts = index.points_of(rows)
    if len(pts):
        inside = np.einsum("ij,ij->i", pts - center, pts - center) <= radius**2
        rows = {k: v[inside] for k, v in rows.items()}
        stats.extra["candidates"] = int(len(inside))
        stats.rows_returned = int(inside.sum())
    return rows, stats
