"""k-nearest-neighbor search over the kd-tree index (§3.3).

Three searchers ship:

* :func:`knn_boundary_points` -- the paper's algorithm.  Grow a region
  around the query point ``p`` in steps of kd-boxes.  The frontier is
  driven by *boundary points* of the boxes examined so far: box vertices
  plus projections of ``p`` onto the box faces.  If a boundary point
  ``b`` is closer to ``p`` than the current k-th distance ``m``, the not
  yet examined boxes containing ``b`` enter the index list; the paper's
  ``TOP(k - f)`` refinement skips result entries that can no longer be
  displaced.  The paper's discovery rule can -- in rare corner-notch
  configurations -- fail to name the next relevant box through any
  boundary point; we keep the algorithm faithful and add a final
  tree-pruned verification sweep that makes the result exact, counting
  how many boxes (if any) only the sweep found (``fallback_boxes`` in the
  stats; it is telling that this is almost always zero, which is why the
  paper could ship the scheme).
* :func:`knn_best_first` -- the textbook best-first baseline used by the
  E-ablation: a priority queue of nodes ordered by bounding-box distance.
* :func:`knn_brute_force` -- the full-scan ground truth.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.kdtree import KdTreeIndex
from repro.db.scan import AUTO_TOMBSTONES, full_scan
from repro.db.stats import QueryStats
from repro.db.table import Table
from repro.geometry.distance import squared_distances

__all__ = [
    "KnnResult",
    "NeighborList",
    "knn_boundary_points",
    "knn_best_first",
    "knn_brute_force",
    "merge_knn_results",
]


@dataclass
class KnnResult:
    """Result of a k-NN query.

    ``row_ids`` and ``distances`` are sorted by ascending distance.
    """

    row_ids: np.ndarray
    distances: np.ndarray
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def k(self) -> int:
        """Number of neighbors actually found (< k for tiny tables)."""
        return len(self.row_ids)


class NeighborList:
    """The paper's result list: at most k (distance, row) pairs, sorted."""

    def __init__(self, k: int):
        self.k = k
        self._entries: list[tuple[float, int]] = []

    @property
    def worst(self) -> float:
        """Current k-th distance ``m`` (inf until k entries exist)."""
        if len(self._entries) < self.k:
            return float("inf")
        return self._entries[-1][0]

    def safe_count(self, bound: float) -> int:
        """``f``: entries with distance < bound that can never be displaced."""
        distances = [d for d, _ in self._entries]
        return int(np.searchsorted(distances, bound, side="left"))

    def offer(self, distances: np.ndarray, row_ids: np.ndarray) -> None:
        """Merge candidate pairs, keeping the best k."""
        merged = self._entries + list(zip(distances.tolist(), row_ids.tolist()))
        merged.sort()
        self._entries = merged[: self.k]

    def finish(self) -> tuple[np.ndarray, np.ndarray]:
        rows = np.array([r for _, r in self._entries], dtype=np.int64)
        dists = np.array([d for d, _ in self._entries])
        return rows, dists


def merge_knn_results(results: list[KnnResult], k: int) -> KnnResult:
    """K-way merge of per-partition candidate lists into a global top-k.

    Each input's ``(distances, row_ids)`` must already be sorted by
    ascending distance (every searcher here guarantees that), so the
    merge is a streaming heap walk that stops after ``k`` pulls.  Stats
    of all inputs are merged; row ids are taken as-is, so callers
    merging across shards remap them to a global namespace first.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    stats = QueryStats()
    for result in results:
        stats.merge(result.stats)
    streams = [
        zip(result.distances.tolist(), result.row_ids.tolist())
        for result in results
        if len(result.row_ids)
    ]
    best = list(itertools.islice(heapq.merge(*streams), k))
    row_ids = np.array([r for _, r in best], dtype=np.int64)
    distances = np.array([d for d, _ in best])
    stats.rows_returned = len(row_ids)
    return KnnResult(row_ids=row_ids, distances=distances, stats=stats)


def _leaf_candidates(
    index: KdTreeIndex,
    leaf: int,
    point: np.ndarray,
    top: int,
    stats: QueryStats,
    tombstones=AUTO_TOMBSTONES,
) -> tuple[np.ndarray, np.ndarray]:
    """Distances and row ids of the best ``top`` live rows in a leaf."""
    rows, leaf_stats = index.leaf_rows(leaf, tombstones=tombstones)
    stats.merge(leaf_stats)
    if len(rows["_row_id"]) == 0:
        return np.empty(0), np.empty(0, dtype=np.int64)
    pts = index.points_of(rows)
    dist2 = squared_distances(pts, point)
    if top < len(dist2):
        keep = np.argpartition(dist2, top)[:top]
    else:
        keep = np.arange(len(dist2))
    return np.sqrt(dist2[keep]), rows["_row_id"][keep]


def _offer_delta_candidates(
    index: KdTreeIndex,
    point: np.ndarray,
    result: "NeighborList",
    stats: QueryStats,
    snapshot,
) -> None:
    """Seed the result list with the delta tier's live inserts.

    The delta is small by construction (the merge policy bounds it), so
    k-NN treats it as one extra in-memory leaf: all live delta points are
    offered up front, which also tightens the pruning bound early.
    """
    if snapshot is None or not snapshot.num_rows:
        return
    pts = snapshot.points(tuple(index.dims))
    stats.rows_examined += snapshot.num_rows
    dist2 = squared_distances(pts, point)
    result.offer(np.sqrt(dist2), snapshot.row_ids)


def knn_boundary_points(
    index: KdTreeIndex, point: np.ndarray, k: int, cancel_check=None
) -> KnnResult:
    """The §3.3 boundary-point algorithm (exact; see module docstring).

    ``cancel_check`` (a zero-argument callable or ``None``) runs once
    per examined box; raising from it abandons the search cooperatively,
    which is how sharded/deadline-bound callers stop in-flight scans.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    point = np.asarray(point, dtype=np.float64)
    tree = index.tree
    stats = QueryStats()
    result = NeighborList(k)
    snapshot = index.table.delta_snapshot()
    tombstones = snapshot.tombstones if snapshot is not None else None
    _offer_delta_candidates(index, point, result, stats, snapshot)
    examined: set[int] = set()
    queued: set[int] = set()
    # Index list: (exact box lower bound, leaf heap id).
    index_list: list[tuple[float, int]] = []

    def discover(leaf: int) -> None:
        if leaf in examined or leaf in queued:
            return
        bound = tree.partition_box(leaf).min_distance_to_point(point)
        heapq.heappush(index_list, (bound, leaf))
        queued.add(leaf)

    for leaf in tree.leaves_containing(point):
        discover(leaf)

    while index_list:
        if cancel_check is not None:
            cancel_check()
        bound, leaf = heapq.heappop(index_list)
        queued.discard(leaf)
        if leaf in examined:
            continue
        m = result.worst
        if bound >= m:
            # Nothing in this box can improve the result list; since the
            # index list is bound-ordered, neither can anything queued.
            break
        examined.add(leaf)
        stats.nodes_visited += 1
        # TOP(k - f): the first f result entries are already closer than
        # any point this box can offer.
        top = max(1, k - result.safe_count(bound))
        distances, row_ids = _leaf_candidates(
            index, leaf, point, top, stats, tombstones=tombstones
        )
        result.offer(distances, row_ids)
        m = result.worst
        # Grow the frontier through boundary points of the examined box.
        box = tree.partition_box(leaf)
        boundary = np.vstack([box.corners(), box.project_point_to_faces(point)])
        dists = np.sqrt(squared_distances(boundary, point))
        for b, dist_b in zip(boundary, dists):
            if dist_b >= m:
                continue
            for neighbor in tree.leaves_containing(b):
                discover(neighbor)

    # Exactness sweep: a tree-pruned pass that finds any leaf closer than
    # the k-th distance which boundary-point discovery missed.
    fallback = 0
    m = result.worst
    stack = [1]
    while stack:
        if cancel_check is not None:
            cancel_check()
        node = stack.pop()
        # One box probe per visit (a paged tree pays a cache probe per
        # accessor call); the bound is reused for the fallback offer.
        bound = tree.partition_box(node).min_distance_to_point(point)
        if bound >= m:
            continue
        if tree.is_leaf(node):
            if node not in examined and tree.leaf_size(node) > 0:
                fallback += 1
                top = max(1, k - result.safe_count(bound))
                distances, row_ids = _leaf_candidates(
                    index, node, point, top, stats, tombstones=tombstones
                )
                result.offer(distances, row_ids)
                m = result.worst
        else:
            stack.append(2 * node)
            stack.append(2 * node + 1)
    stats.extra["boxes_examined"] = len(examined) + fallback
    stats.extra["fallback_boxes"] = fallback

    row_ids, distances = result.finish()
    stats.rows_returned = len(row_ids)
    return KnnResult(row_ids=row_ids, distances=distances, stats=stats)


def knn_best_first(
    index: KdTreeIndex, point: np.ndarray, k: int, cancel_check=None
) -> KnnResult:
    """Best-first k-NN: priority queue over node boxes (baseline)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    point = np.asarray(point, dtype=np.float64)
    tree = index.tree
    stats = QueryStats()
    result = NeighborList(k)
    snapshot = index.table.delta_snapshot()
    tombstones = snapshot.tombstones if snapshot is not None else None
    _offer_delta_candidates(index, point, result, stats, snapshot)
    boxes_examined = 0
    heap: list[tuple[float, int]] = [(0.0, 1)]
    while heap:
        if cancel_check is not None:
            cancel_check()
        bound, node = heapq.heappop(heap)
        if bound >= result.worst:
            break
        stats.nodes_visited += 1
        if tree.is_leaf(node):
            if tree.leaf_size(node) == 0:
                continue
            boxes_examined += 1
            top = max(1, k - result.safe_count(bound))
            distances, row_ids = _leaf_candidates(
                index, node, point, top, stats, tombstones=tombstones
            )
            result.offer(distances, row_ids)
        else:
            for child in (2 * node, 2 * node + 1):
                child_bound = tree.tight_box(child).min_distance_to_point(point)
                if child_bound < result.worst:
                    heapq.heappush(heap, (child_bound, child))
    stats.extra["boxes_examined"] = boxes_examined
    row_ids, distances = result.finish()
    stats.rows_returned = len(row_ids)
    return KnnResult(row_ids=row_ids, distances=distances, stats=stats)


def knn_brute_force(
    table: Table, dims: list[str], point: np.ndarray, k: int
) -> KnnResult:
    """Ground-truth k-NN by scanning the whole table."""
    if k < 1:
        raise ValueError("k must be >= 1")
    point = np.asarray(point, dtype=np.float64)
    rows, stats = full_scan(table, columns=list(dims))
    pts = np.column_stack([rows[d] for d in dims])
    if len(pts) == 0:
        return KnnResult(np.empty(0, dtype=np.int64), np.empty(0), stats)
    dist2 = squared_distances(pts, point)
    order = np.argsort(dist2, kind="stable")[:k]
    stats.rows_returned = len(order)
    return KnnResult(
        row_ids=rows["_row_id"][order],
        distances=np.sqrt(dist2[order]),
        stats=stats,
    )
