"""Shared-work batch execution over the kd-tree and the scan.

The paper's headline numbers (Figure 5, §3.2) are single-query; under
concurrent traffic the same hot pages get read, CRC-verified, and
predicate-filtered once *per query*, and the kd-tree's top levels get
re-walked once per query.  This module amortizes that shared work across
a micro-batch of queries:

* :func:`batch_kd_query` lifts the Figure 4 traversal to a *query set*:
  each tree node is visited once and classified against every member
  polyhedron still active there -- OUTSIDE members drop out of the
  subtree, INSIDE members bulk-claim the node's clustered row range, and
  PARTIAL members recurse.  The claimed ranges of all members are then
  served by one shared fetch pass that decodes each needed page once.
* :class:`BatchResult` / :class:`BatchMemberResult` are the engine-level
  contract: per-member outcomes stay independent (one member's deadline
  or fault never drops its batch siblings), plus batch-level counters
  for the work sharing the service surfaces in its metrics.

The scan-side counterpart lives in :func:`repro.db.scan.batch_full_scan`;
the per-query planner front end is
:meth:`repro.core.planner.QueryPlanner.execute_batch`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.db.scan import SCAN_RETRY, _coalesced_runs, _read_page_retrying
from repro.db.stats import QueryStats
from repro.geometry.boxes import BoxRelation
from repro.geometry.halfspace import Polyhedron

__all__ = ["BatchMemberResult", "BatchResult", "batch_kd_query"]


@dataclass
class BatchMemberResult:
    """Per-member outcome of a batch execution: a plan or an error.

    Exactly one of ``planned`` / ``error`` is set.  ``planned`` is a
    :class:`~repro.core.planner.PlannedQuery` (typed loosely to keep the
    module import-cycle-free); ``error`` carries whatever the member's
    own cancel check or degraded solo re-execution raised.
    """

    planned: Any | None = None
    error: BaseException | None = None


@dataclass
class BatchResult:
    """Outcome of one micro-batch, demultiplexed per member.

    ``occupancy`` is the number of queries co-executed;
    ``pages_decoded`` counts pages the shared passes actually read, and
    ``shared_decode_hits`` counts the extra members each decoded page
    served beyond the first -- the reads/decodes a solo execution of the
    same members would have repeated.
    """

    members: list[BatchMemberResult] = field(default_factory=list)
    occupancy: int = 0
    pages_decoded: int = 0
    shared_decode_hits: int = 0


#: A (start, end, needs_filter) clustered row range claimed by a member.
_Range = tuple[int, int, bool]


def batch_kd_query(
    index,
    polyhedra: Sequence[Polyhedron],
    cancel_checks: Sequence[Callable[[], None] | None] | None = None,
    use_tight_boxes: bool = True,
    use_zone_maps: bool = True,
    memberships_list: Sequence[dict | None] | None = None,
) -> tuple[list[tuple[dict[str, np.ndarray] | None, QueryStats, BaseException | None]], dict]:
    """Evaluate several polyhedron queries in one kd traversal + fetch.

    The traversal visits each node once, carrying the set of members for
    whom the node is still unresolved; the fetch pass unions the claimed
    row ranges of every member, applies each member's zone-map pruner to
    its residual-filter ranges, and decodes each surviving page exactly
    once, slicing and filtering it for every member that claimed rows on
    it.  Per-member results are identical to running
    :meth:`KdTreeIndex.query_polyhedron` solo (rows may come back in a
    different order -- page order instead of traversal order).

    Member isolation matches :func:`repro.db.scan.batch_full_scan`: a
    member whose ``cancel_check`` raises is dropped mid-batch with its
    partial rows discarded, siblings unaffected.  A
    :class:`~repro.db.errors.StorageFault` from the shared read path
    propagates, letting the caller degrade to solo execution.

    Returns ``(results, counters)`` shaped exactly like
    :func:`~repro.db.scan.batch_full_scan`'s.

    ``memberships_list`` gives per-member IN-list filters (column ->
    values).  The traversal still classifies on the polyhedron alone (a
    superset), and the fetch pass ANDs each member's vectorized
    ``np.isin`` mask into every row slice -- including INSIDE-subtree
    slices, whose geometric filter skip stays sound because the
    membership mask is applied independently of it.
    """
    tree = index.tree
    table = index.table
    dims = index.dims
    n = len(polyhedra)
    checks = list(cancel_checks) if cancel_checks is not None else [None] * n
    memberships = (
        list(memberships_list) if memberships_list is not None else [None] * n
    )
    for polyhedron in polyhedra:
        if polyhedron.dim != len(dims):
            raise ValueError(
                f"polyhedron dim {polyhedron.dim} != index dim {len(dims)}"
            )

    stats = [QueryStats() for _ in range(n)]
    errors: list[BaseException | None] = [None] * n
    ranges: list[list[_Range]] = [[] for _ in range(n)]
    zone_map = table.zone_map() if use_zone_maps else None
    pruners = [
        zone_map.pruner(polyhedron, dims) if zone_map is not None else None
        for polyhedron in polyhedra
    ]

    # -- phase 1: one multi-box traversal (Figure 4 over a query set) ------
    stack: list[tuple[int, tuple[int, ...]]] = [(1, tuple(range(n)))]
    while stack:
        node, active = stack.pop()
        live: list[int] = []
        for m in active:
            if errors[m] is not None:
                continue
            check = checks[m]
            if check is not None:
                try:
                    check()
                except BaseException as exc:
                    errors[m] = exc
                    continue
            live.append(m)
        if not live:
            continue
        start, end, box = tree.visit_info(node, use_tight_boxes)
        if start == end:
            continue
        deeper: list[int] = []
        for m in live:
            stats[m].nodes_visited += 1
            relation = polyhedra[m].classify_box(box)
            if relation is BoxRelation.OUTSIDE:
                stats[m].cells_outside += 1
            elif relation is BoxRelation.INSIDE:
                stats[m].cells_inside += 1
                ranges[m].append((start, end, False))
            elif tree.is_leaf(node):
                stats[m].cells_partial += 1
                ranges[m].append((start, end, True))
            else:
                deeper.append(m)
        if deeper:
            stack.append((2 * node + 1, tuple(deeper)))
            stack.append((2 * node, tuple(deeper)))

    # -- phase 2: shared fetch of the union of claimed ranges --------------
    # One delta snapshot serves the whole batch: it suppresses tombstoned
    # rows in every member's fetch and contributes its matching inserts
    # to every member's result (merge-on-read).
    snapshot = table.delta_snapshot()
    results, counters = _fetch_member_ranges(
        table, dims, polyhedra, ranges, stats, checks, errors, pruners,
        snapshot=snapshot, memberships_list=memberships,
    )
    return results, counters


def _fetch_member_ranges(
    table,
    dims: list[str],
    polyhedra: Sequence[Polyhedron],
    ranges: list[list[_Range]],
    stats: list[QueryStats],
    checks: list[Callable[[], None] | None],
    errors: list[BaseException | None],
    pruners: list,
    snapshot=None,
    memberships_list: list[dict | None] | None = None,
) -> tuple[list[tuple[dict[str, np.ndarray] | None, QueryStats, BaseException | None]], dict]:
    """Serve every member's claimed row ranges, decoding each page once.

    ``segments[page_id]`` collects ``(member, lo, hi, filter)`` row
    slices; INSIDE-subtree slices (``filter=False``) bypass both pruner
    and residual filter (their contract is "every clustered row in
    range"), while residual slices consult the member's pruner first --
    a page the pruner proves OUTSIDE is skipped *for that member only*,
    and one proven INSIDE keeps the rows but drops the filter.
    """
    rows_per_page = table.rows_per_page
    wanted = table.column_names
    n = len(ranges)
    member_filters = (
        memberships_list if memberships_list is not None else [None] * n
    )
    chunks: list[dict[str, list[np.ndarray]]] = [
        {name: [] for name in wanted} for _ in range(n)
    ]
    row_id_chunks: list[list[np.ndarray]] = [[] for _ in range(n)]
    counters = {"pages_decoded": 0, "shared_decode_hits": 0}
    suppress = snapshot is not None and snapshot.num_tombstones > 0

    segments: dict[int, list[tuple[int, int, int, bool]]] = {}
    for m in range(n):
        if errors[m] is not None:
            continue
        pruner = pruners[m]
        for start, end, needs_filter in ranges[m]:
            first = start // rows_per_page
            last = (end - 1) // rows_per_page
            for page_id in range(first, last + 1):
                page_filter = needs_filter
                if needs_filter and pruner is not None:
                    relation = pruner.classify(page_id)
                    if relation is BoxRelation.OUTSIDE:
                        stats[m].pages_skipped += 1
                        continue
                    page_filter = relation is not BoxRelation.INSIDE
                page_start = page_id * rows_per_page
                page_rows = min(rows_per_page, table.num_rows - page_start)
                lo = max(start - page_start, 0)
                hi = min(end - page_start, page_rows)
                segments.setdefault(page_id, []).append((m, lo, hi, page_filter))

    page_ids = sorted(segments)
    window = table.readahead_pages
    prefetch_at: dict[int, list[int]] = {}
    if window > 1:
        for run in _coalesced_runs(page_ids, window):
            if len(run) > 1:
                prefetch_at[run[0]] = run

    for page_id in page_ids:
        live: list[tuple[int, int, int, bool]] = []
        checked: set[int] = set()
        for m, lo, hi, page_filter in segments[page_id]:
            if errors[m] is not None:
                continue
            if m not in checked:
                checked.add(m)
                check = checks[m]
                if check is not None:
                    try:
                        check()
                    except BaseException as exc:
                        errors[m] = exc
                        continue
            if errors[m] is None:
                live.append((m, lo, hi, page_filter))
        if not live:
            continue
        run = prefetch_at.get(page_id)
        if run is not None:
            stats[live[0][0]].pages_prefetched += table.prefetch(run)
        page = _read_page_retrying(table, page_id, SCAN_RETRY)
        counters["pages_decoded"] += 1
        counters["shared_decode_hits"] += len({m for m, _, _, _ in live}) - 1
        points = None
        page_alive = None
        if suppress:
            page_alive = snapshot.alive(page.row_ids())
        for m, lo, hi, page_filter in live:
            member_stats = stats[m]
            member_stats.record_page(table.name, page_id)
            member_stats.rows_examined += hi - lo
            row_ids = np.arange(
                page.start_row + lo, page.start_row + hi, dtype=np.int64
            )
            alive = page_alive[lo:hi] if page_alive is not None else None
            member_memberships = member_filters[m]
            membership_mask = None
            if member_memberships:
                for col, values in member_memberships.items():
                    piece = np.isin(page.columns[col][lo:hi], values)
                    membership_mask = (
                        piece if membership_mask is None else membership_mask & piece
                    )
            if page_filter:
                if points is None:
                    # Stacked once per page, shared by every filtering member.
                    points = np.column_stack([page.columns[d] for d in dims])
                mask = polyhedra[m].contains_points(points[lo:hi])
                if alive is not None:
                    mask = mask & alive
                if membership_mask is not None:
                    mask = mask & membership_mask
            elif membership_mask is not None:
                mask = (
                    membership_mask if alive is None else membership_mask & alive
                )
            elif alive is not None and not alive.all():
                mask = alive
            else:
                member_stats.rows_returned += hi - lo
                row_id_chunks[m].append(row_ids)
                for name in wanted:
                    chunks[m][name].append(page.columns[name][lo:hi])
                continue
            matched = int(np.count_nonzero(mask))
            if matched == 0:
                continue
            member_stats.rows_returned += matched
            row_id_chunks[m].append(row_ids[mask])
            for name in wanted:
                chunks[m][name].append(page.columns[name][lo:hi][mask])

    if snapshot is not None and snapshot.num_rows:
        # Per-member merge-on-read: each member gets the delta inserts
        # inside its polyhedron (grid-accelerated, zero pages decoded).
        for m in range(n):
            if errors[m] is not None:
                continue
            stats[m].rows_examined += snapshot.num_rows
            cols, delta_ids = snapshot.match(polyhedra[m], dims=tuple(dims))
            if member_filters[m] and len(delta_ids):
                dmask = None
                for col, values in member_filters[m].items():
                    piece = np.isin(cols[col], values)
                    dmask = piece if dmask is None else dmask & piece
                cols = {name: arr[dmask] for name, arr in cols.items()}
                delta_ids = delta_ids[dmask]
            if not len(delta_ids):
                continue
            stats[m].rows_returned += len(delta_ids)
            row_id_chunks[m].append(delta_ids)
            for name in wanted:
                chunks[m][name].append(cols[name])

    results: list[tuple[dict[str, np.ndarray] | None, QueryStats, BaseException | None]] = []
    for m in range(n):
        if errors[m] is not None:
            results.append((None, stats[m], errors[m]))
            continue
        rows: dict[str, np.ndarray] = {}
        for name in wanted:
            parts = chunks[m][name]
            rows[name] = (
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=table.dtype_of(name))
            )
        rows["_row_id"] = (
            np.concatenate(row_id_chunks[m])
            if row_id_chunks[m]
            else np.empty(0, dtype=np.int64)
        )
        results.append((rows, stats[m], None))
    return results, counters
