"""The layered uniform grid index of §3.1.

The visualization client asks the server for "*n* points from this query
box that follow the underlying distribution", and wants them without a
table scan.  The paper's construction:

* Add a ``RandomID`` column: a random permutation of 1..N.
* Layer 1 holds the first ``base`` (=1024) points by RandomID, layer 2 the
  next ``base * 2^d`` points, and so on -- layer *l* holds
  ``base * (2^d)^(l-1)`` points, so each layer is an unbiased random
  sample of the whole table.
* Layer *l* gets a uniform grid of resolution ``2^l`` per axis, hence
  ``(2^l)^d`` cells: the expected points per cell, ``base / 2^d``, is the
  same on every layer (the paper's 3-D numbers: 1024 points / 8 cells =
  8·1024 points / 64 cells = 128).
* Each point stores its cell id in ``ContainedBy``; the table is clustered
  on ``(Layer, ContainedBy)``.

A query walks layers coarse to fine, fetching only the clustered row
ranges of cells that intersect the query box, until ~n points are
accumulated.  Because every layer is a random sample, the running union is
one too -- the sample follows the underlying distribution by construction,
and "practically only points which are actually returned are read from
disk".

:class:`TableSampleBaseline` reproduces the approach the paper tried
first and rejected: SQL Server's ``TABLESAMPLE`` (page sampling at a
tunable percentage) followed by ``TOP(n)``, with its under/over-sampling
pathology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.index_base import stack_coordinates
from repro.db.catalog import Database
from repro.db.scan import range_scan
from repro.db.stats import QueryStats
from repro.db.table import DEFAULT_ROWS_PER_PAGE, Table
from repro.geometry.boxes import Box

__all__ = ["LayeredGridIndex", "TableSampleBaseline", "layer_sizes"]


def layer_sizes(num_rows: int, dim: int, base: int) -> list[int]:
    """Points per layer: ``base * (2^d)^(l-1)``, last layer truncated."""
    if num_rows < 1:
        raise ValueError("num_rows must be >= 1")
    sizes: list[int] = []
    remaining = num_rows
    size = base
    while remaining > 0:
        take = min(size, remaining)
        sizes.append(take)
        remaining -= take
        size *= 2**dim
    return sizes


@dataclass
class SampleResult:
    """Output of a layered-grid sample query."""

    points: np.ndarray
    row_ids: np.ndarray
    layers_used: int
    stats: QueryStats


class LayeredGridIndex:
    """Layered uniform grid over ``dims`` of a data table."""

    def __init__(
        self,
        database: Database,
        table: Table,
        dims: list[str],
        bounds: Box,
        sizes: list[int],
        cell_ranges: list[dict[int, tuple[int, int]]],
    ):
        self._db = database
        self._table = table
        self._dims = list(dims)
        self._bounds = bounds
        self._sizes = sizes
        self._cell_ranges = cell_ranges

    # -- build ----------------------------------------------------------------

    @staticmethod
    def build(
        database: Database,
        name: str,
        data: dict[str, np.ndarray],
        dims: list[str],
        base: int = 1024,
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
        seed: int = 0,
    ) -> "LayeredGridIndex":
        """Assign RandomID / Layer / ContainedBy and cluster the table.

        Parameters
        ----------
        base:
            Points on the first layer (the paper's 1024).
        seed:
            Seed of the RandomID permutation (determinism for tests).
        """
        points = stack_coordinates(data, list(dims))
        num_rows, dim = points.shape
        bounds = Box.from_points(points)

        rng = np.random.default_rng(seed)
        random_id = rng.permutation(num_rows).astype(np.int64)

        sizes = layer_sizes(num_rows, dim, base)
        # Layer of each row: breakpoints over RandomID.
        breaks = np.cumsum([0] + sizes)
        layer = (
            np.searchsorted(breaks, random_id, side="right").astype(np.int64)
        )  # 1-based layer index

        contained_by = np.empty(num_rows, dtype=np.int64)
        for l_index in range(1, len(sizes) + 1):
            mask = layer == l_index
            resolution = 2**l_index
            coords = _grid_coords(points[mask], bounds, resolution)
            contained_by[mask] = _cell_ids(coords, resolution)

        table_data = dict(data)
        table_data["RandomID"] = random_id
        table_data["Layer"] = layer
        table_data["ContainedBy"] = contained_by
        table = database.create_table(
            name,
            table_data,
            rows_per_page=rows_per_page,
            clustered_by=("Layer", "ContainedBy"),
        )

        cell_ranges = _build_cell_ranges(table, len(sizes))
        index = LayeredGridIndex(database, table, dims, bounds, sizes, cell_ranges)
        database.register_index(f"{name}.layered_grid", index)
        return index

    # -- properties ---------------------------------------------------------------

    @property
    def table(self) -> Table:
        """The clustered data table."""
        return self._table

    @property
    def table_name(self) -> str:
        """Name of the backing table (catalog bookkeeping)."""
        return self._table.name

    @property
    def dims(self) -> list[str]:
        """Ordered coordinate column names."""
        return list(self._dims)

    @property
    def bounds(self) -> Box:
        """Global bounding box of the indexed points."""
        return self._bounds

    @property
    def num_layers(self) -> int:
        """Number of layers."""
        return len(self._sizes)

    def layer_size(self, layer: int) -> int:
        """Points assigned to a 1-based layer index."""
        return self._sizes[layer - 1]

    # -- queries -----------------------------------------------------------------

    def sample_box(self, box: Box, n: int) -> SampleResult:
        """Return ~n distribution-following points inside ``box``.

        Walks layers coarse to fine; per the paper, once the running count
        reaches ``n`` the current layer is finished and the query halts
        ("extra points from the last layer are returned, too" -- the
        client is insensitive to a small surplus).
        """
        stats = QueryStats()
        collected_points: list[np.ndarray] = []
        collected_rows: list[np.ndarray] = []
        total = 0
        layers_used = 0
        for batch_points, batch_rows, batch_stats in self._layer_batches(box):
            layers_used += 1
            stats.merge(batch_stats)
            if len(batch_rows):
                collected_points.append(batch_points)
                collected_rows.append(batch_rows)
                total += len(batch_rows)
            if total >= n:
                break
        points = (
            np.vstack(collected_points)
            if collected_points
            else np.empty((0, len(self._dims)))
        )
        rows = (
            np.concatenate(collected_rows)
            if collected_rows
            else np.empty(0, dtype=np.int64)
        )
        stats.rows_returned = len(rows)
        return SampleResult(
            points=points, row_ids=rows, layers_used=layers_used, stats=stats
        )

    def query_box(self, box: Box) -> SampleResult:
        """*All* points inside ``box`` (exact, not sampled).

        Every point lives on exactly one layer, so scanning the
        intersecting cells of every layer yields the exact result --
        the layered grid doubles as a plain multidimensional grid index.
        Page cost is bounded by the cells overlapping the box across all
        layers, which for selective boxes is far below a full scan.
        """
        stats = QueryStats()
        pts_parts: list[np.ndarray] = []
        row_parts: list[np.ndarray] = []
        for batch_points, batch_rows, batch_stats in self._layer_batches(box):
            stats.merge(batch_stats)
            if len(batch_rows):
                pts_parts.append(batch_points)
                row_parts.append(batch_rows)
        points = np.vstack(pts_parts) if pts_parts else np.empty((0, len(self._dims)))
        rows = np.concatenate(row_parts) if row_parts else np.empty(0, np.int64)
        stats.rows_returned = len(rows)
        return SampleResult(
            points=points, row_ids=rows, layers_used=self.num_layers, stats=stats
        )

    def sample_box_stream(
        self, box: Box, n: int
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Streaming variant: yield ``(points, row_ids)`` per layer.

        "An interesting feature possibility is to stream the points back
        to the client, i.e. when points from the first layer are
        available, start sending them back as we fetch more points from
        layer 2" (§3.1).
        """
        total = 0
        for batch_points, batch_rows, _ in self._layer_batches(box):
            if len(batch_rows):
                yield batch_points, batch_rows
                total += len(batch_rows)
            if total >= n:
                return

    def _layer_batches(
        self, box: Box
    ) -> Iterator[tuple[np.ndarray, np.ndarray, QueryStats]]:
        """Per-layer in-box points, touching only intersecting cells."""
        query = box.intersection(self._bounds)
        for l_index in range(1, self.num_layers + 1):
            stats = QueryStats()
            if query is None:
                yield np.empty((0, len(self._dims))), np.empty(0, np.int64), stats
                continue
            resolution = 2**l_index
            cells = self._intersecting_cells(query, l_index, resolution)
            pts_parts: list[np.ndarray] = []
            row_parts: list[np.ndarray] = []
            for cell in cells:
                start, end = self._cell_ranges[l_index - 1][cell]
                rows, cell_stats = range_scan(
                    self._table, start, end, columns=self._dims
                )
                stats.merge(cell_stats)
                pts = np.column_stack([rows[d] for d in self._dims])
                inside = box.contains_points(pts)
                if np.any(inside):
                    pts_parts.append(pts[inside])
                    row_parts.append(rows["_row_id"][inside])
            pts = np.vstack(pts_parts) if pts_parts else np.empty((0, len(self._dims)))
            rows_out = (
                np.concatenate(row_parts) if row_parts else np.empty(0, np.int64)
            )
            yield pts, rows_out, stats

    def _intersecting_cells(
        self, query: Box, l_index: int, resolution: int
    ) -> list[int]:
        """Occupied cell ids of a layer whose grid cell overlaps ``query``.

        Two strategies: enumerate the lattice sub-box when it is small, or
        filter the layer's occupied cells when the lattice blow-up at deep
        layers would dominate.
        """
        lo_coords = _grid_coords(query.lo[np.newaxis, :], self._bounds, resolution)[0]
        hi_coords = _grid_coords(query.hi[np.newaxis, :], self._bounds, resolution)[0]
        occupied = self._cell_ranges[l_index - 1]
        lattice_count = int(np.prod(hi_coords - lo_coords + 1))
        if lattice_count <= len(occupied):
            cells = []
            for cell in _enumerate_lattice(lo_coords, hi_coords, resolution):
                if cell in occupied:
                    cells.append(cell)
            return cells
        cells = []
        for cell in occupied:
            coords = _decode_cell(cell, len(lo_coords), resolution)
            if np.all(coords >= lo_coords) and np.all(coords <= hi_coords):
                cells.append(cell)
        return cells


def _grid_coords(points: np.ndarray, bounds: Box, resolution: int) -> np.ndarray:
    """Integer grid coordinates of points at a given per-axis resolution."""
    span = bounds.widths.copy()
    span[span == 0.0] = 1.0
    scaled = (points - bounds.lo) / span * resolution
    return np.clip(np.floor(scaled).astype(np.int64), 0, resolution - 1)


def _cell_ids(coords: np.ndarray, resolution: int) -> np.ndarray:
    """Row-major cell id of integer grid coordinates."""
    dim = coords.shape[1]
    ids = np.zeros(len(coords), dtype=np.int64)
    for axis in range(dim):
        ids = ids * resolution + coords[:, axis]
    return ids


def _decode_cell(cell: int, dim: int, resolution: int) -> np.ndarray:
    coords = np.empty(dim, dtype=np.int64)
    for axis in range(dim - 1, -1, -1):
        coords[axis] = cell % resolution
        cell //= resolution
    return coords


def _enumerate_lattice(
    lo: np.ndarray, hi: np.ndarray, resolution: int
) -> Iterator[int]:
    """Row-major cell ids of the integer box ``[lo, hi]`` (inclusive)."""
    dim = len(lo)
    current = lo.copy()
    while True:
        cell = 0
        for axis in range(dim):
            cell = cell * resolution + int(current[axis])
        yield cell
        axis = dim - 1
        while axis >= 0:
            current[axis] += 1
            if current[axis] <= hi[axis]:
                break
            current[axis] = lo[axis]
            axis -= 1
        if axis < 0:
            return


def _build_cell_ranges(
    table: Table, num_layers: int
) -> list[dict[int, tuple[int, int]]]:
    """Row ranges per (layer, cell) in the clustered table.

    This is the clustered B-tree's job in SQL Server; here it is a small
    in-memory dictionary built with one pass over the clustered columns.
    """
    columns = table.read_columns(["Layer", "ContainedBy"])
    layer = columns["Layer"]
    cell = columns["ContainedBy"]
    ranges: list[dict[int, tuple[int, int]]] = [{} for _ in range(num_layers)]
    if len(layer) == 0:
        return ranges
    change = np.flatnonzero((np.diff(layer) != 0) | (np.diff(cell) != 0)) + 1
    starts = np.concatenate([[0], change])
    ends = np.concatenate([change, [len(layer)]])
    for start, end in zip(starts, ends):
        ranges[int(layer[start]) - 1][int(cell[start])] = (int(start), int(end))
    return ranges


class TableSampleBaseline:
    """The rejected first approach: ``TABLESAMPLE(p PERCENT)`` + ``TOP(n)``.

    SQL Server's TABLESAMPLE picks a random subset of *pages*; the rest of
    the query runs on the sampled pages only.  The pathology the paper
    describes: ``p`` must be tuned per query -- too low undersamples (the
    query returns fewer than n points), too high reads a large fraction of
    the table (losing the speed advantage), and ``TOP(n)`` on an
    un-shuffled table returns a spatially biased prefix.  Here rows are
    paged in insertion order; pass data shuffled or not to show both
    failure modes.
    """

    def __init__(self, database: Database, table: Table, dims: list[str], seed: int = 0):
        self._db = database
        self._table = table
        self._dims = list(dims)
        self._rng = np.random.default_rng(seed)

    @staticmethod
    def build(
        database: Database,
        name: str,
        data: dict[str, np.ndarray],
        dims: list[str],
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
        seed: int = 0,
    ) -> "TableSampleBaseline":
        """Materialize the unclustered table the baseline scans."""
        table = database.create_table(name, dict(data), rows_per_page=rows_per_page)
        return TableSampleBaseline(database, table, dims, seed=seed)

    @property
    def table(self) -> Table:
        """The backing table."""
        return self._table

    def sample_box(self, box: Box, n: int, percent: float) -> SampleResult:
        """Sample ``percent`` of pages, filter to ``box``, TOP(n)."""
        if not (0.0 < percent <= 100.0):
            raise ValueError("percent must be in (0, 100]")
        stats = QueryStats()
        num_pages = self._table.num_pages
        take = max(1, int(round(num_pages * percent / 100.0)))
        chosen = self._rng.choice(num_pages, size=take, replace=False)
        pts_parts: list[np.ndarray] = []
        row_parts: list[np.ndarray] = []
        total = 0
        for page_id in np.sort(chosen):
            page = self._table.read_page(int(page_id))
            stats.record_page(self._table.name, int(page_id))
            stats.rows_examined += page.num_rows
            pts = np.column_stack([page.columns[d] for d in self._dims])
            inside = box.contains_points(pts)
            count = int(np.count_nonzero(inside))
            if count:
                pts_parts.append(pts[inside])
                row_parts.append(page.row_ids()[inside])
                total += count
            if total >= n:  # TOP(n): stop the scan once n rows were produced
                break
        points = np.vstack(pts_parts) if pts_parts else np.empty((0, len(self._dims)))
        rows = np.concatenate(row_parts) if row_parts else np.empty(0, np.int64)
        if len(rows) > n:
            points, rows = points[:n], rows[:n]
        stats.rows_returned = len(rows)
        return SampleResult(points=points, row_ids=rows, layers_used=0, stats=stats)
