"""A tiny access-path planner.

The paper's rule of thumb -- "if the ratio of the returned / total
number of rows is below 0.25 kd-trees can outperform simple SQL queries
by orders of magnitudes" (§3.2) -- is a planning rule: estimate the
query's selectivity, then choose the index or the scan.  This module
implements that loop the way a real engine would:

1. estimate selectivity from a small *page sample* (a TABLESAMPLE-style
   probe: cheap, biased only by intra-page correlation);
2. choose the access path by the estimated selectivity against a
   crossover threshold;
3. execute and report both the choice and the estimate, so experiments
   can score the planner against exhaustive execution.

The planner is also where the engine degrades gracefully under storage
faults: when the kd-tree path dies on an unrecoverable
:class:`~repro.db.errors.StorageFault` (every retry budget below it
exhausted), the planner falls back to the full scan rather than failing
the query -- the scan re-reads the pages, and a transient burst that
killed the traversal has usually passed.  Fallbacks are reported on the
:class:`PlannedQuery` so the service can surface them in its metrics.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.batch import BatchMemberResult, BatchResult, batch_kd_query
from repro.core.kdtree import KdTreeIndex
from repro.core.queries import polyhedron_batch_full_scan, polyhedron_full_scan
from repro.db.errors import StaleLayoutError, StorageFault
from repro.db.stats import QueryStats
from repro.geometry.halfspace import Polyhedron

__all__ = ["PlannedQuery", "QueryPlanner"]

#: Backstop on re-running a query after background merges retire the
#: generation it was reading.  Each retry is gated on the physical
#: layout actually having moved (a stale error without a swap re-raises
#: immediately), so the loop cannot spin on a genuine missing-page bug;
#: the cap only guards against a writer merging in a pathological tight
#: loop faster than any query can finish.
_STALE_LAYOUT_RETRIES = 32


@dataclass
class PlannedQuery:
    """Outcome of a planned execution.

    ``fallback`` is set when the query was answered by a different path
    than the planner chose because the chosen one hit an unrecoverable
    storage fault; ``fallback_reason`` names the fault.

    The shard fields stay at their zero defaults on a single-index
    planner; a sharded engine (:class:`repro.shard.ScatterGatherExecutor`)
    fills them in.  ``partial`` means at least one shard died on an
    unrecoverable fault and the result covers only the surviving shards;
    ``failed_shards`` names the casualties.
    """

    rows: dict
    stats: QueryStats
    chosen_path: str
    estimated_selectivity: float
    sampled_pages: int
    fallback: bool = False
    fallback_reason: str = ""
    shards_dispatched: int = 0
    shards_pruned: int = 0
    shard_faults: int = 0
    partial: bool = False
    failed_shards: tuple = ()


class QueryPlanner:
    """Chooses between the kd-tree and the full scan per query.

    Parameters
    ----------
    index:
        The kd-tree index over the table (the planner's fast path).
    crossover:
        Selectivity above which the scan is chosen; the paper's 0.25.
    sample_pages:
        Pages probed for the selectivity estimate.
    """

    def __init__(
        self,
        index: KdTreeIndex,
        crossover: float = 0.25,
        sample_pages: int = 8,
        seed: int = 0,
        statistics=None,
    ):
        """``statistics`` may be a
        :class:`repro.db.histogram.HistogramStatistics` built over the
        index's dims; when present the planner estimates from it
        (zero plan-time I/O) instead of probing pages.
        """
        if not (0.0 < crossover <= 1.0):
            raise ValueError("crossover must be in (0, 1]")
        if sample_pages < 1:
            raise ValueError("sample_pages must be >= 1")
        self._index = index
        self._db = index.table.database
        self._index_key = f"{index.table.name}.kdtree"
        self.crossover = crossover
        self.sample_pages = sample_pages
        self.statistics = statistics
        self._rng = np.random.default_rng(seed)
        # The query service shares one planner across worker threads;
        # numpy Generators are not thread-safe, so draws are serialized.
        self._rng_lock = threading.Lock()
        # The probe's sampled points, cached per table snapshot: tables
        # are immutable once created, so concurrent queries need not
        # re-read the same sample pages -- the first probe pays the I/O
        # and every later estimate evaluates against the cached points.
        # Catalog mutations (drop/recreate) invalidate the cache through
        # the same listener channel the result cache rides on.
        self._probe_lock = threading.Lock()
        self._probe_cache: tuple[np.ndarray, int] | None = None
        index.table.database.add_mutation_listener(self._on_catalog_mutation)

    def _on_catalog_mutation(self, table_name: str) -> None:
        if table_name == self.index.table.name:
            with self._probe_lock:
                self._probe_cache = None

    @property
    def index(self) -> KdTreeIndex:
        """The current kd-tree index, re-resolved through the catalog.

        A background merge swaps a fresh index object into the catalog
        under the same key; resolving per access means the planner picks
        up the new generation without being re-wired.  Falls back to the
        construction-time index when the catalog entry is gone (e.g. an
        index built outside the catalog in tests).
        """
        current = self._db.index_if_exists(self._index_key)
        return current if current is not None else self._index

    # -- engine protocol ----------------------------------------------------
    # The query service treats its execution engine as anything with
    # execute(polyhedron, cancel_check) plus these identity properties;
    # the sharded ScatterGatherExecutor implements the same contract.

    @property
    def table_name(self) -> str:
        """Name of the table results come from (cache fingerprinting)."""
        return self.index.table.name

    @property
    def dims(self) -> list[str]:
        """Ordered coordinate column names of the underlying index."""
        return self.index.dims

    @property
    def layout_version(self) -> str:
        """Physical-layout tag folded into result-cache fingerprints.

        Tracks the table's generation and write epoch
        (``g<gen>.e<epoch>``): every ingest write and every merge bumps
        it, so a cached result can never be served across a layout or
        delta change.  Sharded engines return a digest of their shard
        boundaries (plus per-shard epochs) instead.
        """
        return f"unsharded:{self.index.table.layout_version}"

    def estimate_selectivity(self, polyhedron: Polyhedron) -> tuple[float, int]:
        """Page-sample estimate of returned/total.

        Returns ``(estimate, pages_probed)``.  Clustered tables make the
        pages spatially coherent, so the probe uses a spread of pages
        across the whole file rather than a contiguous prefix.
        """
        if self.statistics is not None:
            return self.statistics.estimate_polyhedron(polyhedron), 0
        points, probed = self._probe_sample()
        if len(points) == 0:
            return 0.0, 0
        return float(polyhedron.contains_points(points).sum()) / len(points), probed

    def _probe_sample(self) -> tuple[np.ndarray, int]:
        """The cached probe point sample, reading the pages on first use.

        Returns ``(points, pages_probed)`` where ``points`` stacks the
        coordinate columns of the sampled pages.  The sample is drawn
        once per table snapshot; a concurrent first call may probe twice
        (both reads land in the buffer pool), after which every caller
        shares one array.
        """
        with self._probe_lock:
            cached = self._probe_cache
        if cached is not None:
            return cached
        table = self.index.table
        if table.num_pages == 0:
            sample: tuple[np.ndarray, int] = (np.empty((0, len(self.index.dims))), 0)
            with self._probe_lock:
                self._probe_cache = sample
            return sample
        probe = min(self.sample_pages, table.num_pages)
        page_ids = np.linspace(0, table.num_pages - 1, probe).astype(int)
        # Jitter to avoid aliasing with any periodic layout.
        with self._rng_lock:
            jitter = self._rng.integers(0, max(table.num_pages // probe, 1), probe)
        page_ids = np.minimum(page_ids + jitter, table.num_pages - 1)
        dims = self.index.dims
        probe_ids = [int(page_id) for page_id in np.unique(page_ids)]
        # The probe pages are scattered across the file; one coalesced
        # read pulls them all into the pool instead of N round trips
        # (unless the engine was configured with read-ahead disabled).
        if table.readahead_pages:
            table.prefetch(probe_ids)
        pieces = []
        for page_id in probe_ids:
            page = table.read_page(page_id)
            if page.num_rows:
                pieces.append(np.column_stack([page.columns[d] for d in dims]))
        points = (
            np.concatenate(pieces) if pieces else np.empty((0, len(dims)))
        )
        sample = (points, len(probe_ids))
        with self._probe_lock:
            self._probe_cache = sample
        return sample

    def execute(self, polyhedron: Polyhedron, cancel_check=None) -> PlannedQuery:
        """Estimate, choose a path, run, and report.

        ``cancel_check`` is a zero-argument callable (or ``None``) run
        between planning and execution and inside the chosen executor's
        page/node loops; raising from it abandons the query cooperatively
        -- this is how the query service enforces per-query deadlines.

        Degradation: a :class:`~repro.db.errors.StorageFault` during the
        selectivity probe forfeits the estimate (the scan path is chosen,
        which needs none); one during the kd-tree path falls back to the
        full scan.  A fault from the scan itself propagates -- there is
        nothing cheaper left to degrade to.

        A :class:`~repro.db.errors.StaleLayoutError` is different: it
        means a background merge retired the generation this query was
        reading, so the whole query re-runs against the re-resolved
        current layout (see :meth:`_retry_when_stale`).
        """
        return self._retry_when_stale(
            lambda: self._execute_once(polyhedron, cancel_check)
        )

    def _retry_when_stale(self, attempt):
        """Run ``attempt``, re-running it whenever the layout moved under it.

        Re-runs only when the physical generation observed through the
        catalog actually changed since the attempt started -- a stale
        error without a swap means a genuinely missing page and is
        re-raised at once.  Every retry therefore consumes one concurrent
        merge swap; ``_STALE_LAYOUT_RETRIES`` bounds the pathological
        case of a writer merging faster than any query can complete.
        """
        for _ in range(_STALE_LAYOUT_RETRIES):
            before = self.index.table.physical_name
            try:
                return attempt()
            except StaleLayoutError:
                with self._probe_lock:
                    self._probe_cache = None
                if self.index.table.physical_name == before:
                    raise
        return attempt()

    def _execute_once(self, polyhedron: Polyhedron, cancel_check=None) -> PlannedQuery:
        """One planning-and-execution attempt against the current layout."""
        if cancel_check is not None:
            cancel_check()
        fallback = False
        reason = ""
        try:
            estimate, probed = self.estimate_selectivity(polyhedron)
        except StorageFault as exc:
            estimate, probed = float("nan"), 0
            fallback = True
            reason = f"selectivity probe failed: {type(exc).__name__}"
        if cancel_check is not None:
            cancel_check()
        if estimate <= self.crossover:  # NaN compares False: probe failure -> scan
            try:
                rows, stats = self.index.query_polyhedron(
                    polyhedron, cancel_check=cancel_check
                )
                path = "kdtree"
            except StorageFault as exc:
                fallback = True
                reason = f"kdtree path failed: {type(exc).__name__}"
                rows, stats = polyhedron_full_scan(
                    self.index.table, self.index.dims, polyhedron,
                    cancel_check=cancel_check,
                )
                path = "scan"
        else:
            rows, stats = polyhedron_full_scan(
                self.index.table, self.index.dims, polyhedron,
                cancel_check=cancel_check,
            )
            path = "scan"
        return PlannedQuery(
            rows=rows,
            stats=stats,
            chosen_path=path,
            estimated_selectivity=estimate,
            sampled_pages=probed,
            fallback=fallback,
            fallback_reason=reason,
        )

    def execute_batch(self, polyhedra, cancel_checks=None) -> BatchResult:
        """Plan and run a micro-batch of queries with shared work.

        Members are planned individually (the cached probe makes the
        estimates zero-I/O after the first), then grouped by chosen path:
        the kd group runs one multi-box traversal
        (:func:`~repro.core.batch.batch_kd_query`) and the scan group one
        shared scan pass, each decoding every needed page once for all of
        its members.

        Isolation matches the batch executors underneath: a member whose
        ``cancel_check`` raises is recorded as that member's ``error``
        and its siblings keep going.  A :class:`StorageFault` that kills
        a *shared* pass degrades that group's members to independent
        :meth:`execute` calls -- each then gets the solo path's own retry
        and kd-to-scan fallback, and one member's terminal fault cannot
        take down the rest of the batch.

        A :class:`~repro.db.errors.StaleLayoutError` anywhere in the
        batch (a merge retired the layout mid-flight) restarts the whole
        batch against the re-resolved current layout, exactly like the
        solo path (see :meth:`_retry_when_stale`).
        """
        return self._retry_when_stale(
            lambda: self._execute_batch_once(polyhedra, cancel_checks)
        )

    def _execute_batch_once(self, polyhedra, cancel_checks=None) -> BatchResult:
        """One shared-work attempt against the current layout."""
        n = len(polyhedra)
        checks = list(cancel_checks) if cancel_checks is not None else [None] * n
        result = BatchResult(
            members=[BatchMemberResult() for _ in range(n)], occupancy=n
        )
        # (estimate, probed, fallback, reason) per member; None = errored.
        plans: list[tuple[float, int, bool, str] | None] = [None] * n
        kd_group: list[int] = []
        scan_group: list[int] = []
        for m, (polyhedron, check) in enumerate(zip(polyhedra, checks)):
            if check is not None:
                try:
                    check()
                except BaseException as exc:
                    result.members[m].error = exc
                    continue
            fallback = False
            reason = ""
            try:
                estimate, probed = self.estimate_selectivity(polyhedron)
            except StorageFault as exc:
                estimate, probed = float("nan"), 0
                fallback = True
                reason = f"selectivity probe failed: {type(exc).__name__}"
            plans[m] = (estimate, probed, fallback, reason)
            if estimate <= self.crossover:  # NaN compares False -> scan
                kd_group.append(m)
            else:
                scan_group.append(m)

        self._run_group(
            kd_group,
            polyhedra,
            checks,
            plans,
            result,
            path="kdtree",
            runner=lambda polys, chks: batch_kd_query(self.index, polys, chks),
        )
        self._run_group(
            scan_group,
            polyhedra,
            checks,
            plans,
            result,
            path="scan",
            runner=lambda polys, chks: polyhedron_batch_full_scan(
                self.index.table, self.index.dims, polys, chks
            ),
        )
        return result

    def _run_group(
        self,
        group: list[int],
        polyhedra,
        checks,
        plans,
        result: BatchResult,
        path: str,
        runner,
    ) -> None:
        """Run one same-path member group through its shared executor.

        Fills ``result.members[m]`` for every ``m`` in ``group`` and
        folds the group's shared-work counters into ``result``.  On a
        group-level :class:`StorageFault` every member is re-run solo.
        """
        if not group:
            return
        try:
            outcomes, counters = runner(
                [polyhedra[m] for m in group], [checks[m] for m in group]
            )
        except StorageFault as exc:
            # The shared pass died; peel the members apart so each gets
            # the solo path's own retries and fallback, and a terminal
            # fault stays confined to its member.
            reason = f"batch {path} pass failed: {type(exc).__name__}"
            for m in group:
                try:
                    planned = self.execute(polyhedra[m], cancel_check=checks[m])
                except BaseException as solo_exc:
                    result.members[m].error = solo_exc
                    continue
                if not planned.fallback:
                    planned.fallback = True
                    planned.fallback_reason = reason
                result.members[m].planned = planned
            return
        result.pages_decoded += counters["pages_decoded"]
        result.shared_decode_hits += counters["shared_decode_hits"]
        for m, (rows, stats, error) in zip(group, outcomes):
            if error is not None:
                result.members[m].error = error
                continue
            estimate, probed, fallback, reason = plans[m]
            result.members[m].planned = PlannedQuery(
                rows=rows,
                stats=stats,
                chosen_path=path,
                estimated_selectivity=estimate,
                sampled_pages=probed,
                fallback=fallback,
                fallback_reason=reason,
            )
