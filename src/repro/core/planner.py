"""A cost-based access-path planner.

The paper's rule of thumb -- "if the ratio of the returned / total
number of rows is below 0.25 kd-trees can outperform simple SQL queries
by orders of magnitudes" (§3.2) -- is a planning rule: estimate the
query's selectivity, then choose the index or the scan.  This module
implements that loop the way a real engine would:

1. estimate selectivity from a small *page sample* (a TABLESAMPLE-style
   probe: cheap, biased only by intra-page correlation);
2. choose the access path: the paper's crossover rule picks the
   kd-tree-vs-scan baseline, and when a binned bitmap index exists over
   the table a second cost-based stage compares the baseline against
   the bitmap engine and the hybrid (bitmap prefilter restricted to the
   kd traversal's row ranges) on estimated pages decoded;
3. execute and report both the choice and the estimate, so experiments
   can score the planner against exhaustive execution.

The cost model is calibrated online: per engine, an EWMA of
actual/predicted pages decoded multiplies future predictions, and the
running estimated-vs-actual selectivity error feeds back into the
bitmap cost's candidate fraction.  ``cost_report()`` exposes the
calibration state for tests and the service metrics.

The planner is also where the engine degrades gracefully under storage
faults: when an index path dies on an unrecoverable
:class:`~repro.db.errors.StorageFault` (every retry budget below it
exhausted), the planner falls back to the full scan rather than failing
the query -- the scan re-reads the pages, and a transient burst that
killed the traversal has usually passed.  Fallbacks are reported on the
:class:`PlannedQuery` so the service can surface them in its metrics.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.bitmap.executor import (
    batch_bitmap_query,
    batch_hybrid_query,
    bitmap_query,
    hybrid_query,
)
from repro.bitmap.index import axis_bounds
from repro.core.batch import BatchMemberResult, BatchResult, batch_kd_query
from repro.core.kdtree import KdTreeIndex
from repro.core.queries import polyhedron_batch_full_scan, polyhedron_full_scan
from repro.db.errors import StaleLayoutError, StorageFault
from repro.db.stats import QueryStats
from repro.geometry.halfspace import Polyhedron

logger = logging.getLogger(__name__)

__all__ = ["PlannedQuery", "QueryPlanner"]

#: Backstop on re-running a query after background merges retire the
#: generation it was reading.  Each retry is gated on the physical
#: layout actually having moved (a stale error without a swap re-raises
#: immediately), so the loop cannot spin on a genuine missing-page bug;
#: the cap only guards against a writer merging in a pathological tight
#: loop faster than any query can finish.
_STALE_LAYOUT_RETRIES = 32

#: EWMA smoothing for the online cost calibration.
_CALIBRATION_ALPHA = 0.2

#: Per-observation clamp on actual/predicted pages, so one outlier
#: query cannot swing an engine's calibration by orders of magnitude.
_CALIBRATION_CLAMP = (0.1, 10.0)

_ENGINES = ("kdtree", "scan", "bitmap", "hybrid")

#: Cost weight of one paged-index node page relative to a data page.
#: Node pages are small, compressed, and usually node-cache resident,
#: so a traversal's index I/O is a light surcharge, not a data read.
_INDEX_PAGE_READ_COST = 0.25


@dataclass
class PlannedQuery:
    """Outcome of a planned execution.

    ``fallback`` is set when the query was answered by a different path
    than the planner chose because the chosen one hit an unrecoverable
    storage fault (or a forced engine was unavailable);
    ``fallback_reason`` names the cause.  ``actual_selectivity`` is
    returned rows / live rows -- compared against
    ``estimated_selectivity`` it yields the service's
    ``selectivity_error`` metric.

    The shard fields stay at their zero defaults on a single-index
    planner; a sharded engine (:class:`repro.shard.ScatterGatherExecutor`)
    fills them in.  ``partial`` means at least one shard died on an
    unrecoverable fault and the result covers only the surviving shards;
    ``failed_shards`` names the casualties.
    """

    rows: dict
    stats: QueryStats
    chosen_path: str
    estimated_selectivity: float
    sampled_pages: int
    fallback: bool = False
    fallback_reason: str = ""
    actual_selectivity: float = float("nan")
    shards_dispatched: int = 0
    shards_pruned: int = 0
    shard_faults: int = 0
    partial: bool = False
    failed_shards: tuple = ()
    #: Set by routing layers for answers that must not enter the result
    #: cache (e.g. served by a non-preferred replica during degradation,
    #: whose execution profile another replica's fingerprint must never
    #: inherit).
    no_cache: bool = False


class QueryPlanner:
    """Chooses among kd-tree, scan, bitmap, and hybrid per query.

    Parameters
    ----------
    index:
        The kd-tree index over the table (the planner's fast path).
    crossover:
        Selectivity above which the scan is the baseline; the paper's
        0.25.
    sample_pages:
        Pages probed for the selectivity estimate.
    engine:
        ``"auto"`` (cost-based choice) or a forced engine out of
        ``kdtree``/``kd``, ``scan``, ``bitmap``, ``hybrid`` for A/B
        runs.  Forcing ``bitmap``/``hybrid`` without a registered
        bitmap index degrades to the baseline choice and annotates the
        result as a fallback.
    """

    def __init__(
        self,
        index: KdTreeIndex,
        crossover: float = 0.25,
        sample_pages: int = 8,
        seed: int = 0,
        statistics=None,
        engine: str = "auto",
    ):
        """``statistics`` may be a
        :class:`repro.db.histogram.HistogramStatistics` built over the
        index's dims; when present the planner estimates from it
        (zero plan-time I/O) instead of probing pages.
        """
        if not (0.0 < crossover <= 1.0):
            raise ValueError("crossover must be in (0, 1]")
        if sample_pages < 1:
            raise ValueError("sample_pages must be >= 1")
        engine = {"kd": "kdtree"}.get(engine, engine)
        if engine != "auto" and engine not in _ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
        self._index = index
        self._db = index.table.database
        self._index_key = f"{index.table.name}.kdtree"
        self._bitmap_key = f"{index.table.name}.bitmap"
        self.crossover = crossover
        self.sample_pages = sample_pages
        self.statistics = statistics
        self.engine = engine
        self._rng = np.random.default_rng(seed)
        # The query service shares one planner across worker threads;
        # numpy Generators are not thread-safe, so draws are serialized.
        self._rng_lock = threading.Lock()
        # The probe's sampled points, cached per table snapshot: tables
        # are immutable once created, so concurrent queries need not
        # re-read the same sample pages -- the first probe pays the I/O
        # and every later estimate evaluates against the cached points.
        # Catalog mutations (drop/recreate) invalidate the cache through
        # the same listener channel the result cache rides on.
        self._probe_lock = threading.Lock()
        self._probe_cache: tuple[np.ndarray, int] | None = None
        # Online cost-model state, shared across worker threads.
        self._cost_lock = threading.Lock()
        self._calibration: dict[str, float] = {name: 1.0 for name in _ENGINES}
        self._selectivity_bias = 0.0
        self._selectivity_abs_error = 0.0
        self._observations = 0
        #: Optional workload-trace hook (:mod:`repro.tune.trace`): when
        #: set, every executed query is folded into the recorder's ring.
        self.trace_recorder = None
        #: Replica tag stamped on recorded observations (router use).
        self.trace_tag = ""
        self._restore_calibration()
        index.table.database.add_mutation_listener(self._on_catalog_mutation)

    def _restore_calibration(self) -> None:
        """Warm-start cost state from the catalog's persisted snapshot.

        A reattached database carries the calibration its planners
        learned before shutdown; without a snapshot (fresh build, older
        catalog version) the neutral defaults stand.
        """
        loader = getattr(self._db, "planner_calibration", None)
        if not callable(loader):
            return
        snapshot = loader(self._index.table.name)
        if not snapshot:
            return
        low, high = _CALIBRATION_CLAMP
        with self._cost_lock:
            for name, value in snapshot.get("calibration", {}).items():
                if name in self._calibration and np.isfinite(value):
                    self._calibration[name] = min(high, max(low, float(value)))
            self._selectivity_bias = float(snapshot.get("selectivity_bias", 0.0))
            self._selectivity_abs_error = float(
                snapshot.get("selectivity_abs_error", 0.0)
            )
            self._observations = int(snapshot.get("observations", 0))

    def _on_catalog_mutation(self, table_name: str) -> None:
        if table_name == self.index.table.name:
            with self._probe_lock:
                self._probe_cache = None

    @property
    def index(self) -> KdTreeIndex:
        """The current kd-tree index, re-resolved through the catalog.

        A background merge swaps a fresh index object into the catalog
        under the same key; resolving per access means the planner picks
        up the new generation without being re-wired.  Falls back to the
        construction-time index when the catalog entry is gone (e.g. an
        index built outside the catalog in tests).
        """
        current = self._db.index_if_exists(self._index_key)
        return current if current is not None else self._index

    @property
    def bitmap_index(self):
        """The table's bitmap index, or ``None`` when none is registered.

        Resolved through the catalog on every access for the same
        reason as :attr:`index`: background merges rebuild and swap it.
        Its absence simply disables the cost-based second stage.
        """
        return self._db.index_if_exists(self._bitmap_key)

    # -- engine protocol ----------------------------------------------------
    # The query service treats its execution engine as anything with
    # execute(polyhedron, cancel_check) plus these identity properties;
    # the sharded ScatterGatherExecutor implements the same contract.

    @property
    def table_name(self) -> str:
        """Name of the table results come from (cache fingerprinting)."""
        return self.index.table.name

    @property
    def dims(self) -> list[str]:
        """Ordered coordinate column names of the underlying index."""
        return self.index.dims

    @property
    def layout_version(self) -> str:
        """Physical-layout tag folded into result-cache fingerprints.

        Tracks the table's generation and write epoch
        (``g<gen>.e<epoch>``): every ingest write and every merge bumps
        it, so a cached result can never be served across a layout or
        delta change.  Sharded engines return a digest of their shard
        boundaries (plus per-shard epochs) instead.
        """
        return f"unsharded:{self.index.table.layout_version}"

    def estimate_selectivity(self, polyhedron: Polyhedron) -> tuple[float, int]:
        """Page-sample estimate of returned/total.

        Returns ``(estimate, pages_probed)``.  Clustered tables make the
        pages spatially coherent, so the probe uses a spread of pages
        across the whole file rather than a contiguous prefix.
        """
        if self.statistics is not None:
            return self.statistics.estimate_polyhedron(polyhedron), 0
        points, probed = self._probe_sample()
        if len(points) == 0:
            return 0.0, 0
        return float(polyhedron.contains_points(points).sum()) / len(points), probed

    def _probe_sample(self) -> tuple[np.ndarray, int]:
        """The cached probe point sample, reading the pages on first use.

        Returns ``(points, pages_probed)`` where ``points`` stacks the
        coordinate columns of the sampled pages.  The sample is drawn
        once per table snapshot; a concurrent first call may probe twice
        (both reads land in the buffer pool), after which every caller
        shares one array.
        """
        with self._probe_lock:
            cached = self._probe_cache
        if cached is not None:
            return cached
        table = self.index.table
        if table.num_pages == 0:
            sample: tuple[np.ndarray, int] = (np.empty((0, len(self.index.dims))), 0)
            with self._probe_lock:
                self._probe_cache = sample
            return sample
        probe = min(self.sample_pages, table.num_pages)
        page_ids = np.linspace(0, table.num_pages - 1, probe).astype(int)
        # Jitter to avoid aliasing with any periodic layout.
        with self._rng_lock:
            jitter = self._rng.integers(0, max(table.num_pages // probe, 1), probe)
        page_ids = np.minimum(page_ids + jitter, table.num_pages - 1)
        dims = self.index.dims
        probe_ids = [int(page_id) for page_id in np.unique(page_ids)]
        # The probe pages are scattered across the file; one coalesced
        # read pulls them all into the pool instead of N round trips
        # (unless the engine was configured with read-ahead disabled).
        if table.readahead_pages:
            table.prefetch(probe_ids)
        pieces = []
        for page_id in probe_ids:
            page = table.read_page(page_id)
            if page.num_rows:
                pieces.append(np.column_stack([page.columns[d] for d in dims]))
        points = (
            np.concatenate(pieces) if pieces else np.empty((0, len(dims)))
        )
        sample = (points, len(probe_ids))
        with self._probe_lock:
            self._probe_cache = sample
        return sample

    # -- cost model ---------------------------------------------------------

    def _axis_fractions(self, polyhedron: Polyhedron) -> np.ndarray:
        """Per-axis survival fractions of the query's bounding slab.

        Fraction of the probe sample inside ``[low_i, high_i]`` for every
        axis the polyhedron constrains axis-aligned (1.0 elsewhere);
        the kd cost's per-level split-survival input.
        """
        dim = len(self.index.dims)
        fractions = np.ones(dim)
        lows, highs = axis_bounds(polyhedron, dim)
        constrained = np.isfinite(lows) | np.isfinite(highs)
        if not constrained.any():
            return fractions
        try:
            points, _ = self._probe_sample()
        except StorageFault:
            return fractions
        if len(points) == 0:
            return fractions
        floor = 1.0 / len(points)
        for axis in np.nonzero(constrained)[0]:
            inside = (points[:, axis] >= lows[axis]) & (points[:, axis] <= highs[axis])
            fractions[axis] = max(float(inside.mean()), floor)
        return fractions

    def _raw_costs(self, polyhedron: Polyhedron, memberships) -> dict[str, float]:
        """Predicted pages decoded per engine, before calibration.

        - ``scan``: every page.
        - ``kdtree``: leaves whose cell survives the per-axis slab
          fractions (each axis contributes ``f_i * L^(1/d) + 1`` of its
          ``L^(1/d)`` splits -- the +1 is the straddling cell), times
          pages per leaf.
        - ``bitmap``: the exact candidate page count.  The candidate
          superset comes from in-memory bitmap ANDs, so before any page
          read the planner already knows which pages it lands on; the
          kd-clustered layout makes that far smaller than one page per
          candidate row.  When nothing constrains the index the fraction
          estimate (nudged by the running selectivity bias) stands in.
        - ``hybrid``: the independence-assumption intersection of the kd
          and bitmap page sets, plus a small constant for the extra
          traversal; never worse than either input.
        """
        index = self.index
        table = index.table
        num_pages = max(1, table.num_pages)
        num_rows = max(1, table.num_rows)
        rows_per_page = max(1, table.rows_per_page)
        costs: dict[str, float] = {"scan": float(num_pages)}

        leaves = max(1, index.tree.num_leaves)
        dim = max(1, len(index.dims))
        per_axis_splits = leaves ** (1.0 / dim)
        leaves_hit = 1.0
        for fraction in self._axis_fractions(polyhedron):
            leaves_hit *= min(per_axis_splits, fraction * per_axis_splits + 1.0)
        leaves_hit = min(float(leaves), leaves_hit)
        pages_per_leaf = max(1.0, num_rows / (leaves * rows_per_page))
        costs["kdtree"] = min(float(num_pages), leaves_hit * pages_per_leaf)
        layout = getattr(index.tree, "layout", None)
        if layout is not None:
            # Paged tree: the traversal itself reads index node pages.
            # Discounted relative to data pages -- node pages are served
            # from the tree's node cache on repeat and a traversal's
            # working set is a few pages -- but nonzero, so kd never
            # looks free against scan on a table small enough that the
            # index rivals the data.
            node_pages = min(
                float(layout.num_pages),
                1.0 + 2.0 * leaves_hit / max(1, layout.nodes_per_page),
            )
            costs["kdtree"] += _INDEX_PAGE_READ_COST * node_pages

        bitmap = self.bitmap_index
        if bitmap is None:
            costs["bitmap"] = float("inf")
            costs["hybrid"] = float("inf")
            return costs
        candidate = bitmap.candidate_bitmap(polyhedron, memberships)
        if candidate is None:
            # Nothing constrains the index: fall back to the fraction
            # estimate, corrected by the observed selectivity bias.
            fraction = bitmap.estimate_fraction(polyhedron, memberships)
            if fraction is None:
                fraction = 1.0
            with self._cost_lock:
                bias = self._selectivity_bias
            fraction = min(1.0, max(1.0 / num_rows, fraction + bias))
            costs["bitmap"] = min(float(num_pages), max(1.0, fraction * num_rows))
        else:
            candidate_pages = len(
                np.unique(candidate.to_indices() // rows_per_page)
            )
            costs["bitmap"] = min(float(num_pages), max(1.0, float(candidate_pages)))
        hybrid = max(1.0, costs["kdtree"] * costs["bitmap"] / num_pages)
        costs["hybrid"] = min(costs["kdtree"], costs["bitmap"], hybrid) + 2.0
        return costs

    def _calibrated(self, raw: dict[str, float]) -> dict[str, float]:
        with self._cost_lock:
            calibration = dict(self._calibration)
        return {name: cost * calibration.get(name, 1.0) for name, cost in raw.items()}

    def _choose_engine(
        self, estimate: float, raw: dict[str, float]
    ) -> tuple[str, dict[str, float], str]:
        """Pick the engine; returns ``(engine, calibrated_costs, fallback_reason)``.

        Stage 1 is the paper's crossover rule (kd below, scan above;
        a NaN estimate from a failed probe chooses the scan).  Stage 2
        runs only when a bitmap index exists: the baseline competes
        against the bitmap and hybrid engines on calibrated predicted
        pages, ties going to the earlier entrant (baseline first).
        """
        calibrated = self._calibrated(raw)
        baseline = "kdtree" if estimate <= self.crossover else "scan"
        if self.engine != "auto":
            if self.engine in ("bitmap", "hybrid") and self.bitmap_index is None:
                return (
                    baseline,
                    calibrated,
                    f"forced engine {self.engine!r} unavailable: no bitmap index",
                )
            return self.engine, calibrated, ""
        if self.bitmap_index is None:
            return baseline, calibrated, ""
        best = baseline
        for candidate in ("bitmap", "hybrid"):
            if calibrated[candidate] < calibrated[best]:
                best = candidate
        return best, calibrated, ""

    def _observe(
        self,
        engine: str,
        raw_cost: float | None,
        stats: QueryStats,
        estimate: float,
        actual: float,
    ) -> None:
        """Fold one executed query back into the cost-model state."""
        low, high = _CALIBRATION_CLAMP
        alpha = _CALIBRATION_ALPHA
        with self._cost_lock:
            if (
                engine in self._calibration
                and raw_cost is not None
                and np.isfinite(raw_cost)
                and raw_cost > 0
            ):
                ratio = min(high, max(low, stats.pages_touched / raw_cost))
                blended = (1 - alpha) * self._calibration[engine] + alpha * ratio
                self._calibration[engine] = min(high, max(low, blended))
            if np.isfinite(estimate):
                error = actual - estimate
                self._selectivity_bias = (
                    (1 - alpha) * self._selectivity_bias + alpha * error
                )
                self._selectivity_abs_error = (
                    (1 - alpha) * self._selectivity_abs_error + alpha * abs(error)
                )
            self._observations += 1
            snapshot = {
                "calibration": dict(self._calibration),
                "selectivity_bias": self._selectivity_bias,
                "selectivity_abs_error": self._selectivity_abs_error,
                "observations": self._observations,
            }
        # Outside the cost lock: hand the catalog the latest snapshot so
        # save_catalog persists learned constants across restarts.
        saver = getattr(self._db, "save_planner_calibration", None)
        if callable(saver):
            saver(self._index.table.name, snapshot)

    def cost_report(self) -> dict:
        """Snapshot of the online calibration state (tests, metrics)."""
        with self._cost_lock:
            return {
                "calibration": dict(self._calibration),
                "selectivity_bias": self._selectivity_bias,
                "selectivity_abs_error": self._selectivity_abs_error,
                "observations": self._observations,
            }

    def predict_cost(self, polyhedron: Polyhedron, memberships=None) -> float:
        """Calibrated predicted pages decoded for this query, no execution.

        The replica router's scoring primitive: the cheapest engine's
        calibrated cost (the bitmap term is the exact in-memory candidate
        page count).  A probe fault degrades to the scan bound -- every
        page -- so a sick replica prices itself out of routing.
        """
        try:
            raw = self._raw_costs(polyhedron, memberships)
        except StorageFault:
            return float(max(1, self.index.table.num_pages))
        finite = [
            cost
            for cost in self._calibrated(raw).values()
            if np.isfinite(cost)
        ]
        if not finite:
            return float(max(1, self.index.table.num_pages))
        return min(finite)

    def _record_trace(self, polyhedron, memberships, planned, wall_s) -> None:
        """Fold an executed query into the attached trace ring, if any.

        Never raises: trace capture is observability, not the query
        path, so a recorder bug must not fail user queries.
        """
        recorder = self.trace_recorder
        if recorder is None:
            return
        try:
            recorder.record(
                self.table_name,
                self.dims,
                polyhedron,
                memberships,
                planned,
                wall_s,
                replica=self.trace_tag,
            )
        except Exception:  # pragma: no cover - defensive
            logger.exception("trace recording failed")

    def _finalize(
        self, planned: PlannedQuery, raw: dict[str, float], calibrated: dict[str, float]
    ) -> PlannedQuery:
        """Record cost extras, actual selectivity, and calibration feedback."""
        stats = planned.stats
        for name, cost in calibrated.items():
            if np.isfinite(cost):
                stats.extra[f"cost_{name}"] = float(cost)
        actual = planned.stats.rows_returned / max(1, self.index.table.num_live_rows)
        planned.actual_selectivity = actual
        self._observe(
            planned.chosen_path,
            raw.get(planned.chosen_path),
            stats,
            planned.estimated_selectivity,
            actual,
        )
        return planned

    # -- planning -----------------------------------------------------------

    def _plan_member(self, polyhedron: Polyhedron, memberships):
        """Estimate + engine choice for one query.

        Returns ``(engine, estimate, probed, fallback, reason, raw,
        calibrated)``.  The estimate folds the membership lists' bin-mass
        fraction in (when a bitmap index can supply one), so an IN-list
        query over a full-space box still reads as selective.
        """
        fallback = False
        reason = ""
        try:
            estimate, probed = self.estimate_selectivity(polyhedron)
        except StorageFault as exc:
            estimate, probed = float("nan"), 0
            fallback = True
            reason = f"selectivity probe failed: {type(exc).__name__}"
        if memberships:
            bitmap = self.bitmap_index
            if bitmap is not None:
                member_fraction = bitmap.estimate_fraction(None, memberships)
                if member_fraction is not None:
                    estimate *= member_fraction
        try:
            raw = self._raw_costs(polyhedron, memberships)
        except StorageFault:
            raw = {"scan": float(self.index.table.num_pages or 1)}
        engine, calibrated, forced_reason = self._choose_engine(estimate, raw)
        if forced_reason and not fallback:
            fallback, reason = True, forced_reason
        return engine, estimate, probed, fallback, reason, raw, calibrated

    def execute(
        self, polyhedron: Polyhedron, cancel_check=None, memberships=None
    ) -> PlannedQuery:
        """Estimate, choose a path, run, and report.

        ``cancel_check`` is a zero-argument callable (or ``None``) run
        between planning and execution and inside the chosen executor's
        page/node loops; raising from it abandons the query cooperatively
        -- this is how the query service enforces per-query deadlines.
        ``memberships`` maps column names to IN-list value arrays, ANDed
        with the polyhedron on every engine.

        Degradation: a :class:`~repro.db.errors.StorageFault` during the
        selectivity probe forfeits the estimate (the scan path is chosen,
        which needs none); one during an index path (kd, bitmap, hybrid)
        falls back to the full scan.  A fault from the scan itself
        propagates -- there is nothing cheaper left to degrade to.

        A :class:`~repro.db.errors.StaleLayoutError` is different: it
        means a background merge retired the generation this query was
        reading, so the whole query re-runs against the re-resolved
        current layout (see :meth:`_retry_when_stale`).
        """
        return self._retry_when_stale(
            lambda: self._execute_once(polyhedron, cancel_check, memberships)
        )

    def _retry_when_stale(self, attempt):
        """Run ``attempt``, re-running it whenever the layout moved under it.

        Re-runs only when the physical generation observed through the
        catalog actually changed since the attempt started -- a stale
        error without a swap means a genuinely missing page and is
        re-raised at once.  Every retry therefore consumes one concurrent
        merge swap; ``_STALE_LAYOUT_RETRIES`` bounds the pathological
        case of a writer merging faster than any query can complete.
        """
        for _ in range(_STALE_LAYOUT_RETRIES):
            before = self.index.table.physical_name
            try:
                return attempt()
            except StaleLayoutError:
                with self._probe_lock:
                    self._probe_cache = None
                if self.index.table.physical_name == before:
                    raise
        return attempt()

    def _run_engine(self, engine: str, polyhedron, cancel_check, memberships):
        """Dispatch one query to one engine; returns ``(rows, stats)``."""
        if engine == "kdtree":
            return self.index.query_polyhedron(
                polyhedron, cancel_check=cancel_check, memberships=memberships
            )
        if engine == "bitmap":
            return bitmap_query(
                self.bitmap_index,
                polyhedron,
                memberships=memberships,
                cancel_check=cancel_check,
            )
        if engine == "hybrid":
            return hybrid_query(
                self.index,
                self.bitmap_index,
                polyhedron,
                memberships=memberships,
                cancel_check=cancel_check,
            )
        return polyhedron_full_scan(
            self.index.table,
            self.index.dims,
            polyhedron,
            cancel_check=cancel_check,
            memberships=memberships,
        )

    def _execute_once(
        self, polyhedron: Polyhedron, cancel_check=None, memberships=None
    ) -> PlannedQuery:
        """One planning-and-execution attempt against the current layout."""
        if cancel_check is not None:
            cancel_check()
        engine, estimate, probed, fallback, reason, raw, calibrated = (
            self._plan_member(polyhedron, memberships)
        )
        if cancel_check is not None:
            cancel_check()
        started = time.perf_counter()
        try:
            rows, stats = self._run_engine(engine, polyhedron, cancel_check, memberships)
            path = engine
        except StorageFault as exc:
            if engine == "scan":
                raise
            fallback = True
            reason = f"{engine} path failed: {type(exc).__name__}"
            rows, stats = self._run_engine("scan", polyhedron, cancel_check, memberships)
            path = "scan"
        planned = self._finalize(
            PlannedQuery(
                rows=rows,
                stats=stats,
                chosen_path=path,
                estimated_selectivity=estimate,
                sampled_pages=probed,
                fallback=fallback,
                fallback_reason=reason,
            ),
            raw,
            calibrated,
        )
        self._record_trace(
            polyhedron, memberships, planned, time.perf_counter() - started
        )
        return planned

    def execute_batch(
        self, polyhedra, cancel_checks=None, memberships_list=None
    ) -> BatchResult:
        """Plan and run a micro-batch of queries with shared work.

        Members are planned individually (the cached probe makes the
        estimates zero-I/O after the first), then grouped by chosen
        engine: the kd group runs one multi-box traversal
        (:func:`~repro.core.batch.batch_kd_query`), the scan group one
        shared scan pass, and the bitmap / hybrid groups one shared
        candidate-page fetch each -- a batch's members may split across
        engines, every group decoding each needed page once for all of
        its members.

        Isolation matches the batch executors underneath: a member whose
        ``cancel_check`` raises is recorded as that member's ``error``
        and its siblings keep going.  A :class:`StorageFault` that kills
        a *shared* pass degrades that group's members to independent
        :meth:`execute` calls -- each then gets the solo path's own retry
        and fallback-to-scan, and one member's terminal fault cannot
        take down the rest of the batch.

        A :class:`~repro.db.errors.StaleLayoutError` anywhere in the
        batch (a merge retired the layout mid-flight) restarts the whole
        batch against the re-resolved current layout, exactly like the
        solo path (see :meth:`_retry_when_stale`).
        """
        return self._retry_when_stale(
            lambda: self._execute_batch_once(polyhedra, cancel_checks, memberships_list)
        )

    def _execute_batch_once(
        self, polyhedra, cancel_checks=None, memberships_list=None
    ) -> BatchResult:
        """One shared-work attempt against the current layout."""
        n = len(polyhedra)
        checks = list(cancel_checks) if cancel_checks is not None else [None] * n
        member_filters = (
            list(memberships_list) if memberships_list is not None else [None] * n
        )
        result = BatchResult(
            members=[BatchMemberResult() for _ in range(n)], occupancy=n
        )
        # (estimate, probed, fallback, reason, raw, calibrated) per
        # member; None = errored before planning finished.
        plans: list[tuple | None] = [None] * n
        groups: dict[str, list[int]] = {name: [] for name in _ENGINES}
        for m, (polyhedron, check) in enumerate(zip(polyhedra, checks)):
            if check is not None:
                try:
                    check()
                except BaseException as exc:
                    result.members[m].error = exc
                    continue
            engine, estimate, probed, fallback, reason, raw, calibrated = (
                self._plan_member(polyhedron, member_filters[m])
            )
            plans[m] = (estimate, probed, fallback, reason, raw, calibrated)
            groups[engine].append(m)

        bitmap = self.bitmap_index
        runners = {
            "kdtree": lambda polys, chks, mlist: batch_kd_query(
                self.index, polys, chks, memberships_list=mlist
            ),
            "scan": lambda polys, chks, mlist: polyhedron_batch_full_scan(
                self.index.table, self.index.dims, polys, chks,
                memberships_list=mlist,
            ),
            "bitmap": lambda polys, chks, mlist: batch_bitmap_query(
                bitmap, polys, chks, memberships_list=mlist
            ),
            "hybrid": lambda polys, chks, mlist: batch_hybrid_query(
                self.index, bitmap, polys, chks, memberships_list=mlist
            ),
        }
        for engine in _ENGINES:
            self._run_group(
                groups[engine],
                polyhedra,
                checks,
                member_filters,
                plans,
                result,
                path=engine,
                runner=runners[engine],
            )
        return result

    def _run_group(
        self,
        group: list[int],
        polyhedra,
        checks,
        member_filters,
        plans,
        result: BatchResult,
        path: str,
        runner,
    ) -> None:
        """Run one same-engine member group through its shared executor.

        Fills ``result.members[m]`` for every ``m`` in ``group`` and
        folds the group's shared-work counters into ``result``.  On a
        group-level :class:`StorageFault` every member is re-run solo.
        """
        if not group:
            return
        started = time.perf_counter()
        try:
            outcomes, counters = runner(
                [polyhedra[m] for m in group],
                [checks[m] for m in group],
                [member_filters[m] for m in group],
            )
        except StorageFault as exc:
            # The shared pass died; peel the members apart so each gets
            # the solo path's own retries and fallback, and a terminal
            # fault stays confined to its member.
            reason = f"batch {path} pass failed: {type(exc).__name__}"
            for m in group:
                try:
                    planned = self.execute(
                        polyhedra[m],
                        cancel_check=checks[m],
                        memberships=member_filters[m],
                    )
                except BaseException as solo_exc:
                    result.members[m].error = solo_exc
                    continue
                if not planned.fallback:
                    planned.fallback = True
                    planned.fallback_reason = reason
                result.members[m].planned = planned
            return
        group_wall = time.perf_counter() - started
        result.pages_decoded += counters["pages_decoded"]
        result.shared_decode_hits += counters["shared_decode_hits"]
        # The shared pass served the whole group at once; attribute an
        # equal share of its wall time to each member's trace entry.
        member_wall = group_wall / max(1, len(group))
        for m, (rows, stats, error) in zip(group, outcomes):
            if error is not None:
                result.members[m].error = error
                continue
            estimate, probed, fallback, reason, raw, calibrated = plans[m]
            planned = self._finalize(
                PlannedQuery(
                    rows=rows,
                    stats=stats,
                    chosen_path=path,
                    estimated_selectivity=estimate,
                    sampled_pages=probed,
                    fallback=fallback,
                    fallback_reason=reason,
                ),
                raw,
                calibrated,
            )
            result.members[m].planned = planned
            self._record_trace(polyhedra[m], member_filters[m], planned, member_wall)
