"""Paged on-disk kd-tree: node arrays in compressed storage pages.

The in-memory :class:`~repro.core.kdtree.KdTree` holds every node array
in process RAM, which caps index size at memory and makes worker spawn
cost scale with tree size (each process shard used to receive a pickled
tree).  This module serializes those arrays into fixed-size
zlib-compressed pages (``RPGZ``) under an index namespace in the same
:class:`~repro.db.storage.Storage` that holds the data pages, and serves
traversals through :class:`PagedKdTree`, which materializes node pages
lazily via the shared :class:`~repro.db.buffer_pool.BufferPool` -- so
index I/O gets the same coalesced read-ahead, CRC32 verify-once
discipline, and fault/retry/torn-page semantics as data I/O.

Layout.  Nodes are written in **post-order** (the paper's §3.2
numbering), sliced into groups of ``nodes_per_page``.  Post-order keeps
subtrees page-local: the descendants of any node occupy a contiguous
run of post-order slots ending at the node itself, so a depth-first
traversal walks pages mostly sequentially and the read-ahead window
actually helps.  Because the tree is a perfect binary heap, a node's
post-order position is *computable from its heap index alone*
(:func:`post_order_index`): structural queries -- post-order ids,
BETWEEN ranges, subtree sizes -- need no I/O at all.  Only the
geometry (split planes, partition/tight boxes) and row ranges live in
pages.

Above the buffer pool sits a small byte-budgeted **node cache** per
tree: decoded node pages with their box columns reshaped to ``(n, dim)``
so ``partition_box``/``tight_box`` return zero-copy row views.  Its
budget (:data:`~repro.db.buffer_pool.DEFAULT_INDEX_CACHE_BYTES`, 4 MB)
is deliberately far below a deep tree's node arrays -- the point of the
exercise is an index working set bounded regardless of index size.
Hits, misses, materializations, and evictions are counted in
:class:`~repro.db.stats.IOStats` (``node_cache_*``,
``index_pages_decoded``).

Design per breezy's ``btree_index.py`` (zlib node pages, bounded
``_NODE_CACHE_SIZE``, hit-rate counters); the bulk write in post-order
follows the external bulk-loading playbook for space-partitioning trees.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.db.errors import StorageFault
from repro.db.buffer_pool import DEFAULT_INDEX_CACHE_BYTES
from repro.db.pages import Page
from repro.db.storage import index_namespace
from repro.geometry.boxes import Box

__all__ = [
    "DEFAULT_NODES_PER_PAGE",
    "PagedTreeLayout",
    "PagedKdTree",
    "post_order_index",
    "tree_node_pages",
    "write_paged_tree",
    "paged_tree_for",
]

#: Nodes per index page.  At ~200 bytes of node payload in 3-4
#: dimensions this is ~100-200 KB uncompressed per page -- large enough
#: that zlib sees real redundancy across sibling boxes, small enough
#: that a 4 MB node cache holds dozens of pages.
DEFAULT_NODES_PER_PAGE = 512


def post_order_index(node: int, num_levels: int) -> int:
    """0-based post-order position of heap node ``node`` -- pure arithmetic.

    The root-to-node path is encoded in the heap index's bits: every
    right turn skips the whole left sibling subtree (post-order visits
    it first), and the node itself is the *last* slot of its own
    subtree.  In a perfect binary tree every subtree size is determined
    by depth alone, so the sum over right turns telescopes to a closed
    form: with ``d = depth(node)`` and ``s = 2**(num_levels - d)``,

        post_order = (node - 2**d + 1) * s - 1 - popcount(node)

    (each path bit contributes ``bit * 2**(num_levels - k) - bit``;
    the powers collapse into the shifted node index, the ``- bit``
    terms into the popcount).  This runs on every node-cache probe, so
    O(1) here is measurable on traversal-heavy workloads.
    """
    node = int(node)
    depth = node.bit_length() - 1
    span = 1 << (num_levels - depth)
    return (node - (1 << depth) + 1) * span - 1 - node.bit_count()


def subtree_size(node: int, num_levels: int) -> int:
    """Number of nodes in the subtree rooted at ``node`` (arithmetic)."""
    return 2 ** (num_levels - int(node).bit_length() + 1) - 1


@dataclass(frozen=True)
class PagedTreeLayout:
    """Everything needed to reopen a paged tree without reading a page.

    Persisted in the catalog (``kd_indexes``) and shipped to process
    shard workers inside a :class:`~repro.shard.partitioner.ShardSpec`
    in place of a pickled tree.
    """

    num_points: int
    num_levels: int
    dim: int
    axis_policy: str
    nodes_per_page: int
    num_pages: int

    def to_dict(self) -> dict:
        return {
            "num_points": self.num_points,
            "num_levels": self.num_levels,
            "dim": self.dim,
            "axis_policy": self.axis_policy,
            "nodes_per_page": self.nodes_per_page,
            "num_pages": self.num_pages,
        }

    @staticmethod
    def from_dict(payload: dict) -> "PagedTreeLayout":
        return PagedTreeLayout(
            num_points=int(payload["num_points"]),
            num_levels=int(payload["num_levels"]),
            dim=int(payload["dim"]),
            axis_policy=str(payload["axis_policy"]),
            nodes_per_page=int(payload["nodes_per_page"]),
            num_pages=int(payload["num_pages"]),
        )

    @staticmethod
    def for_tree(tree, nodes_per_page: int = DEFAULT_NODES_PER_PAGE) -> "PagedTreeLayout":
        num_nodes = tree.num_nodes
        return PagedTreeLayout(
            num_points=tree.num_points,
            num_levels=tree.num_levels,
            dim=tree.dim,
            axis_policy=tree.axis_policy,
            nodes_per_page=nodes_per_page,
            num_pages=(num_nodes + nodes_per_page - 1) // nodes_per_page,
        )


def tree_node_pages(tree, nodes_per_page: int = DEFAULT_NODES_PER_PAGE) -> list[Page]:
    """Serialize a built tree's node arrays into compressed pages.

    Nodes are sorted by post-order id and sliced into groups of
    ``nodes_per_page``.  Box coordinates are flattened to 1-D columns
    (``plo``/``phi``/``tlo``/``thi``, length ``n_slots * dim``) because
    pages carry 1-D arrays; :class:`PagedKdTree` reshapes them back to
    ``(n_slots, dim)`` at materialization.  The ``heap`` column records
    each slot's heap index for integrity checks and debugging.
    """
    arrays = tree.export_node_arrays()
    # post_order[1:] is a permutation of 1..num_nodes; argsort recovers
    # the heap index occupying each post-order slot.
    order = np.argsort(arrays["post_order"][1:], kind="stable").astype(np.int64) + 1
    num_nodes = tree.num_nodes
    pages: list[Page] = []
    for start in range(0, num_nodes, nodes_per_page):
        sl = order[start:start + nodes_per_page]
        columns = {
            "heap": sl,
            "split_axis": np.ascontiguousarray(arrays["split_axis"][sl]),
            "split_value": np.ascontiguousarray(arrays["split_value"][sl]),
            "seg_start": np.ascontiguousarray(arrays["seg_start"][sl]),
            "seg_end": np.ascontiguousarray(arrays["seg_end"][sl]),
            "plo": np.ascontiguousarray(arrays["partition_lo"][sl]).reshape(-1),
            "phi": np.ascontiguousarray(arrays["partition_hi"][sl]).reshape(-1),
            "tlo": np.ascontiguousarray(arrays["tight_lo"][sl]).reshape(-1),
            "thi": np.ascontiguousarray(arrays["tight_hi"][sl]).reshape(-1),
        }
        pages.append(
            Page(
                page_id=start // nodes_per_page,
                start_row=start,
                columns=columns,
                compress=True,
            )
        )
    return pages


def write_paged_tree(
    database, physical_name: str, tree, nodes_per_page: int = DEFAULT_NODES_PER_PAGE
) -> PagedTreeLayout:
    """Write a tree's node pages under the table's index namespace.

    Pages go straight to storage (not through ``BufferPool.put``), so a
    freshly written index starts cold -- cold-start benchmarks measure
    honest reads, and building never evicts hot data pages.  Any
    existing pages of the namespace are dropped first (stale-generation
    hygiene).  A :class:`~repro.db.errors.WriteFault` propagates;
    callers degrade to serving the in-memory tree
    (:func:`paged_tree_for`).
    """
    namespace = index_namespace(physical_name)
    database.buffer_pool.invalidate(namespace)
    database.storage.drop_namespace(namespace)
    for page in tree_node_pages(tree, nodes_per_page):
        database.storage.write_page(namespace, page)
    return PagedTreeLayout.for_tree(tree, nodes_per_page)


def paged_tree_for(
    database,
    physical_name: str,
    tree,
    nodes_per_page: int = DEFAULT_NODES_PER_PAGE,
    node_cache_bytes: int | None = None,
):
    """Page out a built tree and return the paged view, or degrade.

    On a write fault the partially written namespace is dropped
    (best-effort) and the in-memory tree itself is returned -- the kd
    analog of the bitmap engine's drop-stale-entry-on-rebuild-failure
    discipline: the index stays correct, only its paging is lost.
    """
    try:
        layout = write_paged_tree(database, physical_name, tree, nodes_per_page)
    except StorageFault:
        namespace = index_namespace(physical_name)
        try:
            database.buffer_pool.invalidate(namespace)
            database.storage.drop_namespace(namespace)
        except Exception:
            pass
        return tree
    return PagedKdTree(
        database, physical_name, layout, node_cache_bytes=node_cache_bytes
    )


class PagedKdTree:
    """Lazily materialized view of a paged kd-tree.

    Drop-in for the traversal surface of
    :class:`~repro.core.kdtree.KdTree` (everything except
    ``permutation``, which is build-time-only and deliberately not kept
    -- it is O(N) while the whole point here is O(cache budget) residency).

    Structural queries (post-order ids/ranges, subtree sizes, leaf
    ids) are arithmetic on heap indexes and never touch storage.
    Geometry and row-range accessors probe the node cache; a miss pulls
    the node page through the shared buffer pool (read-ahead over the
    next pages of the post-order sequence) and materializes it under
    this tree's byte budget.

    Faults surface exactly like data-page faults: transient/torn reads
    are retried by the pool's policy, an exhausted budget or a missing
    page raises a :class:`~repro.db.errors.StorageFault`, which the
    planner catches to fall back to a scan.
    """

    def __init__(
        self,
        database,
        physical_name: str,
        layout: PagedTreeLayout,
        node_cache_bytes: int | None = None,
    ):
        self._db = database
        self.layout = layout
        self.namespace = index_namespace(physical_name)
        self.num_points = layout.num_points
        self.num_levels = layout.num_levels
        self.dim = layout.dim
        self.axis_policy = layout.axis_policy
        self.num_leaves = 2 ** (layout.num_levels - 1)
        self.num_nodes = 2**layout.num_levels - 1
        if node_cache_bytes is None:
            node_cache_bytes = getattr(
                getattr(database, "options", None),
                "index_cache_bytes",
                DEFAULT_INDEX_CACHE_BYTES,
            )
        self.node_cache_bytes = int(node_cache_bytes)
        #: page_id -> (materialized column dict, approximate bytes)
        self._node_cache: OrderedDict[int, tuple[dict, int]] = OrderedDict()
        self._resident = 0
        self.max_resident_bytes = 0
        self._lock = threading.RLock()

    # -- node cache ---------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Approximate bytes currently held by the node cache."""
        with self._lock:
            return self._resident

    def drop_node_cache(self) -> None:
        """Empty the node cache (cold-cache experiments, index drops)."""
        with self._lock:
            self._node_cache.clear()
            self._resident = 0

    def _page_columns(self, page_id: int) -> dict:
        """The materialized node columns of one index page."""
        stats = self._db.io_stats
        with self._lock:
            entry = self._node_cache.get(page_id)
            if entry is not None:
                self._node_cache.move_to_end(page_id)
                stats.add(node_cache_hits=1)
                return entry[0]
            stats.add(node_cache_misses=1)
            pool = self._db.buffer_pool
            window = max(1, pool.readahead_pages)
            if window > 1 and page_id + 1 < self.layout.num_pages:
                pool.prefetch(
                    self.namespace,
                    range(page_id, min(page_id + window, self.layout.num_pages)),
                )
            try:
                page = pool.get(self.namespace, page_id)
            except KeyError:
                raise StorageFault(
                    f"index page {page_id} missing from {self.namespace!r}"
                ) from None
            cols = dict(page.columns)
            for name in ("plo", "phi", "tlo", "thi"):
                cols[name] = cols[name].reshape(-1, self.dim)
            nbytes = sum(arr.nbytes for arr in cols.values())
            self._node_cache[page_id] = (cols, nbytes)
            self._resident += nbytes
            stats.add(index_pages_decoded=1)
            if self._resident > self.max_resident_bytes:
                self.max_resident_bytes = self._resident
            evicted = 0
            while self._resident > self.node_cache_bytes and len(self._node_cache) > 1:
                _, (_, old_bytes) = self._node_cache.popitem(last=False)
                self._resident -= old_bytes
                evicted += 1
            if evicted:
                stats.add(node_cache_evictions=evicted)
            return cols

    def _slot(self, node: int) -> tuple[dict, int]:
        post = post_order_index(node, self.num_levels)
        npp = self.layout.nodes_per_page
        return self._page_columns(post // npp), post % npp

    # -- structure accessors (arithmetic; no I/O) ---------------------------

    @property
    def first_leaf(self) -> int:
        """Heap index of the leftmost leaf."""
        return 2 ** (self.num_levels - 1)

    def is_leaf(self, node: int) -> bool:
        """Whether a heap node is a leaf."""
        return node >= self.first_leaf

    def post_order_id(self, node: int) -> int:
        """Post-order id of a heap node (1-based like the paper's)."""
        return post_order_index(node, self.num_levels) + 1

    def post_order_range(self, node: int) -> tuple[int, int]:
        """Inclusive BETWEEN bounds covering every descendant of ``node``."""
        node_id = self.post_order_id(node)
        return node_id - subtree_size(node, self.num_levels) + 1, node_id

    def leaf_post_order_ids(self) -> np.ndarray:
        """Post-order ids of the leaves in left-to-right order."""
        levels = self.num_levels
        return np.fromiter(
            (
                post_order_index(leaf, levels) + 1
                for leaf in range(self.first_leaf, 2 * self.first_leaf)
            ),
            dtype=np.int64,
            count=self.num_leaves,
        )

    # -- paged accessors ----------------------------------------------------

    def node_rows(self, node: int) -> tuple[int, int]:
        """Clustered row range ``[start, end)`` covered by a node's subtree."""
        cols, slot = self._slot(node)
        return int(cols["seg_start"][slot]), int(cols["seg_end"][slot])

    def leaf_size(self, leaf: int) -> int:
        """Number of rows in a leaf."""
        start, end = self.node_rows(leaf)
        return end - start

    def partition_box(self, node: int) -> Box:
        """The space-tiling partition cell of a node."""
        cols, slot = self._slot(node)
        return Box(cols["plo"][slot], cols["phi"][slot])

    def tight_box(self, node: int) -> Box:
        """The bounding box of the node's actual points."""
        cols, slot = self._slot(node)
        tlo = cols["tlo"][slot]
        if not np.all(np.isfinite(tlo)):
            return Box(cols["plo"][slot], cols["phi"][slot])
        return Box(tlo, cols["thi"][slot])

    def split_plane(self, node: int) -> tuple[int, float]:
        """``(axis, value)`` of an internal node's cut."""
        if self.is_leaf(node):
            raise ValueError(f"node {node} is a leaf")
        cols, slot = self._slot(node)
        return int(cols["split_axis"][slot]), float(cols["split_value"][slot])

    def visit_info(self, node: int, tight: bool = True):
        """One-probe node visit: ``(start, end, box)``.

        The traversal hot loop needs a node's row range and its box
        together; fetching them through separate accessors costs two
        cache probes.  ``box`` is ``None`` for empty nodes (the
        traversals skip those before classifying).
        """
        cols, slot = self._slot(node)
        start = int(cols["seg_start"][slot])
        end = int(cols["seg_end"][slot])
        if start == end:
            return start, end, None
        if tight:
            tlo = cols["tlo"][slot]
            if np.all(np.isfinite(tlo)):
                return start, end, Box(tlo, cols["thi"][slot])
        return start, end, Box(cols["plo"][slot], cols["phi"][slot])

    # -- point location ------------------------------------------------------

    def leaf_of_point(self, point: np.ndarray) -> int:
        """Heap index of the (single) leaf whose partition cell holds ``point``."""
        point = np.asarray(point, dtype=np.float64)
        node = 1
        while not self.is_leaf(node):
            axis, value = self.split_plane(node)
            node = 2 * node if point[axis] <= value else 2 * node + 1
        return node

    def leaves_containing(self, point: np.ndarray) -> list[int]:
        """All leaves whose *closed* partition cell contains ``point``."""
        point = np.asarray(point, dtype=np.float64)
        found: list[int] = []
        stack = [1]
        while stack:
            node = stack.pop()
            if self.is_leaf(node):
                found.append(node)
                continue
            axis, value = self.split_plane(node)
            if point[axis] < value:
                stack.append(2 * node)
            elif point[axis] > value:
                stack.append(2 * node + 1)
            else:
                stack.append(2 * node)
                stack.append(2 * node + 1)
        return found

    def leaf_statistics(self) -> dict[str, float]:
        """Summary used by the E2 build-statistics experiment."""
        sizes = np.array(
            [self.leaf_size(leaf) for leaf in range(self.first_leaf, 2 * self.first_leaf)]
        )
        elongations = np.array(
            [
                self.tight_box(leaf).elongation
                for leaf in range(self.first_leaf, 2 * self.first_leaf)
                if self.leaf_size(leaf) > 1
            ]
        )
        finite = elongations[np.isfinite(elongations)]
        return {
            "num_levels": float(self.num_levels),
            "num_leaves": float(self.num_leaves),
            "min_leaf_size": float(sizes.min()),
            "max_leaf_size": float(sizes.max()),
            "mean_leaf_size": float(sizes.mean()),
            "mean_leaf_elongation": float(finite.mean()) if len(finite) else 1.0,
        }

    def __repr__(self) -> str:
        return (
            f"PagedKdTree(namespace={self.namespace!r}, "
            f"levels={self.num_levels}, pages={self.layout.num_pages}, "
            f"cache={self.node_cache_bytes >> 20}MB)"
        )
