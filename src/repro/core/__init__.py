"""Spatial indexes: the paper's primary contribution.

Three in-database indexing schemes over multidimensional continuous data,
all built on the paged engine of :mod:`repro.db`:

* :mod:`repro.core.layered_grid` -- the layered uniform grid (§3.1) for
  distribution-following adaptive sampling of query boxes.
* :mod:`repro.core.kdtree` -- the balanced, iteratively built, post-order
  numbered kd-tree (§3.2) with clustered leaf storage and polyhedron
  query evaluation (Figure 4 / Figure 5).
* :mod:`repro.core.knn` -- the boundary-point k-nearest-neighbor search
  over the kd-tree (§3.3) plus a best-first baseline.
* :mod:`repro.core.voronoi_index` -- the sampled Voronoi tessellation
  index (§3.4): seeds, directed-walk point location, space-filling-curve
  cell numbering, and cell-classified polyhedron queries.
* :mod:`repro.core.queries` -- shared polyhedron-query plumbing and the
  full-scan baseline used across all Figure 5-style comparisons.
"""

from repro.core.batch import BatchMemberResult, BatchResult, batch_kd_query
from repro.core.index_base import SpatialIndex
from repro.core.kdtree import KdTree, KdTreeIndex
from repro.core.knn import (
    KnnResult,
    NeighborList,
    knn_best_first,
    knn_boundary_points,
    knn_brute_force,
    merge_knn_results,
)
from repro.core.layered_grid import LayeredGridIndex, TableSampleBaseline
from repro.core.voronoi_index import VoronoiIndex
from repro.core.hybrid import hybrid_query, linear_relaxations
from repro.core.planner import PlannedQuery, QueryPlanner
from repro.core.rtree import RTreeIndex
from repro.core.queries import (
    ball_polyhedron,
    ball_query,
    polyhedron_batch_full_scan,
    polyhedron_full_scan,
    selectivity,
)

__all__ = [
    "BatchMemberResult",
    "BatchResult",
    "batch_kd_query",
    "SpatialIndex",
    "KdTree",
    "KdTreeIndex",
    "KnnResult",
    "NeighborList",
    "knn_boundary_points",
    "knn_best_first",
    "knn_brute_force",
    "merge_knn_results",
    "LayeredGridIndex",
    "TableSampleBaseline",
    "VoronoiIndex",
    "RTreeIndex",
    "PlannedQuery",
    "QueryPlanner",
    "ball_polyhedron",
    "ball_query",
    "hybrid_query",
    "linear_relaxations",
    "polyhedron_batch_full_scan",
    "polyhedron_full_scan",
    "selectivity",
]
