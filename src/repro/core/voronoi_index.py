"""The sampled Voronoi tessellation index of §3.4.

Construction, mirroring the paper step by step:

1. Take an ``Nseed`` (paper: 10K) random sample of the data as seeds.
2. Compute the seeds' Delaunay triangulation with QHull
   (:class:`repro.tessellation.DelaunayGraph` wraps ``scipy.spatial``,
   which wraps the very library the paper used).
3. Number the cells along a space-filling curve so nearby cells get
   nearby ids (Morton by default, Hilbert optionally).
4. Tag each data point with the id of its enclosing Voronoi cell and
   build a clustered index over the tags -- here, cluster the engine
   table on the tag, making per-cell retrieval a contiguous range scan.
5. Point location uses the directed walk on the Delaunay graph
   (O(sqrt(Nseed)) expected hops).  Bulk assignment at build time uses a
   kd-tree over the seeds, which returns the identical nearest seed; the
   walk remains the query-time procedure and is what E6 measures.

Polyhedron queries classify each cell INSIDE / OUTSIDE / PARTIAL and
"return or reject all points with that index" for the first two, running
the residual filter only on partial cells.  Exact polytope-polyhedron
intersection in 5-D is the "computationally more challenging task" the
paper notes; we use the sound conservative test the geometry module
provides: each cell is enclosed in the ball around its seed whose radius
is the distance to the farthest point assigned to the cell, so ball
classification can only err toward PARTIAL -- never toward a wrong
INSIDE/OUTSIDE -- and correctness is preserved.
"""

from __future__ import annotations

import heapq

import numpy as np
from scipy.spatial import cKDTree

from repro.core.index_base import SpatialIndex, stack_coordinates
from repro.core.knn import KnnResult, NeighborList
from repro.db.catalog import Database
from repro.db.scan import range_scan
from repro.db.stats import QueryStats
from repro.db.table import DEFAULT_ROWS_PER_PAGE, Table
from repro.geometry.boxes import BoxRelation
from repro.geometry.distance import squared_distances
from repro.geometry.halfspace import Polyhedron
from repro.geometry.sfc import hilbert_indices, morton_indices, quantize_points
from repro.tessellation.delaunay import DelaunayGraph

__all__ = ["VoronoiIndex"]


class VoronoiIndex(SpatialIndex):
    """Sampled Voronoi tessellation index over a clustered table."""

    def __init__(
        self,
        database: Database,
        table: Table,
        dims: list[str],
        graph: DelaunayGraph,
        seed_order: np.ndarray,
        cell_ranges: np.ndarray,
        cell_radii: np.ndarray,
    ):
        self._db = database
        self._table = table
        self._dims = list(dims)
        self._graph = graph
        # seed_order[cell_id] = seed index in graph; inverse maps seeds to cells.
        self._seed_order = seed_order
        self._cell_of_seed = np.empty_like(seed_order)
        self._cell_of_seed[seed_order] = np.arange(len(seed_order))
        # cell_ranges[cell_id] = (start_row, end_row) in the clustered table.
        self._cell_ranges = cell_ranges
        self._cell_radii = cell_radii

    # -- build ----------------------------------------------------------------

    @staticmethod
    def build(
        database: Database,
        name: str,
        data: dict[str, np.ndarray],
        dims: list[str],
        num_seeds: int = 1024,
        curve: str = "morton",
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
        seed: int = 0,
        seed_strategy: str = "random",
    ) -> "VoronoiIndex":
        """Sample seeds, tessellate, tag, and cluster.

        Parameters
        ----------
        num_seeds:
            Size of the representative sample (the paper's Nseed = 10K
            at N = 270M; scale proportionally).
        curve:
            ``"morton"`` or ``"hilbert"`` cell numbering.
        seed_strategy:
            ``"random"`` draws seeds uniformly from the data (the
            paper's choice); ``"stratified"`` refines them with a few
            k-means iterations -- the improvement the paper sketches:
            "we have chosen the seeds randomly, but this technique could
            be improved to follow better the underlying distribution,
            hence keep the cells balanced."
        """
        points = stack_coordinates(data, list(dims))
        num_rows, dim = points.shape
        if num_seeds < dim + 2:
            raise ValueError(f"num_seeds must be >= {dim + 2}")
        if num_seeds > num_rows:
            raise ValueError("num_seeds cannot exceed the number of rows")

        rng = np.random.default_rng(seed)
        chosen = rng.choice(num_rows, size=num_seeds, replace=False)
        seeds = points[chosen]
        if seed_strategy == "stratified":
            seeds = _stratify_seeds(points, seeds, rng)
        elif seed_strategy != "random":
            raise ValueError("seed_strategy must be 'random' or 'stratified'")
        graph = DelaunayGraph(seeds)

        # Space-filling-curve numbering of the cells.
        lattice = quantize_points(seeds, bits=10)
        if curve == "morton":
            codes = morton_indices(lattice, bits=10)
        elif curve == "hilbert":
            codes = hilbert_indices(lattice, bits=10)
        else:
            raise ValueError("curve must be 'morton' or 'hilbert'")
        seed_order = np.argsort(codes, kind="stable").astype(np.int64)
        cell_of_seed = np.empty(num_seeds, dtype=np.int64)
        cell_of_seed[seed_order] = np.arange(num_seeds)

        # Bulk nearest-seed assignment (identical to the directed walk's
        # answer; the walk is exercised at query time and in E6).
        kd = cKDTree(seeds)
        _, nearest_seed = kd.query(points, k=1)
        cell_ids = cell_of_seed[nearest_seed]

        table_data = dict(data)
        table_data["voronoi_cell"] = cell_ids
        table = database.create_table(
            name,
            table_data,
            rows_per_page=rows_per_page,
            clustered_by=("voronoi_cell",),
        )

        cell_ranges = _cell_ranges_from_table(table, num_seeds)
        radii = _data_radii(points, seeds, nearest_seed, num_seeds)
        cell_radii = radii[seed_order]  # reindex seed->cell order

        index = VoronoiIndex(
            database, table, dims, graph, seed_order, cell_ranges, cell_radii
        )
        database.register_index(f"{name}.voronoi", index)
        return index

    # -- properties ---------------------------------------------------------------

    @property
    def table(self) -> Table:
        """The clustered data table."""
        return self._table

    @property
    def table_name(self) -> str:
        """Name of the backing table (catalog bookkeeping)."""
        return self._table.name

    @property
    def dims(self) -> list[str]:
        """Ordered coordinate column names."""
        return list(self._dims)

    @property
    def graph(self) -> DelaunayGraph:
        """The seeds' Delaunay graph."""
        return self._graph

    @property
    def num_cells(self) -> int:
        """Number of Voronoi cells (= seeds)."""
        return self._graph.num_seeds

    def cell_seed_point(self, cell: int) -> np.ndarray:
        """Seed coordinates of a cell id."""
        return self._graph.seeds[self._seed_order[cell]]

    def cell_radius(self, cell: int) -> float:
        """Enclosing-ball radius of a cell (farthest assigned point)."""
        return float(self._cell_radii[cell])

    def cell_point_count(self, cell: int) -> int:
        """Number of data points tagged with a cell id."""
        start, end = self._cell_ranges[cell]
        return int(end - start)

    def cell_point_counts(self) -> np.ndarray:
        """Data-point counts of all cells (density numerators)."""
        return (self._cell_ranges[:, 1] - self._cell_ranges[:, 0]).astype(np.int64)

    # -- point location -------------------------------------------------------------

    def locate(self, point: np.ndarray, start: int | None = None) -> tuple[int, int]:
        """Cell id containing ``point`` via the directed walk; returns
        ``(cell_id, hops)``."""
        start_seed = None if start is None else int(self._seed_order[start])
        walk = self._graph.directed_walk(point, start=start_seed)
        return int(self._cell_of_seed[walk.seed]), walk.hops

    def cell_rows(self, cell: int) -> tuple[dict[str, np.ndarray], QueryStats]:
        """All rows tagged with a cell id (clustered range scan)."""
        start, end = self._cell_ranges[cell]
        return range_scan(self._table, int(start), int(end))

    # -- queries ----------------------------------------------------------------------

    def query_polyhedron(
        self, polyhedron: Polyhedron
    ) -> tuple[dict[str, np.ndarray], QueryStats]:
        """Cell-classified polyhedron query (see module docstring)."""
        if polyhedron.dim != len(self._dims):
            raise ValueError(
                f"polyhedron dim {polyhedron.dim} != index dim {len(self._dims)}"
            )
        stats = QueryStats()
        pieces: list[dict[str, np.ndarray]] = []
        for cell in range(self.num_cells):
            start, end = self._cell_ranges[cell]
            if start == end:
                continue
            center = self.cell_seed_point(cell)
            relation = polyhedron.classify_ball(center, self.cell_radius(cell))
            if relation is BoxRelation.OUTSIDE:
                stats.cells_outside += 1
                continue
            if relation is BoxRelation.INSIDE:
                stats.cells_inside += 1
                rows, piece_stats = range_scan(self._table, int(start), int(end))
            else:
                stats.cells_partial += 1
                rows, piece_stats = range_scan(
                    self._table,
                    int(start),
                    int(end),
                    predicate=self._residual(polyhedron),
                )
            stats.merge(piece_stats)
            pieces.append(rows)
        return _concat(self._table, pieces), stats

    def _residual(self, polyhedron: Polyhedron):
        dims = self._dims

        def predicate(columns: dict[str, np.ndarray]) -> np.ndarray:
            pts = np.column_stack([columns[d] for d in dims])
            return polyhedron.contains_points(pts)

        return predicate

    # -- nearest neighbors ---------------------------------------------------------------

    def knn(self, point: np.ndarray, k: int) -> KnnResult:
        """k-NN by growing rings of Voronoi cells around the query.

        The Voronoi tessellation "is an explicit solution of the nearest
        neighbor problem": locate the cell of the query, then expand over
        Delaunay neighbors, pruning cells whose enclosing ball lies
        entirely beyond the current k-th distance.  A final sweep over
        the (small) seed set guarantees exactness.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        point = np.asarray(point, dtype=np.float64)
        stats = QueryStats()
        result = NeighborList(k)
        start_cell, hops = self.locate(point)
        stats.extra["walk_hops"] = hops

        def lower_bound(cell: int) -> float:
            seed_dist = float(np.linalg.norm(self.cell_seed_point(cell) - point))
            return max(0.0, seed_dist - self.cell_radius(cell))

        examined: set[int] = set()
        heap: list[tuple[float, int]] = [(lower_bound(start_cell), start_cell)]
        queued = {start_cell}
        while heap:
            bound, cell = heapq.heappop(heap)
            queued.discard(cell)
            if cell in examined:
                continue
            if bound >= result.worst:
                break
            examined.add(cell)
            self._scan_cell_into(cell, point, result, stats)
            seed_idx = int(self._seed_order[cell])
            for neighbor_seed in self._graph.neighbors(seed_idx):
                neighbor = int(self._cell_of_seed[neighbor_seed])
                if neighbor in examined or neighbor in queued:
                    continue
                nb = lower_bound(neighbor)
                if nb < result.worst:
                    heapq.heappush(heap, (nb, neighbor))
                    queued.add(neighbor)

        # Exactness sweep over all cells (Nseed is small by design).
        m = result.worst
        for cell in range(self.num_cells):
            if cell in examined:
                continue
            if lower_bound(cell) < m and self.cell_point_count(cell) > 0:
                self._scan_cell_into(cell, point, result, stats)
                m = result.worst
        stats.extra["cells_examined"] = len(examined)
        row_ids, distances = result.finish()
        stats.rows_returned = len(row_ids)
        return KnnResult(row_ids=row_ids, distances=distances, stats=stats)

    def knn_approximate(self, point: np.ndarray, k: int, rings: int = 1) -> KnnResult:
        """Approximate k-NN: examine only the containing cell's ring(s).

        The "approximate Voronoi diagram" idea the paper cites
        (Berchtold et al. [6]): the Voronoi cell of the query's nearest
        seed plus ``rings`` levels of Delaunay neighbors almost always
        contains the true neighbors, so skipping the exactness machinery
        trades a small recall loss for a bounded, locality-friendly read
        set.  The ablation bench measures the actual recall.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if rings < 0:
            raise ValueError("rings must be >= 0")
        point = np.asarray(point, dtype=np.float64)
        stats = QueryStats()
        result = NeighborList(k)
        start_cell, hops = self.locate(point)
        stats.extra["walk_hops"] = hops
        frontier = {start_cell}
        visited = set(frontier)
        for _ in range(rings):
            next_frontier = set()
            for cell in frontier:
                seed_idx = int(self._seed_order[cell])
                for neighbor_seed in self._graph.neighbors(seed_idx):
                    neighbor = int(self._cell_of_seed[neighbor_seed])
                    if neighbor not in visited:
                        visited.add(neighbor)
                        next_frontier.add(neighbor)
            frontier = next_frontier
        for cell in sorted(visited):
            if self.cell_point_count(cell) > 0:
                self._scan_cell_into(cell, point, result, stats)
        stats.extra["cells_examined"] = len(visited)
        row_ids, distances = result.finish()
        stats.rows_returned = len(row_ids)
        return KnnResult(row_ids=row_ids, distances=distances, stats=stats)

    def _scan_cell_into(
        self,
        cell: int,
        point: np.ndarray,
        result: NeighborList,
        stats: QueryStats,
    ) -> None:
        rows, cell_stats = self.cell_rows(cell)
        stats.merge(cell_stats)
        if len(rows["_row_id"]) == 0:
            return
        pts = self.points_of(rows)
        dist2 = squared_distances(pts, point)
        result.offer(np.sqrt(dist2), rows["_row_id"])


def _cell_ranges_from_table(table: Table, num_cells: int) -> np.ndarray:
    tags = table.read_column("voronoi_cell")
    ranges = np.zeros((num_cells, 2), dtype=np.int64)
    if len(tags) == 0:
        return ranges
    change = np.flatnonzero(np.diff(tags) != 0) + 1
    starts = np.concatenate([[0], change])
    ends = np.concatenate([change, [len(tags)]])
    for start, end in zip(starts, ends):
        ranges[int(tags[start])] = (start, end)
    return ranges


def _data_radii(
    points: np.ndarray, seeds: np.ndarray, nearest_seed: np.ndarray, num_seeds: int
) -> np.ndarray:
    """Farthest assigned-point distance per seed."""
    diffs = points - seeds[nearest_seed]
    dist = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
    radii = np.zeros(num_seeds)
    np.maximum.at(radii, nearest_seed, dist)
    return radii


def _concat(table: Table, pieces: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    names = table.column_names + ["_row_id"]
    if not pieces:
        out = {n: np.empty(0, dtype=table.dtype_of(n)) for n in table.column_names}
        out["_row_id"] = np.empty(0, dtype=np.int64)
        return out
    return {n: np.concatenate([p[n] for p in pieces]) for n in names}


def _stratify_seeds(
    points: np.ndarray,
    seeds: np.ndarray,
    rng: np.random.Generator,
    iterations: int = 6,
    sample_cap: int = 50_000,
) -> np.ndarray:
    """Refine random seeds with k-means iterations on a data subsample.

    Moves seeds toward the data distribution so cell populations balance
    (dense regions get more, smaller cells).  Empty cells are re-seeded
    from random data points so the seed count is preserved.
    """
    if len(points) > sample_cap:
        subsample = points[rng.choice(len(points), sample_cap, replace=False)]
    else:
        subsample = points
    seeds = seeds.copy()
    for _ in range(iterations):
        _, assign = cKDTree(seeds).query(subsample)
        for idx in range(len(seeds)):
            members = subsample[assign == idx]
            if len(members):
                seeds[idx] = members.mean(axis=0)
            else:
                seeds[idx] = subsample[rng.integers(len(subsample))]
    return seeds
