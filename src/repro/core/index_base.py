"""Common interface of the spatial indexes."""

from __future__ import annotations

import abc

import numpy as np

from repro.db.stats import QueryStats
from repro.db.table import Table
from repro.geometry.boxes import Box
from repro.geometry.halfspace import Polyhedron

__all__ = ["SpatialIndex"]


class SpatialIndex(abc.ABC):
    """A spatial access method over one clustered table.

    Each concrete index owns the clustered table it created at build time
    (the engine's tables are immutable, so "adding index columns and
    re-clustering", as the paper does in SQL Server, becomes "materialize
    the clustered table at index build").
    """

    @property
    @abc.abstractmethod
    def table(self) -> Table:
        """The clustered data table backing this index."""

    @property
    @abc.abstractmethod
    def dims(self) -> list[str]:
        """Ordered names of the indexed coordinate columns."""

    @abc.abstractmethod
    def query_polyhedron(
        self, polyhedron: Polyhedron
    ) -> tuple[dict[str, np.ndarray], QueryStats]:
        """All rows whose coordinates lie inside the convex polyhedron."""

    def query_box(self, box: Box) -> tuple[dict[str, np.ndarray], QueryStats]:
        """All rows inside an axis-aligned box (as a polyhedron query)."""
        return self.query_polyhedron(Polyhedron.from_box(box))

    def points_of(self, rows: dict[str, np.ndarray]) -> np.ndarray:
        """Stack the coordinate columns of a result set into ``(n, d)``."""
        return np.column_stack([rows[name] for name in self.dims])


def stack_coordinates(data: dict[str, np.ndarray], dims: list[str]) -> np.ndarray:
    """Stack and validate the coordinate columns an index is built over.

    Every spatial index requires finite coordinates: a NaN magnitude
    would silently fall out of every box and halfspace test (IEEE
    comparisons with NaN are false), corrupting results rather than
    failing loudly.  Real pipelines filter unmeasured magnitudes before
    indexing; we enforce that contract here.
    """
    missing = [d for d in dims if d not in data]
    if missing:
        raise KeyError(f"index dims not in data: {missing}")
    points = np.column_stack([np.asarray(data[d], dtype=np.float64) for d in dims])
    if not np.all(np.isfinite(points)):
        bad = int(np.count_nonzero(~np.isfinite(points).all(axis=1)))
        raise ValueError(
            f"{bad} rows have non-finite coordinates in {dims}; "
            "filter or impute them before building a spatial index"
        )
    return points
