"""Hybrid execution: pushing the linear part of any predicate into an index.

§1 of the paper: scientific queries are "hyper planes (linear theories)
or curved surfaces (nonlinear theories).  In practice these can be broken
down into polyhedron queries."  The Figure 2 query is the working case:
mostly linear color cuts, plus LOG10 surface-brightness terms and a
top-level OR.

:func:`linear_relaxations` computes a *sound superset cover* of an
arbitrary expression as a union of convex polyhedra:

* a linear comparison contributes its halfspace;
* AND intersects covers (cross product of branch polyhedra);
* OR unions covers;
* anything the index space cannot express -- nonlinear terms, NOT,
  comparisons over non-index columns -- relaxes to "unconstrained",
  never dropping rows.

:func:`hybrid_query` then runs each cover polyhedron through the index,
unions the candidate rows, and applies the *exact* expression to the
candidates only.  Selective linear structure prunes I/O; nonlinear
residuals cost only candidate evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.core.index_base import SpatialIndex
from repro.db.expressions import (
    And,
    Compare,
    Expr,
    LinearExtractionError,
    Or,
    _comparison_to_halfspace,
)
from repro.db.scan import full_scan
from repro.db.stats import QueryStats
from repro.geometry.halfspace import Halfspace, Polyhedron

__all__ = ["linear_relaxations", "hybrid_query"]

#: Cap on the number of cover polyhedra; past this the cover collapses to
#: a full scan rather than exploding combinatorially.
MAX_BRANCHES = 64

_UNCONSTRAINED: list[list[Halfspace]] = [[]]


def _relax(expr: Expr, columns: list[str]) -> list[list[Halfspace]]:
    if isinstance(expr, Compare):
        try:
            return [[_comparison_to_halfspace(expr, columns)]]
        except LinearExtractionError:
            return _UNCONSTRAINED
    if isinstance(expr, And):
        left = _relax(expr.left, columns)
        right = _relax(expr.right, columns)
        if len(left) * len(right) > MAX_BRANCHES:
            return _UNCONSTRAINED
        return [a + b for a in left for b in right]
    if isinstance(expr, Or):
        combined = _relax(expr.left, columns) + _relax(expr.right, columns)
        if len(combined) > MAX_BRANCHES:
            return _UNCONSTRAINED
        return combined
    # NOT, Func-rooted booleans, anything else: no sound linear bound.
    return _UNCONSTRAINED


def linear_relaxations(expr: Expr, columns: list[str]) -> list[Polyhedron] | None:
    """Union-of-polyhedra superset cover of ``expr`` over ``columns``.

    Returns ``None`` when no constraint survives relaxation (the cover
    is all of space -- callers should full-scan).  Every returned
    polyhedron list jointly covers the expression's true region:
    ``expr(x) -> x in union(polyhedra)``.
    """
    branches = _relax(expr, columns)
    if any(len(branch) == 0 for branch in branches):
        return None
    return [Polyhedron(branch) for branch in branches]


def hybrid_query(
    index: SpatialIndex, expr: Expr
) -> tuple[dict[str, np.ndarray], QueryStats]:
    """Evaluate an arbitrary predicate, index-pruned where possible.

    The exact expression is applied to the candidate rows, so results
    are exact regardless of how loose the relaxation is.  Requires every
    column the expression references to exist in the index's table.
    """
    table = index.table
    missing = expr.referenced_columns() - set(table.column_names)
    if missing:
        raise KeyError(f"expression references columns not in the table: {sorted(missing)}")

    covers = linear_relaxations(expr, index.dims)
    if covers is None:
        return full_scan(table, predicate=expr)

    stats = QueryStats()
    candidate_chunks: list[dict[str, np.ndarray]] = []
    seen: set[int] = set()
    for polyhedron in covers:
        rows, branch_stats = index.query_polyhedron(polyhedron)
        stats.merge(branch_stats)
        fresh = np.array(
            [i for i, row in enumerate(rows["_row_id"]) if int(row) not in seen],
            dtype=np.int64,
        )
        if len(fresh):
            seen.update(int(r) for r in rows["_row_id"][fresh])
            candidate_chunks.append({k: v[fresh] for k, v in rows.items()})
    stats.extra["cover_polyhedra"] = len(covers)

    if not candidate_chunks:
        empty = {n: np.empty(0, dtype=table.dtype_of(n)) for n in table.column_names}
        empty["_row_id"] = np.empty(0, dtype=np.int64)
        stats.rows_returned = 0
        return empty, stats

    candidates = {
        key: np.concatenate([chunk[key] for chunk in candidate_chunks])
        for key in candidate_chunks[0]
    }
    stats.extra["candidates"] = len(candidates["_row_id"])
    mask = np.asarray(
        expr.evaluate({k: v for k, v in candidates.items() if k != "_row_id"}),
        dtype=bool,
    )
    result = {k: v[mask] for k, v in candidates.items()}
    stats.rows_returned = int(mask.sum())
    return result, stats
