"""The balanced kd-tree index of §3.2.

Reproduced design decisions, in the paper's own terms:

* **Iterative, level-by-level build.**  "The fastest approach is ... to
  build the tree iteratively (not recursively).  We create a cover index
  table which holds the completed levels of the tree, and for the next
  level we join the index table with the original table ... and ORDER BY
  and ROW_NUMBER() to find the median cut plane."  Here each level is one
  vectorized pass: every node segment of the current level is median-split
  with ``argpartition`` (the numpy analog of the windowed ROW_NUMBER).
* **Balanced with the √N rule.**  "kd-tree indexing performs optimally
  when the number of items in each leaf is equal to the number of leafs
  ... the number of leafs (and items in it) is equal to the square root of
  the number of rows.  Thus our tree has 15 levels, 2^14 leafs and in each
  leaf there are approximately 16K items."  ``num_levels`` defaults to
  that rule.
* **Post-order numbering.**  "The nodes are post-order numbered; this
  means that at query time, if an inner node does not need to be recursed
  further because its bounding box is contained in the query polyhedron,
  its child leaf nodes can be selected trivially using BETWEEN."  Rows are
  tagged with their leaf's post-order id and the table is clustered on it,
  so a subtree is a contiguous row range.
* **Polyhedron evaluation** (Figure 4): recursive classification of node
  bounding boxes against the query polyhedron; fully inside -> bulk
  return, outside -> reject, partial leaves -> residual per-point filter.

The tree keeps two box families per node: the *partition* box (the cell of
the recursive space partition -- these tile the root box and drive the
boundary-point k-NN of §3.3) and the *tight* box (the bounding box of the
node's actual points -- these give much better pruning on highly clustered
data and are what the paper visualizes in Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.index_base import SpatialIndex, stack_coordinates
from repro.db.catalog import Database
from repro.db.scan import (
    AUTO_TOMBSTONES,
    PartialOnlyPruner,
    membership_predicate,
    range_scan,
)
from repro.db.stats import QueryStats
from repro.db.table import DEFAULT_ROWS_PER_PAGE, Table
from repro.geometry.boxes import Box, BoxRelation
from repro.geometry.halfspace import Polyhedron

__all__ = ["KdTree", "KdTreeIndex", "default_num_levels"]


def _preferred_axis(axis_policy: str) -> int | None:
    """The axis index of a ``prefer:<axis>`` policy, else ``None``."""
    if not axis_policy.startswith("prefer:"):
        return None
    try:
        return int(axis_policy.split(":", 1)[1])
    except ValueError:
        return None


def default_num_levels(num_rows: int) -> int:
    """The paper's √N sizing: leaf count ≈ items per leaf ≈ sqrt(N).

    A tree with L levels has 2**(L-1) leaves, so L = log2(sqrt(N)) + 1,
    rounded to the nearest whole level (at 270M rows this gives the
    paper's 15 levels / 2^14 leaves / ~16K rows per leaf).
    """
    if num_rows < 1:
        return 1
    leaves = max(1.0, np.sqrt(num_rows))
    return max(1, int(round(np.log2(leaves))) + 1)


@dataclass
class _BuildResult:
    permutation: np.ndarray
    split_axis: np.ndarray
    split_value: np.ndarray
    seg_start: np.ndarray
    seg_end: np.ndarray


class KdTree:
    """The in-memory structure: heap-ordered perfect binary tree.

    Node ``h`` (1-based heap index) has children ``2h`` and ``2h + 1``;
    leaves occupy ``[2**(L-1), 2**L)``.  The structure is small -- O(√N)
    nodes under the default sizing -- and is the "cover index table" of
    the paper; the point data itself lives in the clustered engine table.
    """

    def __init__(self, points: np.ndarray, num_levels: int | None = None,
                 axis_policy: str = "widest"):
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        preferred = _preferred_axis(axis_policy)
        if axis_policy not in ("widest", "cycle") and preferred is None:
            raise ValueError(
                "axis_policy must be 'widest', 'cycle', or 'prefer:<axis>'"
            )
        self.num_points, self.dim = points.shape
        if preferred is not None and not (0 <= preferred < self.dim):
            raise ValueError(
                f"preferred axis {preferred} out of range for {self.dim} dims"
            )
        self._preferred = preferred
        self.num_levels = (
            default_num_levels(self.num_points) if num_levels is None else num_levels
        )
        if self.num_levels < 1:
            raise ValueError("num_levels must be >= 1")
        if 2 ** (self.num_levels - 1) > self.num_points:
            raise ValueError(
                f"{self.num_levels} levels need >= {2 ** (self.num_levels - 1)} points"
            )
        self.axis_policy = axis_policy
        self.num_leaves = 2 ** (self.num_levels - 1)
        self.num_nodes = 2**self.num_levels - 1  # heap slots 1..num_nodes

        build = self._build(points)
        self.permutation = build.permutation
        self._split_axis = build.split_axis
        self._split_value = build.split_value
        self._seg_start = build.seg_start
        self._seg_end = build.seg_end
        self._partition_lo, self._partition_hi = self._partition_boxes(points)
        self._tight_lo, self._tight_hi = self._tight_boxes(points)
        self._post_order = self._post_order_ids()
        self._subtree_size = self._subtree_sizes()

    # -- build -------------------------------------------------------------

    def _build(self, points: np.ndarray) -> _BuildResult:
        """Level-by-level median partitioning (the iterative SQL build)."""
        n = self.num_points
        perm = np.arange(n, dtype=np.int64)
        total = self.num_nodes + 1
        split_axis = np.full(total, -1, dtype=np.int64)
        split_value = np.full(total, np.nan)
        seg_start = np.zeros(total, dtype=np.int64)
        seg_end = np.zeros(total, dtype=np.int64)
        seg_start[1], seg_end[1] = 0, n

        for level in range(1, self.num_levels):
            first = 2 ** (level - 1)
            for node in range(first, 2 * first):
                start, end = seg_start[node], seg_end[node]
                segment = perm[start:end]
                count = end - start
                axis = self._choose_axis(points, segment, level)
                split_axis[node] = axis
                mid = count // 2
                if count > 1:
                    local = np.argpartition(points[segment, axis], mid)
                    perm[start:end] = segment[local]
                    segment = perm[start:end]
                if count == 0:
                    split_value[node] = np.nan
                elif mid == 0:
                    split_value[node] = points[segment[0], axis]
                else:
                    split_value[node] = float(
                        (points[segment[mid], axis].item()
                         + points[segment[:mid], axis].max())
                        / 2.0
                    )
                left, right = 2 * node, 2 * node + 1
                seg_start[left], seg_end[left] = start, start + mid
                seg_start[right], seg_end[right] = start + mid, end
        return _BuildResult(perm, split_axis, split_value, seg_start, seg_end)

    def _choose_axis(self, points: np.ndarray, segment: np.ndarray, level: int) -> int:
        if self._preferred is not None and len(segment):
            # ``prefer:<axis>`` splits the chosen axis at every level (an
            # axis-major layout: the clustered table ends up sorted by
            # that coordinate), falling back to widest only once a
            # segment is degenerate on it.  Partition boxes stay correct
            # whatever the split axes, so queries on the other axes
            # simply see less pruning -- never wrong answers.
            sub = points[segment]
            if sub[:, self._preferred].max() > sub[:, self._preferred].min():
                return self._preferred
        if self.axis_policy == "cycle" or len(segment) == 0:
            return (level - 1) % self.dim
        sub = points[segment]
        return int(np.argmax(sub.max(axis=0) - sub.min(axis=0)))

    def _partition_boxes(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Space-tiling boxes from the recursive cuts (root = data bbox)."""
        lo = np.empty((self.num_nodes + 1, self.dim))
        hi = np.empty((self.num_nodes + 1, self.dim))
        lo[1] = points.min(axis=0)
        hi[1] = points.max(axis=0)
        for node in range(1, 2 ** (self.num_levels - 1)):
            axis = self._split_axis[node]
            value = self._split_value[node]
            if np.isnan(value):
                value = (lo[node, axis] + hi[node, axis]) / 2.0
            value = float(np.clip(value, lo[node, axis], hi[node, axis]))
            left, right = 2 * node, 2 * node + 1
            lo[left], hi[left] = lo[node].copy(), hi[node].copy()
            lo[right], hi[right] = lo[node].copy(), hi[node].copy()
            hi[left, axis] = value
            lo[right, axis] = value
        return lo, hi

    def _tight_boxes(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Actual data bounding boxes per node, computed bottom-up."""
        lo = np.full((self.num_nodes + 1, self.dim), np.inf)
        hi = np.full((self.num_nodes + 1, self.dim), -np.inf)
        first_leaf = 2 ** (self.num_levels - 1)
        for leaf in range(first_leaf, 2 * first_leaf):
            rows = self.permutation[self._seg_start[leaf]:self._seg_end[leaf]]
            if len(rows):
                sub = points[rows]
                lo[leaf] = sub.min(axis=0)
                hi[leaf] = sub.max(axis=0)
        for node in range(first_leaf - 1, 0, -1):
            lo[node] = np.minimum(lo[2 * node], lo[2 * node + 1])
            hi[node] = np.maximum(hi[2 * node], hi[2 * node + 1])
        return lo, hi

    def _post_order_ids(self) -> np.ndarray:
        """Post-order id per heap node (ids are 1-based like the paper's)."""
        ids = np.zeros(self.num_nodes + 1, dtype=np.int64)
        counter = 0
        stack: list[tuple[int, bool]] = [(1, False)]
        while stack:
            node, expanded = stack.pop()
            if self.is_leaf(node):
                counter += 1
                ids[node] = counter
            elif expanded:
                counter += 1
                ids[node] = counter
            else:
                stack.append((node, True))
                stack.append((2 * node + 1, False))
                stack.append((2 * node, False))
        return ids

    def _subtree_sizes(self) -> np.ndarray:
        sizes = np.ones(self.num_nodes + 1, dtype=np.int64)
        for node in range(2 ** (self.num_levels - 1) - 1, 0, -1):
            sizes[node] = 1 + sizes[2 * node] + sizes[2 * node + 1]
        return sizes

    # -- structure accessors ----------------------------------------------------

    @property
    def first_leaf(self) -> int:
        """Heap index of the leftmost leaf."""
        return 2 ** (self.num_levels - 1)

    def is_leaf(self, node: int) -> bool:
        """Whether a heap node is a leaf."""
        return node >= self.first_leaf

    def node_rows(self, node: int) -> tuple[int, int]:
        """Clustered row range ``[start, end)`` covered by a node's subtree."""
        return int(self._seg_start[node]), int(self._seg_end[node])

    def leaf_size(self, leaf: int) -> int:
        """Number of rows in a leaf."""
        start, end = self.node_rows(leaf)
        return end - start

    def partition_box(self, node: int) -> Box:
        """The space-tiling partition cell of a node."""
        return Box(self._partition_lo[node], self._partition_hi[node])

    def tight_box(self, node: int) -> Box:
        """The bounding box of the node's actual points."""
        if not np.all(np.isfinite(self._tight_lo[node])):
            return self.partition_box(node)
        return Box(self._tight_lo[node], self._tight_hi[node])

    def visit_info(self, node: int, tight: bool = True):
        """One-call node visit: ``(start, end, box)``.

        Returns the node's clustered row range and its pruning box
        (tight when requested and finite, else the partition cell);
        ``box`` is ``None`` for empty nodes, which the traversals skip
        before classifying.  Exists so paged trees
        (:class:`~repro.core.kdpaged.PagedKdTree`) answer a node visit
        with one cache probe; the in-memory implementation simply
        composes the accessors.
        """
        start, end = self.node_rows(node)
        if start == end:
            return start, end, None
        box = self.tight_box(node) if tight else self.partition_box(node)
        return start, end, box

    def export_node_arrays(self) -> dict[str, np.ndarray]:
        """The raw node arrays, for serialization into index pages.

        Keys follow the internal array names; every array is indexed by
        heap slot (slot 0 unused).  Consumed by
        :func:`repro.core.kdpaged.tree_node_pages`.
        """
        return {
            "split_axis": self._split_axis,
            "split_value": self._split_value,
            "seg_start": self._seg_start,
            "seg_end": self._seg_end,
            "post_order": self._post_order,
            "partition_lo": self._partition_lo,
            "partition_hi": self._partition_hi,
            "tight_lo": self._tight_lo,
            "tight_hi": self._tight_hi,
        }

    def post_order_id(self, node: int) -> int:
        """Post-order id of a heap node."""
        return int(self._post_order[node])

    def post_order_range(self, node: int) -> tuple[int, int]:
        """Inclusive BETWEEN bounds covering every descendant of ``node``."""
        node_id = int(self._post_order[node])
        return node_id - int(self._subtree_size[node]) + 1, node_id

    def leaf_post_order_ids(self) -> np.ndarray:
        """Post-order ids of the leaves in left-to-right order."""
        return self._post_order[self.first_leaf: 2 * self.first_leaf]

    def split_plane(self, node: int) -> tuple[int, float]:
        """``(axis, value)`` of an internal node's cut."""
        if self.is_leaf(node):
            raise ValueError(f"node {node} is a leaf")
        return int(self._split_axis[node]), float(self._split_value[node])

    # -- point location ------------------------------------------------------

    def leaf_of_point(self, point: np.ndarray) -> int:
        """Heap index of the (single) leaf whose partition cell holds ``point``.

        Ties on a cut plane go to the left child, matching the closed-left
        convention of the build.
        """
        point = np.asarray(point, dtype=np.float64)
        node = 1
        while not self.is_leaf(node):
            axis, value = self.split_plane(node)
            node = 2 * node if point[axis] <= value else 2 * node + 1
        return node

    def leaves_containing(self, point: np.ndarray) -> list[int]:
        """All leaves whose *closed* partition cell contains ``point``.

        A point on a cut plane belongs to both sides; the boundary-point
        k-NN (§3.3) needs every such leaf ("the kd-box(es) on the other
        side of b").
        """
        point = np.asarray(point, dtype=np.float64)
        found: list[int] = []
        stack = [1]
        while stack:
            node = stack.pop()
            if self.is_leaf(node):
                found.append(node)
                continue
            axis, value = self.split_plane(node)
            if point[axis] < value:
                stack.append(2 * node)
            elif point[axis] > value:
                stack.append(2 * node + 1)
            else:
                stack.append(2 * node)
                stack.append(2 * node + 1)
        return found

    def leaf_statistics(self) -> dict[str, float]:
        """Summary used by the E2 build-statistics experiment."""
        sizes = np.array(
            [self.leaf_size(leaf) for leaf in range(self.first_leaf, 2 * self.first_leaf)]
        )
        elongations = np.array(
            [
                self.tight_box(leaf).elongation
                for leaf in range(self.first_leaf, 2 * self.first_leaf)
                if self.leaf_size(leaf) > 1
            ]
        )
        finite = elongations[np.isfinite(elongations)]
        return {
            "num_levels": float(self.num_levels),
            "num_leaves": float(self.num_leaves),
            "min_leaf_size": float(sizes.min()),
            "max_leaf_size": float(sizes.max()),
            "mean_leaf_size": float(sizes.mean()),
            "mean_leaf_elongation": float(finite.mean()) if len(finite) else 1.0,
        }


class KdTreeIndex(SpatialIndex):
    """Kd-tree + clustered engine table: the §3.2 index end to end."""

    def __init__(self, database: Database, table: Table, tree, dims: list[str]):
        self._db = database
        self._table = table
        self._tree = tree
        self._dims = list(dims)

    @staticmethod
    def build(
        database: Database,
        name: str,
        data: dict[str, np.ndarray],
        dims: list[str],
        num_levels: int | None = None,
        axis_policy: str = "widest",
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
        paged: bool = True,
    ) -> "KdTreeIndex":
        """Build the tree over ``data[dims]`` and materialize the clustered table.

        The table gains a ``kd_leaf`` column (the leaf's post-order id)
        and is clustered on it; the index registers itself in the catalog
        as ``<name>.kdtree``.

        With ``paged`` on (the default) the node arrays are serialized
        into compressed pages under the table's index namespace and the
        index serves traversals through a lazily materialized
        :class:`~repro.core.kdpaged.PagedKdTree` -- the in-memory arrays
        (including the O(N) build permutation) are released.  A write
        fault during paging degrades to serving the in-memory tree.
        ``paged=False`` keeps the in-memory tree (callers that need
        ``tree.permutation`` after the build).
        """
        points = stack_coordinates(data, list(dims))
        tree = KdTree(points, num_levels=num_levels, axis_policy=axis_policy)

        leaf_ids = np.empty(tree.num_points, dtype=np.int64)
        leaf_post = tree.leaf_post_order_ids()
        for j, leaf in enumerate(range(tree.first_leaf, 2 * tree.first_leaf)):
            start, end = tree.node_rows(leaf)
            leaf_ids[tree.permutation[start:end]] = leaf_post[j]

        table_data = dict(data)
        table_data["kd_leaf"] = leaf_ids
        # Clustering on kd_leaf reorders rows into left-to-right leaf order
        # (post-order ids of leaves increase left to right), which is the
        # same order as tree.permutation -- the row ranges in the tree
        # therefore address the clustered table directly.
        table = database.create_table(
            name, table_data, rows_per_page=rows_per_page, clustered_by=("kd_leaf",)
        )
        serving_tree = tree
        if paged:
            from repro.core.kdpaged import paged_tree_for

            serving_tree = paged_tree_for(database, table.physical_name, tree)
        index = KdTreeIndex(database, table, serving_tree, dims)
        database.register_index(f"{name}.kdtree", index)
        return index

    @property
    def table(self) -> Table:
        """The clustered data table."""
        return self._table

    @property
    def tree(self):
        """The tree structure serving traversals.

        Either an in-memory :class:`KdTree` or a paged
        :class:`~repro.core.kdpaged.PagedKdTree`; both expose the same
        traversal surface (``visit_info``, boxes, post-order ids, point
        location).  Only the in-memory tree carries ``permutation``.
        """
        return self._tree

    @property
    def dims(self) -> list[str]:
        """Ordered coordinate column names."""
        return list(self._dims)

    @property
    def table_name(self) -> str:
        """Name of the backing table (catalog bookkeeping)."""
        return self._table.name

    # -- queries ------------------------------------------------------------

    def query_polyhedron(
        self,
        polyhedron: Polyhedron,
        use_tight_boxes: bool = True,
        cancel_check=None,
        use_zone_maps: bool = True,
        memberships: dict[str, np.ndarray] | None = None,
    ) -> tuple[dict[str, np.ndarray], QueryStats]:
        """Evaluate a polyhedron query through the tree (Figure 4).

        INSIDE subtrees are bulk-returned with a predicate-free range scan
        over the clustered rows (the ``BETWEEN``); PARTIAL leaves get the
        residual geometric filter.  ``cancel_check`` (when given) runs at
        every node visit and inside the underlying range scans, so the
        query service can abandon a traversal mid-flight (deadlines).

        With ``use_zone_maps`` on (and a zone map in the catalog), the
        partial-leaf scans also prune at page granularity: leaf boxes are
        coarser than page boxes (a leaf spans many pages), so a leaf that
        straddles the query boundary usually holds pages entirely outside
        it -- those are skipped -- and pages entirely inside it, whose
        per-point residual filter is skipped.  The pruner shares the
        query's geometry, so results are identical either way.  INSIDE
        subtrees never see the pruner: their scans are predicate-free
        bulk returns whose contract is "every clustered row in range".

        Merge-on-read: one delta snapshot is taken up front; its
        tombstones suppress deleted rows in every range scan of the
        traversal, and its live inserts matching the polyhedron join the
        result as a final piece (the snapshot's own layered grid does
        the point-in-polyhedron work).

        ``memberships`` (column -> IN-list values) degrades to a
        vectorized ``np.isin`` filter here: it is ANDed into the
        residual, applied to INSIDE subtrees (whose scans are otherwise
        predicate-free), and demotes the zone pruner's INSIDE verdicts
        -- the traversal itself still prunes on the polyhedron alone,
        which stays a superset of the answer.
        """
        if polyhedron.dim != len(self._dims):
            raise ValueError(
                f"polyhedron dim {polyhedron.dim} != index dim {len(self._dims)}"
            )
        stats = QueryStats()
        pieces: list[dict[str, np.ndarray]] = []
        pruner = self._pruner(polyhedron) if use_zone_maps else None
        inside_predicate = None
        if memberships:
            inside_predicate = membership_predicate(memberships)
            if pruner is not None:
                pruner = PartialOnlyPruner(pruner)
        snapshot = self._table.delta_snapshot()
        tombstones = snapshot.tombstones if snapshot is not None else None
        stack = [1]
        while stack:
            node = stack.pop()
            if cancel_check is not None:
                cancel_check()
            start, end, box = self._tree.visit_info(node, use_tight_boxes)
            if start == end:
                continue
            stats.nodes_visited += 1
            relation = polyhedron.classify_box(box)
            if relation is BoxRelation.OUTSIDE:
                stats.cells_outside += 1
                continue
            if relation is BoxRelation.INSIDE:
                stats.cells_inside += 1
                rows, piece_stats = range_scan(
                    self._table, start, end, predicate=inside_predicate,
                    cancel_check=cancel_check, tombstones=tombstones,
                )
                stats.merge(piece_stats)
                pieces.append(rows)
                continue
            if self._tree.is_leaf(node):
                stats.cells_partial += 1
                rows, piece_stats = range_scan(
                    self._table,
                    start,
                    end,
                    predicate=self._residual(polyhedron, memberships),
                    cancel_check=cancel_check,
                    pruner=pruner,
                    tombstones=tombstones,
                )
                stats.merge(piece_stats)
                pieces.append(rows)
            else:
                stack.append(2 * node)
                stack.append(2 * node + 1)
        piece = _delta_piece(
            snapshot, polyhedron, tuple(self._dims), stats, memberships
        )
        if piece is not None:
            pieces.append(piece)
        result = _concat_results(self._table, pieces)
        return result, stats

    def candidate_ranges(
        self,
        polyhedron: Polyhedron,
        use_tight_boxes: bool = True,
        cancel_check=None,
    ) -> tuple[list[tuple[int, int]], QueryStats]:
        """Clustered row ranges the Figure 4 traversal would fetch.

        Runs the classification phase only -- no page I/O -- returning
        the ``[start, end)`` ranges of INSIDE subtrees and PARTIAL
        leaves plus the traversal stats.  The union of the ranges is a
        conservative superset of the answer's main-tier rows; the hybrid
        engine intersects it with the bitmap candidate set.
        """
        if polyhedron.dim != len(self._dims):
            raise ValueError(
                f"polyhedron dim {polyhedron.dim} != index dim {len(self._dims)}"
            )
        stats = QueryStats()
        ranges: list[tuple[int, int]] = []
        stack = [1]
        while stack:
            node = stack.pop()
            if cancel_check is not None:
                cancel_check()
            start, end, box = self._tree.visit_info(node, use_tight_boxes)
            if start == end:
                continue
            stats.nodes_visited += 1
            relation = polyhedron.classify_box(box)
            if relation is BoxRelation.OUTSIDE:
                stats.cells_outside += 1
            elif relation is BoxRelation.INSIDE:
                stats.cells_inside += 1
                ranges.append((start, end))
            elif self._tree.is_leaf(node):
                stats.cells_partial += 1
                ranges.append((start, end))
            else:
                stack.append(2 * node)
                stack.append(2 * node + 1)
        return ranges, stats

    def query_polyhedra(
        self,
        polyhedra: list[Polyhedron],
        cancel_checks: list | None = None,
        use_tight_boxes: bool = True,
        use_zone_maps: bool = True,
    ):
        """Evaluate several polyhedron queries in one shared traversal.

        The Figure 4 logic lifted to a query set: every tree node is
        visited once and classified against each member still unresolved
        there, and the claimed row ranges of all members are served by a
        shared fetch pass that decodes each page once.  Returns
        per-member ``(rows, stats, error)`` triples plus the shared-work
        counters -- see :func:`repro.core.batch.batch_kd_query`.
        """
        from repro.core.batch import batch_kd_query

        return batch_kd_query(
            self,
            polyhedra,
            cancel_checks=cancel_checks,
            use_tight_boxes=use_tight_boxes,
            use_zone_maps=use_zone_maps,
        )

    def query_polyhedron_stream(self, polyhedron: Polyhedron, use_tight_boxes: bool = True):
        """Streaming variant of :meth:`query_polyhedron`.

        Yields ``(rows, relation)`` chunks as the traversal resolves
        subtrees -- the index-level analog of §3.1's "stream the points
        back to the client" idea: a caller (e.g. a visualization
        producer) can start consuming INSIDE subtrees while partial
        leaves are still being filtered.
        """
        if polyhedron.dim != len(self._dims):
            raise ValueError(
                f"polyhedron dim {polyhedron.dim} != index dim {len(self._dims)}"
            )
        pruner = self._pruner(polyhedron)
        snapshot = self._table.delta_snapshot()
        tombstones = snapshot.tombstones if snapshot is not None else None
        stack = [1]
        while stack:
            node = stack.pop()
            start, end, box = self._tree.visit_info(node, use_tight_boxes)
            if start == end:
                continue
            relation = polyhedron.classify_box(box)
            if relation is BoxRelation.OUTSIDE:
                continue
            if relation is BoxRelation.INSIDE:
                rows, _ = range_scan(
                    self._table, start, end, tombstones=tombstones
                )
                yield rows, relation
            elif self._tree.is_leaf(node):
                rows, _ = range_scan(
                    self._table,
                    start,
                    end,
                    predicate=self._residual(polyhedron),
                    pruner=pruner,
                    tombstones=tombstones,
                )
                if len(rows["_row_id"]):
                    yield rows, relation
            else:
                stack.append(2 * node)
                stack.append(2 * node + 1)
        piece = _delta_piece(snapshot, polyhedron, tuple(self._dims), QueryStats())
        if piece is not None and len(piece["_row_id"]):
            yield piece, BoxRelation.PARTIAL

    def _pruner(self, polyhedron: Polyhedron):
        """Page-granular zone-map pruner for this query, or ``None``."""
        zone_map = self._table.zone_map()
        if zone_map is None:
            return None
        return zone_map.pruner(polyhedron, self._dims)

    def _residual(
        self, polyhedron: Polyhedron, memberships: dict | None = None
    ):
        dims = self._dims

        def predicate(columns: dict[str, np.ndarray]) -> np.ndarray:
            pts = np.column_stack([columns[d] for d in dims])
            return polyhedron.contains_points(pts)

        if memberships:
            return membership_predicate(memberships, base=predicate)
        return predicate

    def leaf_rows(
        self, leaf: int, tombstones=AUTO_TOMBSTONES
    ) -> tuple[dict[str, np.ndarray], QueryStats]:
        """Fetch the live rows of one leaf (used by the k-NN procedures).

        Tombstoned rows are suppressed; delta inserts are *not* merged
        here -- k-NN callers offer them to their candidate heap directly.
        """
        start, end = self._tree.node_rows(leaf)
        return range_scan(self._table, start, end, tombstones=tombstones)


def _delta_piece(
    snapshot, polyhedron, dims, stats, memberships: dict | None = None
) -> dict[str, np.ndarray] | None:
    """Delta-tier rows matching the polyhedron, shaped like a scan piece."""
    if snapshot is None or not snapshot.num_rows:
        return None
    stats.rows_examined += snapshot.num_rows
    cols, row_ids = snapshot.match(polyhedron, dims=dims)
    if memberships and len(row_ids):
        mask = membership_predicate(memberships)(cols)
        cols = {name: arr[mask] for name, arr in cols.items()}
        row_ids = row_ids[mask]
    stats.rows_returned += len(row_ids)
    piece = dict(cols)
    piece["_row_id"] = row_ids
    return piece


def _concat_results(
    table: Table, pieces: list[dict[str, np.ndarray]]
) -> dict[str, np.ndarray]:
    names = table.column_names + ["_row_id"]
    if not pieces:
        out = {n: np.empty(0, dtype=table.dtype_of(n)) for n in table.column_names}
        out["_row_id"] = np.empty(0, dtype=np.int64)
        return out
    return {n: np.concatenate([p[n] for p in pieces]) for n in names}
