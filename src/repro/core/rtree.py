"""A bulk-loaded (STR) R-tree: the classic baseline the paper argues with.

The paper's introduction lists "Oc-tree, R-tree, SS-tree, SR-tree,
X-tree, TV-tree, Pyramid-tree and Kd-tree" as the existing
multidimensional index family, and argues (citing Gray et al. [11]) that
the kd-tree's one-cut-per-level shape behaves better in a database
setting.  To make that an experiment rather than an assertion, this
module implements the strongest *static* R-tree variant -- Sort-Tile-
Recursive bulk loading (Leutenegger et al.), the standard choice for
read-only point sets -- over the same engine, with the same clustered
leaf storage and the same polyhedron-query interface, so the comparison
isolates the *tree shape*.

Differences from the kd-tree that the ablation measures:

* fan-out ``f`` per node instead of binary cuts -> shallower trees;
* leaf MBRs tile the *data* but may overlap spatially (STR slabs cut on
  sorted coordinates), so point location is not unique;
* node MBRs are the only pruning geometry (no space-tiling partition
  boxes), which rules out the §3.3 boundary-point k-NN -- best-first is
  the natural search here.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.index_base import SpatialIndex, stack_coordinates
from repro.core.knn import KnnResult, NeighborList
from repro.db.catalog import Database
from repro.db.scan import range_scan
from repro.db.stats import QueryStats
from repro.db.table import DEFAULT_ROWS_PER_PAGE, Table
from repro.geometry.boxes import Box, BoxRelation
from repro.geometry.distance import squared_distances
from repro.geometry.halfspace import Polyhedron

__all__ = ["RTreeIndex", "str_pack"]


@dataclass
class _Node:
    """One R-tree node: an MBR plus children or a leaf row range."""

    lo: np.ndarray
    hi: np.ndarray
    children: list[int]  # indices into the node array; empty for leaves
    row_start: int
    row_end: int

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def box(self) -> Box:
        return Box(self.lo, self.hi)


def str_pack(points: np.ndarray, leaf_capacity: int) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Sort-Tile-Recursive packing.

    Returns the permutation that orders points into leaf-contiguous
    runs, plus the ``(start, end)`` row range of every leaf in that
    order.  Recursion: sort the current slab on the current axis, cut it
    into ``ceil((m / cap)^(1/remaining_dims))`` tiles, recurse with the
    next axis.
    """
    points = np.asarray(points, dtype=np.float64)
    n, dim = points.shape
    if leaf_capacity < 1:
        raise ValueError("leaf_capacity must be >= 1")
    permutation = np.arange(n, dtype=np.int64)
    leaves: list[tuple[int, int]] = []

    def recurse(start: int, end: int, axis: int) -> None:
        count = end - start
        if count <= leaf_capacity:
            leaves.append((start, end))
            return
        segment = permutation[start:end]
        order = np.argsort(points[segment, axis], kind="stable")
        permutation[start:end] = segment[order]
        remaining = dim - axis
        if remaining <= 1:
            # Final axis: cut straight into capacity-sized runs.
            for tile_start in range(start, end, leaf_capacity):
                leaves.append((tile_start, min(tile_start + leaf_capacity, end)))
            return
        num_leaves = int(np.ceil(count / leaf_capacity))
        tiles = int(np.ceil(num_leaves ** (1.0 / remaining)))
        tile_size = int(np.ceil(count / tiles))
        for tile_start in range(start, end, tile_size):
            recurse(tile_start, min(tile_start + tile_size, end), axis + 1)

    recurse(0, n, 0)
    return permutation, leaves


class RTreeIndex(SpatialIndex):
    """STR-packed R-tree over a clustered engine table."""

    def __init__(
        self,
        database: Database,
        table: Table,
        dims: list[str],
        nodes: list[_Node],
        root: int,
        height: int,
    ):
        self._db = database
        self._table = table
        self._dims = list(dims)
        self._nodes = nodes
        self._root = root
        self._height = height

    # -- build --------------------------------------------------------------

    @staticmethod
    def build(
        database: Database,
        name: str,
        data: dict[str, np.ndarray],
        dims: list[str],
        leaf_capacity: int | None = None,
        fan_out: int = 16,
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
    ) -> "RTreeIndex":
        """STR-pack the points and materialize the clustered table.

        ``leaf_capacity`` defaults to the kd-tree's √N leaf size so the
        two indexes are compared at matched granularity.
        """
        points = stack_coordinates(data, list(dims))
        n = len(points)
        if leaf_capacity is None:
            leaf_capacity = max(1, int(round(np.sqrt(n))))
        if fan_out < 2:
            raise ValueError("fan_out must be >= 2")

        permutation, leaf_ranges = str_pack(points, leaf_capacity)

        # Leaf ids in packing order; rows clustered by leaf id.
        leaf_ids = np.empty(n, dtype=np.int64)
        for leaf_idx, (start, end) in enumerate(leaf_ranges):
            leaf_ids[permutation[start:end]] = leaf_idx
        table_data = dict(data)
        table_data["rt_leaf"] = leaf_ids
        table = database.create_table(
            name, table_data, rows_per_page=rows_per_page, clustered_by=("rt_leaf",)
        )

        # Build node levels bottom-up with MBRs from the actual points.
        nodes: list[_Node] = []
        level: list[int] = []
        for start, end in leaf_ranges:
            rows = permutation[start:end]
            sub = points[rows]
            nodes.append(
                _Node(
                    lo=sub.min(axis=0),
                    hi=sub.max(axis=0),
                    children=[],
                    row_start=start,
                    row_end=end,
                )
            )
            level.append(len(nodes) - 1)
        height = 1
        while len(level) > 1:
            next_level: list[int] = []
            for group_start in range(0, len(level), fan_out):
                group = level[group_start: group_start + fan_out]
                lo = np.min([nodes[i].lo for i in group], axis=0)
                hi = np.max([nodes[i].hi for i in group], axis=0)
                nodes.append(
                    _Node(
                        lo=lo,
                        hi=hi,
                        children=list(group),
                        row_start=nodes[group[0]].row_start,
                        row_end=nodes[group[-1]].row_end,
                    )
                )
                next_level.append(len(nodes) - 1)
            level = next_level
            height += 1

        index = RTreeIndex(database, table, dims, nodes, level[0], height)
        database.register_index(f"{name}.rtree", index)
        return index

    # -- properties -----------------------------------------------------------

    @property
    def table(self) -> Table:
        """The clustered data table."""
        return self._table

    @property
    def table_name(self) -> str:
        """Name of the backing table (catalog bookkeeping)."""
        return self._table.name

    @property
    def dims(self) -> list[str]:
        """Ordered coordinate column names."""
        return list(self._dims)

    @property
    def height(self) -> int:
        """Number of node levels (leaves = 1)."""
        return self._height

    @property
    def num_leaves(self) -> int:
        """Leaf node count."""
        return sum(1 for node in self._nodes if node.is_leaf)

    def leaf_statistics(self) -> dict[str, float]:
        """Leaf sizes and MBR shapes (the kd comparison's counterpart)."""
        sizes = [n.row_end - n.row_start for n in self._nodes if n.is_leaf]
        elongations = [
            n.box().elongation
            for n in self._nodes
            if n.is_leaf and np.isfinite(n.box().elongation)
        ]
        return {
            "height": float(self._height),
            "num_leaves": float(len(sizes)),
            "mean_leaf_size": float(np.mean(sizes)),
            "mean_leaf_elongation": float(np.mean(elongations)) if elongations else 1.0,
        }

    # -- queries ------------------------------------------------------------------

    def query_polyhedron(
        self, polyhedron: Polyhedron
    ) -> tuple[dict[str, np.ndarray], QueryStats]:
        """MBR-pruned polyhedron query (same contract as the kd-tree's)."""
        if polyhedron.dim != len(self._dims):
            raise ValueError(
                f"polyhedron dim {polyhedron.dim} != index dim {len(self._dims)}"
            )
        stats = QueryStats()
        pieces: list[dict[str, np.ndarray]] = []
        stack = [self._root]
        while stack:
            node = self._nodes[stack.pop()]
            if node.row_start == node.row_end:
                continue
            stats.nodes_visited += 1
            relation = polyhedron.classify_box(node.box())
            if relation is BoxRelation.OUTSIDE:
                stats.cells_outside += 1
                continue
            if relation is BoxRelation.INSIDE:
                stats.cells_inside += 1
                rows, piece = range_scan(self._table, node.row_start, node.row_end)
                stats.merge(piece)
                pieces.append(rows)
                continue
            if node.is_leaf:
                stats.cells_partial += 1
                rows, piece = range_scan(
                    self._table,
                    node.row_start,
                    node.row_end,
                    predicate=self._residual(polyhedron),
                )
                stats.merge(piece)
                pieces.append(rows)
            else:
                stack.extend(node.children)
        return _concat(self._table, pieces), stats

    def _residual(self, polyhedron: Polyhedron):
        dims = self._dims

        def predicate(columns: dict[str, np.ndarray]) -> np.ndarray:
            pts = np.column_stack([columns[d] for d in dims])
            return polyhedron.contains_points(pts)

        return predicate

    def knn(self, point: np.ndarray, k: int) -> KnnResult:
        """Best-first k-NN over the MBR hierarchy."""
        if k < 1:
            raise ValueError("k must be >= 1")
        point = np.asarray(point, dtype=np.float64)
        stats = QueryStats()
        result = NeighborList(k)
        heap: list[tuple[float, int]] = [(0.0, self._root)]
        boxes_examined = 0
        while heap:
            bound, node_idx = heapq.heappop(heap)
            if bound >= result.worst:
                break
            node = self._nodes[node_idx]
            stats.nodes_visited += 1
            if node.is_leaf:
                boxes_examined += 1
                rows, piece = range_scan(self._table, node.row_start, node.row_end)
                stats.merge(piece)
                if len(rows["_row_id"]):
                    pts = self.points_of(rows)
                    dist2 = squared_distances(pts, point)
                    result.offer(np.sqrt(dist2), rows["_row_id"])
            else:
                for child_idx in node.children:
                    child = self._nodes[child_idx]
                    child_bound = child.box().min_distance_to_point(point)
                    if child_bound < result.worst:
                        heapq.heappush(heap, (child_bound, child_idx))
        stats.extra["boxes_examined"] = boxes_examined
        row_ids, distances = result.finish()
        stats.rows_returned = len(row_ids)
        return KnnResult(row_ids=row_ids, distances=distances, stats=stats)


def _concat(table: Table, pieces: list[dict[str, np.ndarray]]) -> dict[str, np.ndarray]:
    names = table.column_names + ["_row_id"]
    if not pieces:
        out = {n: np.empty(0, dtype=table.dtype_of(n)) for n in table.column_names}
        out["_row_id"] = np.empty(0, dtype=np.int64)
        return out
    return {n: np.concatenate([p[n] for p in pieces]) for n in names}
