"""The query service: worker pool, deadlines, and the serving loop.

This is the reproduction's SkyServer front end, in-process: clients open
sessions, submit polyhedron queries, and get tickets; a pool of worker
threads pulls admitted queries, routes each through the *engine* --
anything implementing ``execute(polyhedron, cancel_check)`` plus
``table_name`` / ``dims`` / ``layout_version``, i.e. a single-table
:class:`~repro.core.planner.QueryPlanner` or a
:class:`~repro.shard.ScatterGatherExecutor` over a partitioned one --
consults the result cache, and enforces per-query deadlines with
cooperative cancellation checks inside the scan/kd-tree iteration loops
(for a sharded engine the check propagates into every in-flight shard
worker).  Every query leaves one
:class:`~repro.service.metrics.QueryMetrics` record behind.

Sharded engines may degrade instead of failing: a query whose engine
lost some shards to storage faults completes with ``partial=True`` and
the dead shard ids in ``failed_shards``.  Partial results are never
cached -- the next attempt recomputes against whatever shards are
healthy then.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.planner import PlannedQuery
from repro.db.catalog import Database
from repro.db.errors import StorageFault
from repro.geometry.halfspace import Polyhedron
from repro.service.admission import AdmissionQueue
from repro.service.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    QueryFault,
    ServiceClosed,
)
from repro.service.metrics import MetricsRegistry, QueryMetrics
from repro.service.result_cache import ResultCache, query_fingerprint
from repro.service.session import Session, SessionManager

__all__ = ["Deadline", "QueryOutcome", "QueryTicket", "QueryService"]


class Deadline:
    """A wall-clock budget with a cooperative :meth:`check` hook.

    ``check`` is cheap enough to call once per page or tree node; it
    raises :class:`DeadlineExceeded` once the budget is spent, which the
    executors let propagate to abandon the query mid-iteration.
    """

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError("deadline seconds must be >= 0")
        self.seconds = seconds
        self.expires_at = time.monotonic() + seconds

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        """Whether the budget is spent."""
        return time.monotonic() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"query exceeded its {self.seconds * 1e3:.1f} ms deadline"
            )


@dataclass
class QueryOutcome:
    """What a completed query hands back to its client."""

    rows: dict
    stats: Any
    chosen_path: str
    estimated_selectivity: float
    cache_hit: bool
    metrics: QueryMetrics
    #: The planner degraded to a different access path on a storage fault.
    fallback: bool = False
    #: Sharded engines only: the rows cover only the surviving shards.
    partial: bool = False
    #: Shard ids that died mid-query (empty unless ``partial``).
    failed_shards: tuple = ()


class QueryTicket:
    """A future-like handle for one submitted query."""

    def __init__(self, query_id: int, session: Session):
        self.query_id = query_id
        self.session = session
        self._event = threading.Event()
        self._outcome: QueryOutcome | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Whether the query has finished (successfully or not)."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> QueryOutcome:
        """Block for the outcome; re-raises the query's error if it failed."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"query {self.query_id} still pending")
        if self._error is not None:
            raise self._error
        assert self._outcome is not None
        return self._outcome

    # -- completion (service side) -----------------------------------------

    def _complete(self, outcome: QueryOutcome) -> None:
        self._outcome = outcome
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass
class _WorkItem:
    ticket: QueryTicket
    polyhedron: Polyhedron
    deadline: Deadline | None
    tag: str
    #: Optional IN-list predicates (column -> accepted values), applied
    #: conjunctively with the polyhedron by every engine.
    memberships: dict | None = None
    enqueued_at: float = field(default_factory=time.monotonic)


class QueryService:
    """An in-process, multi-client query server over one planner.

    Parameters
    ----------
    database:
        The catalog whose mutations invalidate the result cache.  May be
        ``None`` for engines that own their storage privately (a sharded
        engine runs one database per shard); cache invalidation then
        rides solely on the engine's ``layout_version``.
    planner:
        The engine every admitted query runs through: any object with
        ``execute(polyhedron, cancel_check) -> PlannedQuery`` plus
        ``table_name`` / ``dims`` / ``layout_version`` properties
        (:class:`~repro.core.planner.QueryPlanner` or
        :class:`~repro.shard.ScatterGatherExecutor`).
    workers:
        Worker thread count (the paper's server ran fully parallel I/O).
    queue_depth:
        Admission bound; a full queue rejects with backpressure.
    cache_entries:
        Result-cache capacity in entries (``0`` disables caching).
    cache_bytes:
        Approximate byte budget of the result cache (``None`` disables
        the byte bound; entry count still applies).
    default_deadline:
        Seconds applied to queries submitted without an explicit one
        (``None`` = no deadline).
    batch_size:
        Maximum micro-batch occupancy.  ``1`` (the default) serves each
        query alone; larger values let a worker pull several admitted
        queries at once and run them through the engine's
        ``execute_batch`` (when it has one), decoding shared pages once
        for the whole batch.  Result-cache hits are peeled off before
        batch formation, and each member keeps its own deadline,
        cancellation, and failure handling.
    batch_delay_s:
        Bounded formation delay: how long a worker holding a short batch
        waits for more arrivals before running it.  ``0`` (the default)
        batches only the backlog that is already queued.
    replicas:
        A divergent :class:`~repro.tune.replicas.ReplicaSet` (or a
        prebuilt :class:`~repro.tune.replicas.ReplicaRouter`) to serve
        from instead of ``planner``: each query routes to whichever
        replica's configuration prices it cheapest.  Mutually exclusive
        with a non-``None`` ``planner``.
    trace_recorder:
        A :class:`~repro.tune.trace.WorkloadTraceRecorder` fed by every
        executed (non-cache-hit) query -- the raw material of the
        auto-tuner.  Planner-backed engines record themselves (with
        per-replica tags under a router); the service records only for
        engines that cannot.
    """

    def __init__(
        self,
        database: Database | None,
        planner: Any = None,
        *,
        workers: int = 4,
        queue_depth: int = 64,
        cache_entries: int = 256,
        cache_bytes: int | None = 64 << 20,
        default_deadline: float | None = None,
        batch_size: int = 1,
        batch_delay_s: float = 0.0,
        replicas: Any = None,
        trace_recorder: Any = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if batch_delay_s < 0:
            raise ValueError("batch_delay_s must be >= 0")
        if replicas is not None:
            if planner is not None:
                raise ValueError("pass either planner or replicas, not both")
            from repro.tune.replicas import ReplicaRouter, ReplicaSet

            if isinstance(replicas, ReplicaSet):
                replicas = ReplicaRouter(replicas)
            planner = replicas
        if planner is None:
            raise ValueError("a planner (or replicas) is required")
        self.database = database
        self.planner = planner
        self.trace_recorder = trace_recorder
        if trace_recorder is not None:
            attach = getattr(planner, "attach_trace_recorder", None)
            if callable(attach):
                attach(trace_recorder)
            elif hasattr(planner, "trace_recorder"):
                planner.trace_recorder = trace_recorder
        self.sessions = SessionManager()
        self.admission = AdmissionQueue(queue_depth)
        self.cache = (
            ResultCache(cache_entries, max_bytes=cache_bytes)
            if cache_entries > 0
            else None
        )
        self.metrics = MetricsRegistry()
        self.default_deadline = default_deadline
        self.batch_size = batch_size
        self.batch_delay_s = batch_delay_s
        self._engine_batches = callable(getattr(planner, "execute_batch", None))
        self._num_workers = workers
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._running = False
        self._query_ids = itertools.count(1)
        if self.cache is not None and self.database is not None:
            self._listener = lambda table: self.cache.invalidate_table(table)
            self.database.add_mutation_listener(self._listener)
        else:
            self._listener = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "QueryService":
        """Spin up the worker pool; idempotent."""
        if self._running:
            return self
        self._stop.clear()
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"query-worker-{i}", daemon=True
            )
            for i in range(self._num_workers)
        ]
        for thread in self._threads:
            thread.start()
        self._running = True
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop serving; ``drain`` finishes queued work first."""
        if not self._running:
            return
        self._running = False  # refuse new submissions immediately
        if drain:
            while len(self.admission):
                time.sleep(0.001)
        else:
            for item in self.admission.drain():
                item.ticket._fail(ServiceClosed("service stopped before execution"))
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
        if self._listener is not None:
            self.database.remove_mutation_listener(self._listener)
            self._listener = None

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    @property
    def running(self) -> bool:
        """Whether the worker pool is accepting queries."""
        return self._running

    @property
    def alive_workers(self) -> int:
        """Worker threads currently alive (health check)."""
        return sum(1 for t in self._threads if t.is_alive())

    # -- client API -----------------------------------------------------------

    def open_session(self, name: str = "") -> Session:
        """Open a client session."""
        return self.sessions.open(name)

    def submit(
        self,
        polyhedron: Polyhedron,
        *,
        session: Session | None = None,
        deadline: float | Deadline | None = None,
        tag: str = "",
        memberships: dict | None = None,
    ) -> QueryTicket:
        """Admit one query; raises :class:`AdmissionRejected` when full.

        The deadline clock starts at submission, so time spent queued
        counts against the budget exactly as a web client's timeout
        would.
        """
        if not self._running:
            raise ServiceClosed("service is not running; call start()")
        if session is None:
            session = self.sessions.open()
        if deadline is None and self.default_deadline is not None:
            deadline = self.default_deadline
        if deadline is not None and not isinstance(deadline, Deadline):
            deadline = Deadline(float(deadline))
        ticket = QueryTicket(next(self._query_ids), session)
        item = _WorkItem(
            ticket=ticket,
            polyhedron=polyhedron,
            deadline=deadline,
            tag=tag,
            memberships=memberships,
        )
        if not self.admission.offer(item):
            session.note_rejected()
            self.metrics.note_rejected()
            raise AdmissionRejected(self.admission.depth)
        session.note_submitted()
        self.metrics.note_submitted()
        return ticket

    def execute(
        self,
        polyhedron: Polyhedron,
        *,
        session: Session | None = None,
        deadline: float | Deadline | None = None,
        tag: str = "",
        timeout: float | None = None,
        memberships: dict | None = None,
    ) -> QueryOutcome:
        """Submit and wait: the blocking convenience wrapper."""
        return self.submit(
            polyhedron,
            session=session,
            deadline=deadline,
            tag=tag,
            memberships=memberships,
        ).result(timeout)

    def report(self) -> dict:
        """Everything the service knows about its own behavior.

        With a sharded engine (``database is None``), the ``io`` section
        aggregates across the per-shard backends and an ``engine``
        section carries the scatter-gather counters.
        """
        report = {
            "service": self.metrics.summary(),
            "admission": self.admission.counters(),
            "cache": self.cache.counters() if self.cache is not None else {},
            # The engine layout the cache is currently fingerprinting
            # against; moves on every ingest write, merge, and re-cut.
            "layout_version": getattr(self.planner, "layout_version", ""),
            "sessions": {
                s.session_id: s.snapshot().as_dict() for s in self.sessions.all()
            },
        }
        if self.database is not None:
            report["procedures"] = self.database.procedures.timings()
            report["io"] = self.database.io_stats.as_dict()
        else:
            report["procedures"] = {}
            engine_io = getattr(self.planner, "io_stats", None)
            report["io"] = engine_io().as_dict() if callable(engine_io) else {}
        engine_counters = getattr(self.planner, "counters", None)
        if callable(engine_counters):
            report["engine"] = engine_counters()
        return report

    # -- worker side ----------------------------------------------------------

    def _worker_loop(self) -> None:
        batched = self.batch_size > 1 and self._engine_batches
        while not self._stop.is_set():
            if batched:
                items = self.admission.pop_batch(
                    self.batch_size, delay_s=self.batch_delay_s, timeout=0.05
                )
                if not items:
                    continue
                try:
                    self._run_batch(items)
                except BaseException as exc:  # last-ditch: never kill a worker
                    for item in items:
                        if not item.ticket.done():
                            item.ticket._fail(exc)
            else:
                item = self.admission.pop(timeout=0.05)
                if item is None:
                    continue
                try:
                    self._run_one(item)
                except BaseException as exc:  # last-ditch: never kill a worker
                    item.ticket._fail(exc)

    def _run_one(self, item: _WorkItem) -> None:
        started = time.monotonic()
        try:
            if item.deadline is not None:
                item.deadline.check()
            planned, cache_hit = self._plan_or_cached(item)
            self._complete_item(item, planned, cache_hit, started)
        except Exception as exc:
            self._fail_item(item, exc, started)

    def _run_batch(self, items: list[_WorkItem]) -> None:
        """Serve one micro-batch through the engine's shared executor.

        Cache hits and already-expired deadlines are peeled off first;
        the rest run as one ``execute_batch`` call whose per-member
        outcomes feed the exact same completion/failure paths as solo
        execution -- one member's deadline or fault never disturbs its
        siblings.
        """
        started = time.monotonic()
        pending: list[_WorkItem] = []
        for item in items:
            try:
                if item.deadline is not None:
                    item.deadline.check()
                cached = self._cache_get(item)
            except Exception as exc:
                self._fail_item(item, exc, started)
                continue
            if cached is not None:
                self._complete_item(item, cached, True, started)
                continue
            pending.append(item)
        if not pending:
            return
        checks = [
            item.deadline.check if item.deadline is not None else None
            for item in pending
        ]
        try:
            batch = self.planner.execute_batch(
                [item.polyhedron for item in pending],
                checks,
                memberships_list=[item.memberships for item in pending],
            )
        except Exception as exc:
            # The engine refused the whole batch; fail every member with
            # the same structured handling a solo run would get.
            for item in pending:
                self._fail_item(item, exc, started)
            return
        self.metrics.note_batch(
            len(pending), batch.pages_decoded, batch.shared_decode_hits
        )
        for item, member in zip(pending, batch.members):
            if member.error is not None:
                if isinstance(member.error, Exception):
                    self._fail_item(item, member.error, started)
                else:
                    item.ticket._fail(member.error)
                continue
            self._cache_put(item, member.planned)
            self._complete_item(item, member.planned, False, started)

    def _complete_item(
        self,
        item: _WorkItem,
        planned: PlannedQuery,
        cache_hit: bool,
        started: float,
    ) -> None:
        queue_wait = started - item.enqueued_at
        session = item.ticket.session
        exec_time = time.monotonic() - started
        # Engines exposing ``trace_recorder`` (planners, replica
        # routers) record their own executions with engine-level wall
        # times; for the rest (e.g. process shard pools) the service is
        # the only vantage point.  Cache hits decode nothing and are
        # never trace-worthy.
        if (
            self.trace_recorder is not None
            and not cache_hit
            and getattr(self.planner, "trace_recorder", None)
            is not self.trace_recorder
        ):
            try:
                self.trace_recorder.record(
                    self.planner.table_name,
                    self.planner.dims,
                    item.polyhedron,
                    item.memberships,
                    planned,
                    exec_time,
                )
            except Exception:
                pass  # tracing must never fail a served query
        fallback = planned.fallback and not cache_hit
        metrics = QueryMetrics(
            query_id=item.ticket.query_id,
            session_id=session.session_id,
            tag=item.tag,
            queue_wait_s=queue_wait,
            exec_time_s=exec_time,
            pages_read=0 if cache_hit else planned.stats.pages_touched,
            pages_skipped=0 if cache_hit else planned.stats.pages_skipped,
            pages_prefetched=0 if cache_hit else planned.stats.pages_prefetched,
            rows_examined=0 if cache_hit else planned.stats.rows_examined,
            rows_returned=planned.stats.rows_returned,
            cache_hit=cache_hit,
            chosen_path="cache" if cache_hit else planned.chosen_path,
            estimated_selectivity=planned.estimated_selectivity,
            actual_selectivity=(
                float("nan") if cache_hit
                else getattr(planned, "actual_selectivity", float("nan"))
            ),
            fallback=fallback,
            fallback_reason=planned.fallback_reason if fallback else "",
            shards_dispatched=0 if cache_hit else planned.shards_dispatched,
            shards_pruned=0 if cache_hit else planned.shards_pruned,
            shard_faults=0 if cache_hit else planned.shard_faults,
            partial=planned.partial,
        )
        self.metrics.record(metrics)
        session.note_completed(
            rows_returned=planned.stats.rows_returned,
            queue_wait_s=queue_wait,
            exec_time_s=exec_time,
            cache_hit=cache_hit,
        )
        item.ticket._complete(
            QueryOutcome(
                rows=planned.rows,
                stats=planned.stats,
                chosen_path=planned.chosen_path,
                estimated_selectivity=planned.estimated_selectivity,
                cache_hit=cache_hit,
                metrics=metrics,
                fallback=fallback,
                partial=planned.partial,
                failed_shards=planned.failed_shards,
            )
        )

    def _fail_item(
        self, item: _WorkItem, exc: BaseException, started: float
    ) -> None:
        queue_wait = started - item.enqueued_at
        session = item.ticket.session
        if isinstance(exc, DeadlineExceeded):
            self._record_failure(item, queue_wait, started, deadline_missed=True)
            session.note_failed(deadline_missed=True)
            item.ticket._fail(exc)
        elif isinstance(exc, StorageFault):
            # Every retry and fallback below us is exhausted: hand the
            # client a structured error, keep the worker alive.
            self._record_failure(
                item, queue_wait, started, error=type(exc).__name__, fault=True
            )
            session.note_failed()
            wrapped = QueryFault(item.ticket.query_id, item.tag, exc)
            wrapped.__cause__ = exc
            item.ticket._fail(wrapped)
        else:
            self._record_failure(
                item, queue_wait, started, error=type(exc).__name__
            )
            session.note_failed()
            item.ticket._fail(exc)

    def _fingerprint(self, item: _WorkItem) -> str:
        # Under a replica router the engine scopes each fingerprint to
        # the replica/config that would serve the query, so divergently
        # configured copies never share result-cache entries.
        config_id = ""
        scope = getattr(self.planner, "cache_scope", None)
        if callable(scope):
            config_id = scope(item.polyhedron, item.memberships)
        return query_fingerprint(
            self.planner.table_name,
            self.planner.dims,
            item.polyhedron,
            layout_version=getattr(self.planner, "layout_version", ""),
            memberships=item.memberships,
            config_id=config_id,
        )

    def _cache_get(self, item: _WorkItem) -> PlannedQuery | None:
        if self.cache is None:
            return None
        return self.cache.get(self._fingerprint(item))

    def _cache_put(self, item: _WorkItem, planned: PlannedQuery) -> None:
        # A partial answer only reflects which shards happened to be
        # healthy at that instant -- never let it outlive the fault.
        # ``no_cache`` is the routing layer's veto: an answer served by a
        # degraded (non-preferred) replica carries the preferred
        # replica's fingerprint scope and must not be replayed under it.
        if (
            self.cache is not None
            and not planned.partial
            and not getattr(planned, "no_cache", False)
        ):
            self.cache.put(
                self._fingerprint(item), self.planner.table_name, planned
            )

    def _plan_or_cached(self, item: _WorkItem) -> tuple[PlannedQuery, bool]:
        cached = self._cache_get(item)
        if cached is not None:
            return cached, True
        planned = self._plan(item)
        self._cache_put(item, planned)
        return planned, False

    def _plan(self, item: _WorkItem) -> PlannedQuery:
        cancel = item.deadline.check if item.deadline is not None else None
        if item.memberships is not None:
            return self.planner.execute(
                item.polyhedron, cancel_check=cancel, memberships=item.memberships
            )
        return self.planner.execute(item.polyhedron, cancel_check=cancel)

    def _record_failure(
        self,
        item: _WorkItem,
        queue_wait: float,
        started: float,
        *,
        deadline_missed: bool = False,
        error: str = "",
        fault: bool = False,
    ) -> None:
        self.metrics.record(
            QueryMetrics(
                query_id=item.ticket.query_id,
                session_id=item.ticket.session.session_id,
                tag=item.tag,
                queue_wait_s=queue_wait,
                exec_time_s=time.monotonic() - started,
                deadline_missed=deadline_missed,
                error=error or ("DeadlineExceeded" if deadline_missed else ""),
                storage_fault=fault,
            )
        )
