"""Exceptions of the concurrent query service.

These are the service's contract with its clients: admission control
rejects with :class:`AdmissionRejected` (backpressure, retry later),
deadlines surface as :class:`DeadlineExceeded` (the query was abandoned
cooperatively, the worker survived), and a stopped service refuses new
work with :class:`ServiceClosed`.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "AdmissionRejected",
    "DeadlineExceeded",
    "ServiceClosed",
]


class ServiceError(Exception):
    """Base class for every query-service error."""


class AdmissionRejected(ServiceError):
    """The admission queue is full; the client should back off and retry."""

    def __init__(self, depth: int):
        super().__init__(f"admission queue full (depth {depth}); retry later")
        self.depth = depth


class DeadlineExceeded(ServiceError):
    """A query ran past its deadline and was cancelled cooperatively."""


class ServiceClosed(ServiceError):
    """The service is stopped (or stopping) and accepts no new queries."""
