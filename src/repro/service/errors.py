"""Exceptions of the concurrent query service.

These are the service's contract with its clients: admission control
rejects with :class:`AdmissionRejected` (backpressure, retry later),
deadlines surface as :class:`DeadlineExceeded` (the query was abandoned
cooperatively, the worker survived), a stopped service refuses new work
with :class:`ServiceClosed`, and a query that dies on an unrecoverable
storage fault -- every retry and fallback below it exhausted -- comes
back as a structured :class:`QueryFault` instead of a raw engine
exception (and never kills the worker thread that ran it).
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "AdmissionRejected",
    "DeadlineExceeded",
    "ServiceClosed",
    "QueryFault",
]


class ServiceError(Exception):
    """Base class for every query-service error."""


class AdmissionRejected(ServiceError):
    """The admission queue is full; the client should back off and retry."""

    def __init__(self, depth: int):
        super().__init__(f"admission queue full (depth {depth}); retry later")
        self.depth = depth


class DeadlineExceeded(ServiceError):
    """A query ran past its deadline and was cancelled cooperatively."""


class ServiceClosed(ServiceError):
    """The service is stopped (or stopping) and accepts no new queries."""


class QueryFault(ServiceError):
    """A query failed on an unrecoverable storage fault.

    Carries enough structure for a client (or the replay driver) to tell
    *which* query failed and *why* without parsing messages; the
    original engine exception is attached as ``__cause__``.
    """

    def __init__(self, query_id: int, tag: str, cause: BaseException):
        self.query_id = query_id
        self.tag = tag
        self.cause_type = type(cause).__name__
        super().__init__(
            f"query {query_id}" + (f" [{tag}]" if tag else "")
            + f" failed on {self.cause_type}: {cause}"
        )
