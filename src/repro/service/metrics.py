"""Per-query and service-level metrics.

Every number the benchmarks already trust -- pages touched, rows
examined/returned, cache hits -- flows from :class:`repro.db.stats`
counters; this module adds the serving dimension on top: queue wait,
execution time, planner choice, deadline misses, per-procedure wall
time.  One :class:`QueryMetrics` record is appended per finished query
(completed, failed, or deadline-missed); :meth:`MetricsRegistry.summary`
aggregates them into the service-level view a replay prints.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.db.procedures import ProcedureRegistry

__all__ = ["QueryMetrics", "MetricsRegistry", "SELECTIVITY_ERROR_BUCKETS"]

#: Upper bounds of the ``selectivity_error`` histogram buckets (absolute
#: |estimated - actual| selectivity); errors above the last bound land
#: in a final ``inf`` bucket.
SELECTIVITY_ERROR_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.25, 0.5)


@dataclass(frozen=True)
class QueryMetrics:
    """The full story of one query through the service."""

    query_id: int
    session_id: str
    tag: str = ""
    queue_wait_s: float = 0.0
    exec_time_s: float = 0.0
    pages_read: int = 0
    #: Pages proven irrelevant by zone maps and never read or decoded.
    pages_skipped: int = 0
    #: Pages pulled in via coalesced read-ahead instead of point reads.
    pages_prefetched: int = 0
    rows_examined: int = 0
    rows_returned: int = 0
    cache_hit: bool = False
    chosen_path: str = ""
    estimated_selectivity: float = float("nan")
    #: Returned rows / live rows, filled in after execution; NaN on
    #: cache hits and failures.  ``selectivity_error`` compares it to
    #: the estimate the planner chose its engine with.
    actual_selectivity: float = float("nan")
    deadline_missed: bool = False
    error: str = ""
    #: The planner degraded to another access path on a storage fault
    #: (the query still completed, correctly).
    fallback: bool = False
    fallback_reason: str = ""
    #: The query failed on an unrecoverable storage fault.
    storage_fault: bool = False
    #: Sharded engines only: shards the query actually ran on.
    shards_dispatched: int = 0
    #: Sharded engines only: shards pruned by box classification (zero I/O).
    shards_pruned: int = 0
    #: Sharded engines only: shards that died mid-query on a storage fault.
    shard_faults: int = 0
    #: The result covers only the surviving shards (degraded, not failed).
    partial: bool = False

    @property
    def ok(self) -> bool:
        """Whether the query completed with a result."""
        return not self.error and not self.deadline_missed

    @property
    def selectivity_error(self) -> float:
        """``|estimated - actual|`` selectivity, NaN when either is unknown."""
        return abs(self.estimated_selectivity - self.actual_selectivity)


@dataclass
class _Totals:
    submitted: int = 0
    rejected: int = 0
    batches: int = 0
    batch_members: int = 0
    batch_pages_decoded: int = 0
    shared_decode_hits: int = 0


class MetricsRegistry:
    """Thread-safe registry of per-query records plus service counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[QueryMetrics] = []
        self._totals = _Totals()

    # -- recording (called by the service) ---------------------------------

    def note_submitted(self) -> None:
        with self._lock:
            self._totals.submitted += 1

    def note_rejected(self) -> None:
        with self._lock:
            self._totals.rejected += 1

    def note_batch(
        self, occupancy: int, pages_decoded: int, shared_decode_hits: int
    ) -> None:
        """Record one formed micro-batch and its shared-work counters.

        ``occupancy`` is the number of member queries co-executed (cache
        hits peeled off before formation do not count);
        ``shared_decode_hits`` counts page decodes that served an extra
        member beyond the first -- work a solo run would have repeated.
        """
        with self._lock:
            self._totals.batches += 1
            self._totals.batch_members += occupancy
            self._totals.batch_pages_decoded += pages_decoded
            self._totals.shared_decode_hits += shared_decode_hits

    def record(self, metrics: QueryMetrics) -> None:
        """Append one finished query's record."""
        with self._lock:
            self._records.append(metrics)

    # -- reading -------------------------------------------------------------

    def per_query(self) -> list[QueryMetrics]:
        """Copy of every record, in completion order."""
        with self._lock:
            return list(self._records)

    def summary(self) -> dict[str, float]:
        """Service-level aggregates over all finished queries."""
        with self._lock:
            records = list(self._records)
            submitted = self._totals.submitted
            rejected = self._totals.rejected
            batches = self._totals.batches
            batch_members = self._totals.batch_members
            batch_pages_decoded = self._totals.batch_pages_decoded
            shared_decode_hits = self._totals.shared_decode_hits
        done = [r for r in records if r.ok]
        waits = [r.queue_wait_s for r in records]
        execs = [r.exec_time_s for r in done]
        errors = [
            r.selectivity_error
            for r in done
            if r.selectivity_error == r.selectivity_error  # drop NaN
        ]
        return {
            "submitted": float(submitted),
            "rejected": float(rejected),
            "finished": float(len(records)),
            "completed": float(len(done)),
            "failed": float(sum(1 for r in records if r.error and not r.deadline_missed)),
            "deadline_misses": float(sum(1 for r in records if r.deadline_missed)),
            "cache_hits": float(sum(1 for r in records if r.cache_hit)),
            "cache_hit_rate": (
                sum(1 for r in done if r.cache_hit) / len(done) if done else 0.0
            ),
            "pages_read": float(sum(r.pages_read for r in done)),
            "pages_skipped": float(sum(r.pages_skipped for r in done)),
            "pages_prefetched": float(sum(r.pages_prefetched for r in done)),
            "rows_returned": float(sum(r.rows_returned for r in done)),
            "mean_queue_wait_s": sum(waits) / len(waits) if waits else 0.0,
            "max_queue_wait_s": max(waits) if waits else 0.0,
            "mean_exec_time_s": sum(execs) / len(execs) if execs else 0.0,
            "max_exec_time_s": max(execs) if execs else 0.0,
            "kdtree_queries": float(sum(1 for r in done if r.chosen_path == "kdtree")),
            "scan_queries": float(sum(1 for r in done if r.chosen_path == "scan")),
            "bitmap_queries": float(sum(1 for r in done if r.chosen_path == "bitmap")),
            "hybrid_queries": float(sum(1 for r in done if r.chosen_path == "hybrid")),
            "mean_selectivity_error": (
                sum(errors) / len(errors) if errors else 0.0
            ),
            "max_selectivity_error": max(errors) if errors else 0.0,
            "planner_fallbacks": float(sum(1 for r in done if r.fallback)),
            "storage_faults": float(sum(1 for r in records if r.storage_fault)),
            "shards_dispatched": float(sum(r.shards_dispatched for r in records)),
            "shards_pruned": float(sum(r.shards_pruned for r in records)),
            "shard_faults": float(sum(r.shard_faults for r in records)),
            "partial_results": float(sum(1 for r in records if r.partial)),
            "batches": float(batches),
            "batch_members": float(batch_members),
            "mean_batch_occupancy": (
                batch_members / batches if batches else 0.0
            ),
            "batch_pages_decoded": float(batch_pages_decoded),
            "shared_decode_hits": float(shared_decode_hits),
        }

    def selectivity_error_histogram(self) -> dict[str, int]:
        """How far off the planner's selectivity estimates ran.

        Buckets are cumulative-exclusive: each key ``le_<bound>`` counts
        completed queries whose ``|estimated - actual|`` error falls in
        ``(previous bound, bound]``; ``inf`` collects the rest.  Queries
        with no measured actual selectivity (cache hits, failures) are
        excluded.
        """
        with self._lock:
            records = list(self._records)
        errors = [
            r.selectivity_error
            for r in records
            if r.ok and r.selectivity_error == r.selectivity_error
        ]
        histogram = {f"le_{bound}": 0 for bound in SELECTIVITY_ERROR_BUCKETS}
        histogram["inf"] = 0
        for error in errors:
            for bound in SELECTIVITY_ERROR_BUCKETS:
                if error <= bound:
                    histogram[f"le_{bound}"] += 1
                    break
            else:
                histogram["inf"] += 1
        return histogram

    def procedure_report(self, procedures: ProcedureRegistry) -> dict[str, dict[str, float]]:
        """Per-procedure calls and cumulative wall time (from the registry)."""
        return procedures.timings()

    def format_report(
        self, procedures: ProcedureRegistry | None = None
    ) -> str:
        """Human-readable multi-line report (what the CLI prints)."""
        s = self.summary()
        lines = [
            "query service metrics",
            f"  submitted          {int(s['submitted']):>8}",
            f"  rejected (queue)   {int(s['rejected']):>8}",
            f"  completed          {int(s['completed']):>8}",
            f"  deadline misses    {int(s['deadline_misses']):>8}",
            f"  failed             {int(s['failed']):>8}",
            f"  cache hits         {int(s['cache_hits']):>8}"
            f"   (hit rate {s['cache_hit_rate']:.2%})",
            f"  pages read         {int(s['pages_read']):>8}",
            f"  pages skipped      {int(s['pages_skipped']):>8}"
            f"   prefetched {int(s['pages_prefetched'])}",
            f"  rows returned      {int(s['rows_returned']):>8}",
            f"  planner: kd-tree   {int(s['kdtree_queries']):>8}"
            f"   scan {int(s['scan_queries'])}"
            f"   bitmap {int(s['bitmap_queries'])}"
            f"   hybrid {int(s['hybrid_queries'])}",
            f"  selectivity error  mean {s['mean_selectivity_error']:8.4f}"
            f"   max {s['max_selectivity_error']:.4f}",
            f"  planner fallbacks  {int(s['planner_fallbacks']):>8}",
            f"  storage faults     {int(s['storage_faults']):>8}",
        ]
        if s["batches"]:
            lines += [
                f"  batches formed     {int(s['batches']):>8}"
                f"   mean occupancy {s['mean_batch_occupancy']:.2f}",
                f"  shared decodes     {int(s['shared_decode_hits']):>8}"
                f"   batch pages decoded {int(s['batch_pages_decoded'])}",
            ]
        if s["shards_dispatched"] or s["shards_pruned"]:
            lines += [
                f"  shards dispatched  {int(s['shards_dispatched']):>8}"
                f"   pruned {int(s['shards_pruned'])}",
                f"  shard faults       {int(s['shard_faults']):>8}"
                f"   partial results {int(s['partial_results'])}",
            ]
        lines += [
            f"  queue wait         mean {s['mean_queue_wait_s'] * 1e3:8.2f} ms"
            f"   max {s['max_queue_wait_s'] * 1e3:.2f} ms",
            f"  exec time          mean {s['mean_exec_time_s'] * 1e3:8.2f} ms"
            f"   max {s['max_exec_time_s'] * 1e3:.2f} ms",
        ]
        if procedures is not None:
            timings = self.procedure_report(procedures)
            if timings:
                lines.append("  procedures:")
                for name, row in timings.items():
                    lines.append(
                        f"    {name:<28} {int(row['calls']):>6} calls"
                        f"  {row['total_time'] * 1e3:10.2f} ms"
                    )
        return "\n".join(lines)
