"""Client sessions: who is asking, and how their queries went.

The SkyServer traffic of Figure 2 is attributed per client (web hits and
SQL sessions over months); this module is the reproduction's analog.  A
:class:`Session` is a lightweight identity handed to each client of the
query service; every submit/complete/reject updates its
:class:`SessionStats`, so a replay can report per-client behavior the
way §2 reports per-population traffic.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

__all__ = ["Session", "SessionStats", "SessionManager"]


@dataclass
class SessionStats:
    """Per-session counters, updated under the session's lock."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    failed: int = 0
    deadline_misses: int = 0
    cache_hits: int = 0
    rows_returned: int = 0
    queue_wait_s: float = 0.0
    exec_time_s: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain-dict snapshot (for reports)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.failed,
            "deadline_misses": self.deadline_misses,
            "cache_hits": self.cache_hits,
            "rows_returned": self.rows_returned,
            "queue_wait_s": self.queue_wait_s,
            "exec_time_s": self.exec_time_s,
        }


@dataclass
class Session:
    """One client's identity within the service."""

    session_id: str
    name: str = ""
    stats: SessionStats = field(default_factory=SessionStats)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    # -- stat updates (called by the service) ------------------------------

    def note_submitted(self) -> None:
        with self._lock:
            self.stats.submitted += 1

    def note_rejected(self) -> None:
        with self._lock:
            self.stats.rejected += 1

    def note_completed(
        self,
        rows_returned: int,
        queue_wait_s: float,
        exec_time_s: float,
        cache_hit: bool,
    ) -> None:
        with self._lock:
            self.stats.completed += 1
            self.stats.rows_returned += rows_returned
            self.stats.queue_wait_s += queue_wait_s
            self.stats.exec_time_s += exec_time_s
            if cache_hit:
                self.stats.cache_hits += 1

    def note_failed(self, deadline_missed: bool = False) -> None:
        with self._lock:
            self.stats.failed += 1
            if deadline_missed:
                self.stats.deadline_misses += 1

    def snapshot(self) -> SessionStats:
        """An independent copy of the current counters."""
        with self._lock:
            return SessionStats(**self.stats.as_dict())


class SessionManager:
    """Issues and tracks sessions for one service instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sessions: dict[str, Session] = {}
        self._counter = itertools.count(1)

    def open(self, name: str = "") -> Session:
        """Create a new session; ids are unique within the manager."""
        with self._lock:
            session_id = f"s{next(self._counter):04d}"
            session = Session(session_id=session_id, name=name or session_id)
            self._sessions[session_id] = session
            return session

    def get(self, session_id: str) -> Session:
        """Look up a session by id."""
        with self._lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise KeyError(f"no session {session_id!r}") from None

    def close(self, session_id: str) -> None:
        """Forget a session (its stats stop being reported)."""
        with self._lock:
            self._sessions.pop(session_id, None)

    def all(self) -> list[Session]:
        """Every live session, in id order."""
        with self._lock:
            return [self._sessions[k] for k in sorted(self._sessions)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
