"""Workload replay: Figure 2 traffic pushed through the query service.

The paper's evidence for the whole design is months of live SkyServer
traffic (§2, Figure 2); :func:`replay_workload` is the reproduction's
traffic generator.  It takes the queries of
:class:`repro.datasets.workload.QueryWorkload` (or raw polyhedra),
spreads them over ``concurrency`` client threads each with its own
session, and drives them through a running :class:`QueryService`,
honoring admission backpressure by retrying rejected submissions.  The
returned report aligns results with the input order, so a serial rerun
can be compared row for row.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.planner import QueryPlanner
from repro.geometry.halfspace import Polyhedron
from repro.service.errors import AdmissionRejected
from repro.service.executor import QueryOutcome, QueryService

__all__ = ["ReplayReport", "replay_workload", "run_serial", "rows_equal"]


def _as_polyhedron(query, dims: list[str] | None) -> Polyhedron:
    """Accept a Polyhedron or anything with a ``.polyhedron(dims)`` method."""
    if isinstance(query, Polyhedron):
        return query
    return query.polyhedron(dims)


@dataclass
class ReplayReport:
    """Outcome of one replay run, aligned with the input query order."""

    outcomes: list[QueryOutcome | None]
    errors: list[tuple[int, BaseException]]
    wall_time_s: float
    concurrency: int
    resubmissions: int
    report: dict = field(default_factory=dict)

    @property
    def completed(self) -> int:
        """Queries that returned a result."""
        return sum(1 for outcome in self.outcomes if outcome is not None)

    @property
    def throughput_qps(self) -> float:
        """Completed queries per wall-clock second."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.completed / self.wall_time_s

    def rows(self, index: int) -> dict:
        """Result rows of the ``index``-th input query."""
        outcome = self.outcomes[index]
        if outcome is None:
            raise LookupError(f"query {index} did not complete")
        return outcome.rows


def replay_workload(
    service: QueryService,
    queries,
    *,
    dims: list[str] | None = None,
    concurrency: int = 8,
    deadline: float | None = None,
    retry_sleep_s: float = 0.001,
) -> ReplayReport:
    """Replay ``queries`` through a running service at a given concurrency.

    Each client thread owns one session and submits its share of the
    queries (round-robin by index), retrying on
    :class:`AdmissionRejected` -- the cooperative reaction to
    backpressure a well-behaved SkyServer client exhibits.  Failures
    (e.g. deadline misses) are collected, not raised.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    polyhedra = [_as_polyhedron(q, dims) for q in queries]
    outcomes: list[QueryOutcome | None] = [None] * len(polyhedra)
    errors: list[tuple[int, BaseException]] = []
    errors_lock = threading.Lock()
    resubmissions = [0] * concurrency

    def client(worker_idx: int) -> None:
        session = service.open_session(name=f"replay-client-{worker_idx}")
        my_indices = range(worker_idx, len(polyhedra), concurrency)
        tickets = []
        for idx in my_indices:
            while True:
                try:
                    ticket = service.submit(
                        polyhedra[idx],
                        session=session,
                        deadline=deadline,
                        tag=f"q{idx}",
                    )
                    break
                except AdmissionRejected:
                    resubmissions[worker_idx] += 1
                    time.sleep(retry_sleep_s)
            tickets.append((idx, ticket))
        for idx, ticket in tickets:
            try:
                outcomes[idx] = ticket.result()
            except BaseException as exc:
                with errors_lock:
                    errors.append((idx, exc))

    started = time.monotonic()
    threads = [
        threading.Thread(target=client, args=(i,), name=f"replay-client-{i}")
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started
    errors.sort(key=lambda pair: pair[0])
    return ReplayReport(
        outcomes=outcomes,
        errors=errors,
        wall_time_s=wall,
        concurrency=concurrency,
        resubmissions=sum(resubmissions),
        report=service.report(),
    )


def run_serial(
    planner: QueryPlanner, queries, dims: list[str] | None = None
) -> list[dict]:
    """Execute the same queries one by one, bypassing the service.

    The ground truth for concurrent-correctness checks: the service at
    any concurrency must return row-for-row identical results.
    """
    return [
        planner.execute(_as_polyhedron(q, dims)).rows for q in queries
    ]


def rows_equal(a: dict, b: dict) -> bool:
    """Whether two result-row dicts hold the same rows (order-insensitive).

    Both executors return exact answers but in access-path-dependent
    order, so rows are aligned on ``_row_id`` before comparing every
    column exactly.
    """
    if set(a) != set(b):
        return False
    ids_a, ids_b = a["_row_id"], b["_row_id"]
    if len(ids_a) != len(ids_b):
        return False
    order_a, order_b = np.argsort(ids_a, kind="stable"), np.argsort(ids_b, kind="stable")
    if not np.array_equal(ids_a[order_a], ids_b[order_b]):
        return False
    return all(
        np.array_equal(a[name][order_a], b[name][order_b]) for name in a
    )
