"""Admission control: the bounded front door of the query service.

The paper's SkyServer sat behind a web farm that shed load when the
database fell behind; in-process, the same role is played by a bounded
FIFO queue.  ``offer`` never blocks -- when the queue is at depth the
item is refused and the caller sees explicit backpressure
(:class:`~repro.service.errors.AdmissionRejected` at the service layer)
instead of an unbounded pile-up.  Workers ``pop`` with a timeout so a
stopping service can drain cleanly.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """A bounded FIFO with admission counters.

    Parameters
    ----------
    depth:
        Maximum number of queued (admitted, not yet running) items.
    """

    def __init__(self, depth: int = 64):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        self._items: deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self.admitted = 0
        self.rejected = 0
        self.high_water = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def offer(self, item: Any) -> bool:
        """Admit ``item`` if there is room; return whether it was admitted."""
        with self._not_empty:
            if len(self._items) >= self.depth:
                self.rejected += 1
                return False
            self._items.append(item)
            self.admitted += 1
            self.high_water = max(self.high_water, len(self._items))
            self._not_empty.notify()
            return True

    def pop(self, timeout: float | None = None) -> Any | None:
        """Take the oldest admitted item; ``None`` on timeout."""
        with self._not_empty:
            if not self._items:
                self._not_empty.wait(timeout)
            if not self._items:
                return None
            return self._items.popleft()

    def pop_batch(
        self,
        max_items: int,
        delay_s: float = 0.0,
        timeout: float | None = None,
    ) -> list[Any]:
        """Take up to ``max_items`` queued items as one micro-batch.

        Blocks like :meth:`pop` for the *first* item (up to ``timeout``),
        then drains whatever backlog is already queued.  When the batch
        is still short and ``delay_s > 0``, waits up to that long for
        more arrivals -- the bounded formation delay that trades a little
        latency for shared work.  Returns ``[]`` on timeout.
        """
        if max_items < 1:
            raise ValueError("max_items must be >= 1")
        with self._not_empty:
            if not self._items:
                self._not_empty.wait(timeout)
            if not self._items:
                return []
            batch = [self._items.popleft()]
            while len(batch) < max_items and self._items:
                batch.append(self._items.popleft())
            if delay_s > 0 and len(batch) < max_items:
                deadline = time.monotonic() + delay_s
                while len(batch) < max_items:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._not_empty.wait(remaining)
                    while len(batch) < max_items and self._items:
                        batch.append(self._items.popleft())
            return batch

    def drain(self) -> list[Any]:
        """Remove and return everything queued (used on forced stop)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            return items

    def counters(self) -> dict[str, int]:
        """Snapshot of admission accounting."""
        with self._lock:
            return {
                "depth": self.depth,
                "queued": len(self._items),
                "admitted": self.admitted,
                "rejected": self.rejected,
                "high_water": self.high_water,
            }
