"""Result cache: repeat queries served without touching a single page.

Figure 2's traffic is heavily repetitive -- popular cuts (the LRG
selection, bright-star windows) recur across clients -- so an LRU of
completed result sets sits in front of the executor.  Entries are keyed
by a *normalized fingerprint* of the query: the polyhedron's halfspaces
are scale-normalized, rounded, and sorted, so the same geometric
question always lands on the same key regardless of how its inequalities
were spelled.  The cache subscribes to catalog mutations
(:meth:`repro.db.catalog.Database.add_mutation_listener`), so dropping
or recreating a table evicts every result computed from it.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.geometry.halfspace import Polyhedron

__all__ = ["ResultCache", "query_fingerprint"]


def query_fingerprint(
    table_name: str,
    dims: list[str],
    polyhedron: Polyhedron,
    index_name: str = "planner",
    layout_version: str = "",
    memberships: dict[str, Any] | None = None,
    config_id: str = "",
) -> str:
    """A stable key for one polyhedron query against one table.

    Each halfspace ``a . x <= b`` is normalized by ``|a|`` (so scaled
    duplicates of an inequality collide), rounded to 9 decimals (so
    arithmetic noise collides), and the rows are sorted lexicographically
    (so conjunct order is irrelevant).  The table, dims, and access-path
    family are folded in so distinct targets never share a key.
    ``layout_version`` is the engine's physical-layout digest (shard
    boundaries for a sharded engine): repartitioning changes the version,
    so stale entries keyed under the old layout can never be served.
    ``memberships`` (column -> IN-list values) folds each sorted value
    set in by column name, so the same box with different IN lists never
    collides.  ``config_id`` identifies the replica/configuration that
    will serve the query (see
    :meth:`repro.tune.config.TuningConfig.config_id`): with divergent
    replicas the same question routed to differently-configured copies
    must never share a cache entry, or a partial/degraded answer from
    one replica could be replayed as another's.
    """
    normals = np.asarray(polyhedron.normals, dtype=np.float64)
    offsets = np.asarray(polyhedron.offsets, dtype=np.float64)
    norms = np.linalg.norm(normals, axis=1)
    norms[norms == 0.0] = 1.0
    stacked = np.column_stack([normals / norms[:, None], offsets / norms])
    stacked = np.round(stacked, 9) + 0.0  # +0.0 folds -0.0 into +0.0
    order = np.lexsort(stacked.T[::-1])
    digest = hashlib.sha1()
    digest.update(table_name.encode())
    digest.update(b"|")
    digest.update(",".join(dims).encode())
    digest.update(b"|")
    digest.update(index_name.encode())
    digest.update(b"|")
    digest.update(layout_version.encode())
    digest.update(b"|")
    digest.update(config_id.encode())
    digest.update(b"|")
    digest.update(np.ascontiguousarray(stacked[order]).tobytes())
    for col in sorted(memberships or ()):
        values = np.unique(np.asarray(memberships[col], dtype=np.float64))
        digest.update(b"|in:")
        digest.update(col.encode())
        digest.update(b":")
        digest.update(np.ascontiguousarray(values).tobytes())
    return digest.hexdigest()


def _approx_nbytes(value: Any) -> int:
    """Approximate heap footprint of a cached result.

    Cached values are :class:`~repro.core.planner.PlannedQuery` objects
    (or anything row-shaped); the dominant cost is the numpy arrays of
    the result rows, so that is what is counted.  Unrecognized shapes
    cost a symbolic minimum so an entry is never free.
    """
    rows = getattr(value, "rows", value)
    if isinstance(rows, dict):
        return max(
            sum(int(getattr(arr, "nbytes", 0)) for arr in rows.values()), 1
        )
    return 1


class ResultCache:
    """Thread-safe LRU of completed query results with hit/miss counters.

    Eviction is double-bounded: by entry count (``capacity``) and by the
    approximate bytes the cached row sets pin (``max_bytes``) -- one huge
    low-selectivity result can no longer crowd the process just because
    it is a single entry.  ``max_bytes=None`` disables the byte bound.

    Values are treated as immutable by contract: a hit returns the same
    object that was inserted, shared by every requester.
    """

    def __init__(self, capacity: int = 256, max_bytes: int | None = 64 << 20):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 or None")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._entries: OrderedDict[str, tuple[str, Any, int]] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def cache_bytes(self) -> int:
        """Approximate bytes currently pinned by cached results."""
        with self._lock:
            return self._bytes

    def get(self, key: str) -> Any | None:
        """Look up a fingerprint; counts a hit or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[1]

    def put(self, key: str, table_name: str, value: Any) -> None:
        """Insert (or refresh) a completed result for a table's query."""
        nbytes = _approx_nbytes(value)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[2]
            self._entries[key] = (table_name, value, nbytes)
            self._bytes += nbytes
            self.insertions += 1
            # Evict LRU-first until both bounds hold; the newest entry
            # itself may go when it alone exceeds the byte budget.
            while self._entries and (
                len(self._entries) > self.capacity
                or (self.max_bytes is not None and self._bytes > self.max_bytes)
            ):
                _, (_, _, evicted_bytes) = self._entries.popitem(last=False)
                self._bytes -= evicted_bytes

    def invalidate_table(self, table_name: str) -> int:
        """Evict every result computed from ``table_name``; returns count."""
        with self._lock:
            stale = [k for k, (t, _, _) in self._entries.items() if t == table_name]
            for key in stale:
                self._bytes -= self._entries.pop(key)[2]
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop everything (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    @property
    def hit_rate(self) -> float:
        """Hits / lookups so far (0.0 before any lookup)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def counters(self) -> dict[str, float]:
        """Snapshot of the cache accounting."""
        with self._lock:
            return {
                "capacity": float(self.capacity),
                "entries": float(len(self._entries)),
                "cache_bytes": float(self._bytes),
                "max_bytes": float(self.max_bytes) if self.max_bytes else 0.0,
                "hits": float(self.hits),
                "misses": float(self.misses),
                "insertions": float(self.insertions),
                "invalidations": float(self.invalidations),
                "hit_rate": self.hit_rate,
            }
