"""Concurrent query service: the serving layer over the spatial indexes.

The paper's indexes exist to serve the SkyServer's multi-user traffic
(§2, Figure 2).  This package is that serving layer, in-process:

* :mod:`~repro.service.session` -- client sessions with per-session stats;
* :mod:`~repro.service.admission` -- bounded admission queue with
  explicit backpressure;
* :mod:`~repro.service.executor` -- the worker pool, per-query deadlines
  with cooperative cancellation, and the :class:`QueryService` facade;
* :mod:`~repro.service.result_cache` -- fingerprint-keyed LRU of
  completed results, invalidated on catalog mutation;
* :mod:`~repro.service.metrics` -- per-query and service-level metrics
  built on the engine's I/O counters;
* :mod:`~repro.service.replay` -- the Figure 2 workload driver.
"""

from repro.service.admission import AdmissionQueue
from repro.service.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    QueryFault,
    ServiceClosed,
    ServiceError,
)
from repro.service.executor import Deadline, QueryOutcome, QueryService, QueryTicket
from repro.service.metrics import MetricsRegistry, QueryMetrics
from repro.service.replay import ReplayReport, replay_workload, rows_equal, run_serial
from repro.service.result_cache import ResultCache, query_fingerprint
from repro.service.session import Session, SessionManager, SessionStats

__all__ = [
    "AdmissionQueue",
    "AdmissionRejected",
    "Deadline",
    "DeadlineExceeded",
    "MetricsRegistry",
    "QueryFault",
    "QueryMetrics",
    "QueryOutcome",
    "QueryService",
    "QueryTicket",
    "ReplayReport",
    "ResultCache",
    "ServiceClosed",
    "ServiceError",
    "Session",
    "SessionManager",
    "SessionStats",
    "query_fingerprint",
    "replay_workload",
    "rows_equal",
    "run_serial",
]
