"""Networked execution: process shard workers and the TCP front door.

The paper's deployment is a *distributed* system -- a web front end over
a cluster of database servers, each holding kd-subtree partitions of the
sky (§3.2's graph-partitioned layout).  This package is the
reproduction's version of that topology, in two layers that share one
length-prefixed binary protocol (:mod:`repro.net.wire`):

* :mod:`repro.net.pool` / :mod:`repro.net.worker` -- the
  :class:`ShardWorkerPool` runs one worker **process** per kd-subtree
  shard.  Each worker owns its shard's database, zone maps, caches, and
  fault injector, and executes with its own GIL, so scatter-gather
  finally scales with cores instead of threads.  The pool implements the
  same engine protocol as the thread executor; pass
  ``transport="process"`` to :class:`~repro.shard.ScatterGatherExecutor`
  to get one.
* :mod:`repro.net.server` / :mod:`repro.net.client` -- an asyncio TCP
  server in front of :class:`~repro.service.QueryService` (per-tenant
  sessions, admission backpressure, streamed results, graceful drain)
  and the synchronous client plus network replay driver.
"""

from repro.net.wire import (
    Frame,
    FrameDecoder,
    FrameError,
    MessageType,
    SocketChannel,
)
from repro.net.pool import ShardWorkerPool, WorkerDied
from repro.net.worker import WorkerConfig, worker_main
from repro.net.server import QueryServer, serve
from repro.net.client import QueryClient, RemoteOutcome, replay_over_network

__all__ = [
    "Frame",
    "FrameDecoder",
    "FrameError",
    "MessageType",
    "SocketChannel",
    "ShardWorkerPool",
    "WorkerDied",
    "WorkerConfig",
    "worker_main",
    "QueryServer",
    "serve",
    "QueryClient",
    "RemoteOutcome",
    "replay_over_network",
]
