"""The shard worker process: one kd-subtree shard behind an IPC socket.

``worker_main`` is the entry point a :class:`~repro.net.pool.ShardWorkerPool`
forks/spawns per shard.  The worker builds its *own* engine stack from
the picklable :class:`~repro.shard.partitioner.ShardSpec` -- private
:class:`~repro.db.catalog.Database` (with the parent's buffer budget,
retry policy, and seeded fault injector, when configured), kd-tree
index, and :class:`~repro.core.planner.QueryPlanner` -- so query
execution runs with a whole Python interpreter, and GIL, to itself.

Threading model: the main thread executes queries one at a time from an
internal queue; a reader thread drains the socket continuously so
``CANCEL`` frames and ``PING`` heartbeats are handled *while* a query
runs.  Cancellation is cooperative: the reader sets a per-request event
that the executing query's ``cancel_check`` polls every page/node, the
same discipline the in-process executors use.

Result streaming: rows leave in ``PAGE`` frames of ``page_rows`` rows
each (raw column bytes, no text encoding), followed by one ``DONE``
frame carrying the plan fields and stats -- so a large result never
needs to exist as one giant message on either side.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.planner import PlannedQuery, QueryPlanner
from repro.db.errors import StorageFault
from repro.db.scan import (
    BatchScanMember,
    batch_full_scan,
    full_scan,
    membership_predicate,
)
from repro.net.wire import (
    Frame,
    MessageType,
    SocketChannel,
    columns_from_blob,
    columns_to_blob,
    error_to_wire,
    polyhedron_from_wire,
    stats_to_wire,
)
from repro.service.executor import Deadline
from repro.shard.partitioner import ShardSpec, build_shard

__all__ = ["WorkerConfig", "worker_main"]


@dataclass
class WorkerConfig:
    """Everything a worker process needs (picklable, spawn-safe).

    ``sample_pages`` is this shard's probe budget (the pool divides the
    whole-table budget by the shard count, as the thread executor does);
    ``seed`` is already offset by the shard id.
    """

    spec: ShardSpec
    crossover: float = 0.25
    sample_pages: int = 1
    seed: int = 0
    page_rows: int = 4096
    #: Forced access path for the shard's planner ("auto" = cost-based).
    engine: str = "auto"


class _Cancelled(BaseException):
    """Raised inside a query when the parent sent CANCEL for it."""


class _InFlight:
    """Cancellation registry shared by the reader and executor threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: dict[tuple[int, int | None], threading.Event] = {}

    def register(self, request_id: int, member: int | None) -> threading.Event:
        event = threading.Event()
        with self._lock:
            self._events[(request_id, member)] = event
        return event

    def unregister(self, request_id: int, member: int | None) -> None:
        with self._lock:
            self._events.pop((request_id, member), None)

    def cancel(self, request_id: int, member: int | None) -> None:
        """Trip one member's event, or every event of the request."""
        with self._lock:
            for (rid, mem), event in self._events.items():
                if rid == request_id and (member is None or mem == member):
                    event.set()


def _memberships_from_wire(header: dict) -> dict[str, np.ndarray] | None:
    """Decode an optional ``memberships`` mapping off a wire header."""
    payload = header.get("memberships")
    if not payload:
        return None
    return {
        col: np.asarray(values, dtype=np.float64)
        for col, values in payload.items()
    }


def _compose_check(deadline_s, event: threading.Event):
    """Build the cooperative cancel_check for one (request, member)."""
    deadline = Deadline(float(deadline_s)) if deadline_s is not None else None

    def check() -> None:
        if event.is_set():
            raise _Cancelled()
        if deadline is not None:
            deadline.check()

    return check


class _Worker:
    def __init__(self, config: WorkerConfig, channel: SocketChannel):
        self.config = config
        self.spec = config.spec
        self.channel = channel
        self.shard = build_shard(config.spec)
        self.planner = QueryPlanner(
            self.shard.index,
            crossover=config.crossover,
            sample_pages=max(1, config.sample_pages),
            seed=config.seed,
            engine=config.engine,
        )
        self.inflight = _InFlight()
        self.work: queue.Queue = queue.Queue()
        self.requests_served = 0
        self.busy_s = 0.0

    # -- reader thread ------------------------------------------------------

    def reader_loop(self) -> None:
        try:
            while True:
                frame = self.channel.recv()
                if frame is None:
                    break
                if frame.type is MessageType.CANCEL:
                    self.inflight.cancel(
                        frame.header["request_id"], frame.header.get("member")
                    )
                elif frame.type is MessageType.PING:
                    self.channel.send(MessageType.PONG, self._pong())
                elif frame.type is MessageType.SHUTDOWN:
                    self.work.put(None)
                    break
                else:
                    self.work.put(frame)
        except Exception:
            pass
        self.work.put(None)

    def _pong(self) -> dict:
        return {
            "shard_id": self.spec.shard_id,
            "pid": os.getpid(),
            "requests": self.requests_served,
            "busy_s": self.busy_s,
            "io": self.shard.database.io_stats.as_dict(),
        }

    # -- executor (main thread) ---------------------------------------------

    def run(self) -> None:
        reader = threading.Thread(
            target=self.reader_loop, name="worker-reader", daemon=True
        )
        reader.start()
        table = self.shard.table
        self.channel.send(
            MessageType.HELLO,
            {
                "shard_id": self.spec.shard_id,
                "pid": os.getpid(),
                "num_rows": self.spec.num_rows,
                "table": self.spec.name,
                # Result schema: the built table's columns (clustering
                # adds e.g. kd_leaf beyond the spec's input columns).
                "schema": [
                    [name, table.dtype_of(name).str] for name in table.column_names
                ]
                + [["_row_id", np.dtype(np.int64).str]],
            },
        )
        while True:
            frame = self.work.get()
            if frame is None:
                break
            started = time.perf_counter()
            try:
                if frame.type is MessageType.QUERY:
                    self._serve_query(frame)
                elif frame.type is MessageType.BATCH:
                    self._serve_batch(frame)
                elif frame.type is MessageType.INGEST:
                    self._serve_ingest(frame)
                elif frame.type is MessageType.MERGE:
                    self._serve_merge(frame)
            finally:
                self.busy_s += time.perf_counter() - started
                self.requests_served += 1

    def _stream_planned(
        self, request_id: int, member: int | None, planned: PlannedQuery
    ) -> None:
        """Emit a result as PAGE frames followed by one DONE frame."""
        rows = planned.rows
        names = list(rows)
        total = int(rows["_row_id"].shape[0]) if "_row_id" in rows else (
            int(rows[names[0]].shape[0]) if names else 0
        )
        chunk = max(1, self.config.page_rows)
        for start in range(0, total, chunk):
            piece = {n: rows[n][start : start + chunk] for n in names}
            meta, blob = columns_to_blob(piece)
            self.channel.send(
                MessageType.PAGE,
                {"request_id": request_id, "member": member, "columns": meta},
                blob,
            )
        header = {
            "request_id": request_id,
            "member": member,
            "rows": total,
            "chosen_path": planned.chosen_path,
            "estimated_selectivity": float(planned.estimated_selectivity),
            "sampled_pages": int(planned.sampled_pages),
            "fallback": bool(planned.fallback),
            "fallback_reason": planned.fallback_reason,
            "stats": stats_to_wire(planned.stats),
            "busy_s": self.busy_s,
            "requests": self.requests_served,
        }
        if total == 0:
            # No PAGE frame went out; ship the schema so the parent can
            # build correctly-typed empty columns.
            meta, _ = columns_to_blob({n: rows[n][:0] for n in names})
            header["columns"] = meta
        self.channel.send(MessageType.DONE, header)

    def _send_error(
        self, request_id: int, member: int | None, exc: BaseException
    ) -> None:
        header = error_to_wire(exc) if not isinstance(exc, _Cancelled) else {
            "kind": "cancelled",
            "type": "Cancelled",
            "message": "request cancelled by coordinator",
        }
        header["request_id"] = request_id
        header["member"] = member
        self.channel.send(MessageType.ERROR, header)

    def _serve_query(self, frame: Frame) -> None:
        request_id = frame.header["request_id"]
        event = self.inflight.register(request_id, None)
        check = _compose_check(frame.header.get("deadline_s"), event)
        try:
            memberships = _memberships_from_wire(frame.header)
            if frame.header.get("inside"):
                # Figure 4's fully-inside case: the router proved every
                # row qualifies, so skip probe, tree, and per-row tests
                # beyond any membership filter riding on the query.
                predicate = (
                    membership_predicate(memberships) if memberships else None
                )
                rows, stats = full_scan(
                    self.shard.table, predicate=predicate, cancel_check=check
                )
                planned = PlannedQuery(
                    rows=rows,
                    stats=stats,
                    chosen_path="inside",
                    estimated_selectivity=1.0,
                    sampled_pages=0,
                )
            else:
                polyhedron = polyhedron_from_wire(frame.header["polyhedron"])
                planned = self.planner.execute(
                    polyhedron, cancel_check=check, memberships=memberships
                )
            self._stream_planned(request_id, None, planned)
        except BaseException as exc:
            self._send_error(request_id, None, exc)
            if not isinstance(exc, (Exception, _Cancelled)):
                raise
        finally:
            self.inflight.unregister(request_id, None)

    def _serve_batch(self, frame: Frame) -> None:
        """One shard's share of a micro-batch, mirroring the thread path.

        INSIDE members share one predicate-free scan pass; PARTIAL
        members go through the planner's ``execute_batch``.  Outcomes
        are per-member (PAGE*/DONE or ERROR); a trailing memberless DONE
        carries the shared-decode counters.
        """
        request_id = frame.header["request_id"]
        members = frame.header["members"]
        events = {
            m["member"]: self.inflight.register(request_id, m["member"])
            for m in members
        }
        checks = {
            m["member"]: _compose_check(m.get("deadline_s"), events[m["member"]])
            for m in members
        }
        counters = {"pages_decoded": 0, "shared_decode_hits": 0}
        try:
            filters = {
                m["member"]: _memberships_from_wire(m) for m in members
            }
            inside = [m["member"] for m in members if m.get("inside")]
            partial = [
                (m["member"], polyhedron_from_wire(m["polyhedron"]))
                for m in members
                if not m.get("inside")
            ]
            if inside:
                self._serve_batch_inside(
                    request_id, inside, checks, filters, counters
                )
            if partial:
                batch = self.planner.execute_batch(
                    [poly for _, poly in partial],
                    [checks[m] for m, _ in partial],
                    memberships_list=[filters[m] for m, _ in partial],
                )
                counters["pages_decoded"] += batch.pages_decoded
                counters["shared_decode_hits"] += batch.shared_decode_hits
                for (m, _), result in zip(partial, batch.members):
                    if result.error is not None:
                        self._send_error(request_id, m, result.error)
                    else:
                        self._stream_planned(request_id, m, result.planned)
        except BaseException as exc:
            # The whole shard task died before demultiplexing (e.g. a
            # routing bug): fail every member we have not answered.
            for m in members:
                self._send_error(request_id, m["member"], exc)
            if not isinstance(exc, (Exception, _Cancelled)):
                raise
        finally:
            for member, _ in events.items():
                self.inflight.unregister(request_id, member)
            self.channel.send(
                MessageType.DONE,
                {"request_id": request_id, "member": None, "counters": counters},
            )

    def _serve_batch_inside(
        self,
        request_id: int,
        inside: list[int],
        checks: dict,
        filters: dict,
        counters: dict,
    ) -> None:
        scan_members = [
            BatchScanMember(
                predicate=(
                    membership_predicate(filters[m]) if filters.get(m) else None
                ),
                cancel_check=checks[m],
            )
            for m in inside
        ]
        try:
            scanned, scan_counters = batch_full_scan(self.shard.table, scan_members)
        except StorageFault:
            # The shared pass died; retry each member alone so the fault
            # stays per-member (exactly the thread executor's behavior).
            for m in inside:
                try:
                    rows, stats = full_scan(
                        self.shard.table,
                        predicate=(
                            membership_predicate(filters[m])
                            if filters.get(m)
                            else None
                        ),
                        cancel_check=checks[m],
                    )
                except BaseException as exc:
                    self._send_error(request_id, m, exc)
                    continue
                self._stream_planned(
                    request_id,
                    m,
                    PlannedQuery(
                        rows=rows,
                        stats=stats,
                        chosen_path="inside",
                        estimated_selectivity=1.0,
                        sampled_pages=0,
                    ),
                )
            return
        counters["pages_decoded"] += scan_counters["pages_decoded"]
        counters["shared_decode_hits"] += scan_counters["shared_decode_hits"]
        for m, (rows, stats, error) in zip(inside, scanned):
            if error is not None:
                self._send_error(request_id, m, error)
            else:
                self._stream_planned(
                    request_id,
                    m,
                    PlannedQuery(
                        rows=rows,
                        stats=stats,
                        chosen_path="inside",
                        estimated_selectivity=1.0,
                        sampled_pages=0,
                    ),
                )


    # -- write path (serialized with queries on the main thread) ------------

    def _serve_ingest(self, frame: Frame) -> None:
        """Apply a delta-tier insert or delete on this shard's table.

        INGEST frames ride the same work queue as queries, so a write is
        never interleaved with a scan inside the worker; the table-level
        merge-on-read machinery handles cross-*process* visibility (the
        coordinator orders acks).  The reply carries the shard's new
        ``layout_version`` so the coordinator's cache fingerprint moves.
        """
        request_id = frame.header["request_id"]
        table = self.shard.table
        try:
            op = frame.header["op"]
            if op == "insert":
                data = columns_from_blob(frame.header["columns"], frame.blob)
                local = table.insert_rows(data)
                header = {"count": int(len(local))}
                blob = np.ascontiguousarray(local, dtype=np.int64).tobytes()
            elif op == "delete":
                ids = np.frombuffer(frame.blob, dtype=np.int64).copy()
                header = {"count": int(table.delete_rows(ids))}
                blob = b""
            else:
                raise ValueError(f"unknown ingest op {op!r}")
        except BaseException as exc:
            self._send_error(request_id, None, exc)
            if not isinstance(exc, Exception):
                raise
            return
        header["request_id"] = request_id
        header["member"] = None
        header["op"] = op
        header["layout_version"] = table.layout_version
        self.channel.send(MessageType.DONE, header, blob)

    def _serve_merge(self, frame: Frame) -> None:
        """Drain this shard's delta out-of-place and refresh the stack.

        The merge rebuilds the shard's kd-tree over old + new rows and
        swaps it under the catalog lock; afterwards the worker re-resolves
        its index handle (the planner already resolves per query).  The
        reply ships the new routing geometry -- row count and tight box
        -- so the coordinator can re-cut its routing state in place.
        """
        request_id = frame.header["request_id"]
        try:
            report = self.shard.database.ingest.merge(self.spec.name)
            index = self.shard.database.index_if_exists(f"{self.spec.name}.kdtree")
            if index is not None:
                self.shard.index = index
            self.shard.num_rows = self.shard.table.num_rows
            self.shard.tight_box = self.shard.index.tree.tight_box(1)
        except BaseException as exc:
            self._send_error(request_id, None, exc)
            if not isinstance(exc, Exception):
                raise
            return
        box = self.shard.tight_box
        self.channel.send(
            MessageType.DONE,
            {
                "request_id": request_id,
                "member": None,
                "report": report.as_dict(),
                "num_rows": int(self.shard.num_rows),
                "tight_box": {
                    "lo": [float(v) for v in box.lo],
                    "hi": [float(v) for v in box.hi],
                },
                "layout_version": self.shard.table.layout_version,
            },
        )


def worker_main(config: WorkerConfig, address) -> None:
    """Process entry point: build the shard, connect back, serve until EOF.

    ``address`` is a Unix-socket path (str) or a ``(host, port)`` tuple;
    the worker connects *back* to the pool's listener, which makes the
    scheme identical under fork and spawn start methods.
    """
    if isinstance(address, str):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        address = tuple(address)
    sock.connect(address)
    channel = SocketChannel(sock)
    try:
        _Worker(config, channel).run()
    finally:
        channel.close()
