"""A thin synchronous client for the network front door.

:class:`QueryClient` opens one TCP connection, HELLOs with a tenant
name, and exposes a blocking ``query()`` that streams PAGE frames into a
:class:`RemoteOutcome` -- the network twin of the in-process
:class:`~repro.service.executor.QueryOutcome`.  Structured ERROR frames
map back to the exception types of :mod:`repro.service.errors`, so
client code handles backpressure and deadlines identically whether it
talks to a service in-process or over the wire.

One client is one conversation: ``query()`` is serial per connection
(requests do not interleave on a single socket).  Concurrency comes from
opening more clients -- which is exactly what
:func:`replay_over_network` does, mirroring the in-process
:func:`~repro.service.replay.replay_workload` driver thread-for-thread
so their reports are comparable.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.db.stats import QueryStats
from repro.geometry.halfspace import Polyhedron
from repro.net.wire import (
    MessageType,
    SocketChannel,
    columns_from_blob,
    error_from_wire,
    polyhedron_to_wire,
    stats_from_wire,
)
from repro.service.errors import (
    AdmissionRejected,
    QueryFault,
    ServiceClosed,
)
from repro.service.replay import ReplayReport

__all__ = ["QueryClient", "RemoteOutcome", "replay_over_network"]


@dataclass
class RemoteOutcome:
    """A completed network query: rows plus the DONE frame's plan fields."""

    rows: dict
    stats: QueryStats
    chosen_path: str
    estimated_selectivity: float
    cache_hit: bool
    fallback: bool = False
    partial: bool = False
    failed_shards: tuple = ()
    metrics: dict = field(default_factory=dict)


def _error_from_header(header: dict) -> BaseException:
    """Map a structured ERROR frame back to a service exception."""
    kind = header.get("kind")
    if kind == "rejected":
        exc = AdmissionRejected(int(header.get("depth", 0)))
        exc.scope = header.get("scope", "service")
        return exc
    if kind == "draining":
        return ServiceClosed(header.get("message", "server is draining"))
    if kind == "query_fault":
        cause = RuntimeError(header.get("cause_type", "StorageFault"))
        return QueryFault(
            int(header.get("query_id", -1)), header.get("tag", ""), cause
        )
    if kind == "cancelled":
        return RuntimeError(header.get("message", "request cancelled"))
    # deadline / storage_fault / error share the engine-level converter.
    return error_from_wire(header)


class QueryClient:
    """One tenant connection to a :class:`~repro.net.server.QueryServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = "",
        timeout: float | None = None,
    ):
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(timeout)
        self.channel = SocketChannel(sock)
        self._request_ids = iter(range(1, 1 << 62))
        self.channel.send(MessageType.HELLO, {"tenant": tenant})
        hello = self.channel.recv()
        if hello is None or hello.type is not MessageType.HELLO:
            self.channel.close()
            raise ConnectionError("server did not complete the handshake")
        self.server_info = dict(hello.header)
        self.tenant = tenant
        self._closed = False

    # -- introspection ------------------------------------------------------

    @property
    def table_name(self) -> str:
        """The served table's logical name (from the handshake)."""
        return self.server_info.get("table", "")

    @property
    def dims(self) -> list[str]:
        """Coordinate columns of the served table."""
        return list(self.server_info.get("dims", []))

    @property
    def transport(self) -> str:
        """The server engine's execution transport (thread/process/...)."""
        return self.server_info.get("transport", "unknown")

    # -- requests -----------------------------------------------------------

    def query(
        self,
        polyhedron: Polyhedron,
        *,
        deadline: float | None = None,
        tag: str = "",
    ) -> RemoteOutcome:
        """Run one query and gather its streamed result (blocking)."""
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = next(self._request_ids)
        self.channel.send(
            MessageType.QUERY,
            {
                "request_id": request_id,
                "polyhedron": polyhedron_to_wire(polyhedron),
                "deadline_s": deadline,
                "tag": tag,
            },
        )
        pieces: list[dict[str, np.ndarray]] = []
        while True:
            frame = self.channel.recv()
            if frame is None:
                raise ConnectionError("server closed the connection mid-query")
            if frame.header.get("request_id") != request_id:
                continue
            if frame.type is MessageType.PAGE:
                pieces.append(columns_from_blob(frame.header["columns"], frame.blob))
            elif frame.type is MessageType.ERROR:
                raise _error_from_header(frame.header)
            elif frame.type is MessageType.DONE:
                return self._assemble(frame.header, pieces)

    def _assemble(self, header: dict, pieces: list) -> RemoteOutcome:
        if not pieces and "columns" in header:
            pieces = [columns_from_blob(header["columns"], b"")]
        if pieces:
            names = list(pieces[0])
            rows = {
                name: np.concatenate([p[name] for p in pieces]) for name in names
            }
        else:
            rows = {}
        return RemoteOutcome(
            rows=rows,
            stats=stats_from_wire(header["stats"]),
            chosen_path=header.get("chosen_path", ""),
            estimated_selectivity=float(header.get("estimated_selectivity", 0.0)),
            cache_hit=bool(header.get("cache_hit")),
            fallback=bool(header.get("fallback")),
            partial=bool(header.get("partial")),
            failed_shards=tuple(header.get("failed_shards", ())),
            metrics=header.get("metrics", {}),
        )

    def ping(self) -> dict:
        """Round-trip a PING; returns the server's PONG header."""
        self.channel.send(MessageType.PING, {})
        frame = self.channel.recv()
        if frame is None or frame.type is not MessageType.PONG:
            raise ConnectionError("no PONG from server")
        return dict(frame.header)

    def report(self) -> dict:
        """Fetch the service's full self-report."""
        self.channel.send(MessageType.REPORT, {})
        frame = self.channel.recv()
        if frame is None or frame.type is not MessageType.REPORT:
            raise ConnectionError("no REPORT from server")
        return dict(frame.header)

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if not self._closed:
            self._closed = True
            self.channel.close()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _as_polyhedron(query, dims):
    if isinstance(query, Polyhedron):
        return query
    return query.polyhedron(dims)


def replay_over_network(
    host: str,
    port: int,
    queries,
    *,
    dims: list[str] | None = None,
    concurrency: int = 8,
    deadline: float | None = None,
    retry_sleep_s: float = 0.001,
    tenant_prefix: str = "replay-net",
) -> ReplayReport:
    """Replay a workload through the network front door.

    The network twin of :func:`~repro.service.replay.replay_workload`:
    ``concurrency`` threads each own one connection (one tenant), submit
    their share of the queries round-robin by index, back off and retry
    on :class:`~repro.service.errors.AdmissionRejected`, and collect
    failures instead of raising.  The returned report carries the
    server's own ``report()`` so utilization is visible client-side.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    polyhedra = [_as_polyhedron(q, dims) for q in queries]
    outcomes: list[RemoteOutcome | None] = [None] * len(polyhedra)
    errors: list[tuple[int, BaseException]] = []
    errors_lock = threading.Lock()
    resubmissions = [0] * concurrency

    def client_loop(worker_idx: int) -> None:
        client = QueryClient(host, port, tenant=f"{tenant_prefix}-{worker_idx}")
        try:
            for idx in range(worker_idx, len(polyhedra), concurrency):
                while True:
                    try:
                        outcomes[idx] = client.query(
                            polyhedra[idx], deadline=deadline, tag=f"q{idx}"
                        )
                        break
                    except AdmissionRejected:
                        resubmissions[worker_idx] += 1
                        time.sleep(retry_sleep_s)
                    except BaseException as exc:
                        with errors_lock:
                            errors.append((idx, exc))
                        break
        finally:
            client.close()

    started = time.monotonic()
    threads = [
        threading.Thread(
            target=client_loop, args=(i,), name=f"{tenant_prefix}-{i}"
        )
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started

    report: dict = {}
    try:
        with QueryClient(host, port, tenant=f"{tenant_prefix}-report") as client:
            report = client.report()
    except (ConnectionError, OSError):
        pass
    errors.sort(key=lambda pair: pair[0])
    return ReplayReport(
        outcomes=outcomes,
        errors=errors,
        wall_time_s=wall,
        concurrency=concurrency,
        resubmissions=sum(resubmissions),
        report=report,
    )
