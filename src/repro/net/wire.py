"""Length-prefixed binary framing shared by the IPC and network layers.

One frame format serves both transports -- parent <-> shard-worker
process pipes and the asyncio TCP front door -- so the protocol tests
cover them together:

.. code-block:: text

    magic    2 bytes   b"RW"
    version  1 byte    0x01
    type     1 byte    MessageType
    hdr_len  4 bytes   big-endian u32, length of the JSON header
    blob_len 4 bytes   big-endian u32, length of the binary section
    header   hdr_len bytes of UTF-8 JSON (an object)
    blob     blob_len bytes (raw column data, or empty)
    crc      4 bytes   big-endian u32, CRC32 over type..blob

Headers are JSON so every message is introspectable; bulk row data rides
in the binary section as raw column bytes (dtype-tagged in the header's
``columns`` metadata), so result pages never pay a text encoding.
Python's ``json`` emits floats via ``repr``, which round-trips IEEE-754
doubles exactly -- predicates survive the wire bit-for-bit.

A frame that cannot be parsed raises a structured :class:`FrameError`
(``kind`` of ``magic`` / ``version`` / ``oversized`` / ``checksum`` /
``header`` / ``truncated``) rather than a bare exception, and a stream
that ends mid-frame is distinguishable from one that ends cleanly at a
frame boundary.
"""

from __future__ import annotations

import enum
import json
import socket
import struct
import threading
import zlib
from dataclasses import dataclass

import numpy as np

from repro.db.stats import QueryStats
from repro.geometry.boxes import Box
from repro.geometry.halfspace import Polyhedron

__all__ = [
    "Frame",
    "FrameDecoder",
    "FrameError",
    "MessageType",
    "SocketChannel",
    "box_from_wire",
    "box_to_wire",
    "columns_from_blob",
    "columns_to_blob",
    "encode_frame",
    "error_from_wire",
    "error_to_wire",
    "polyhedron_from_wire",
    "polyhedron_to_wire",
    "read_frame_async",
    "stats_from_wire",
    "stats_to_wire",
]

MAGIC = b"RW"
VERSION = 1
_HEADER = struct.Struct(">2sBBII")
_CRC = struct.Struct(">I")

#: Upper bounds a decoder enforces before trusting a length prefix.
MAX_HEADER_BYTES = 16 << 20
MAX_BLOB_BYTES = 1 << 30


class MessageType(enum.IntEnum):
    """Frame types shared by the IPC and network protocols."""

    HELLO = 1
    QUERY = 2
    BATCH = 3
    CANCEL = 4
    PAGE = 5
    DONE = 6
    ERROR = 7
    PING = 8
    PONG = 9
    SHUTDOWN = 10
    REPORT = 11
    #: Write-path RPCs: delta-tier inserts/deletes and shard merges.
    INGEST = 12
    MERGE = 13


class FrameError(Exception):
    """A frame violated the protocol; ``kind`` says how.

    ``magic``/``version``: the stream is not speaking this protocol;
    ``oversized``: a length prefix exceeds the configured bounds (a torn
    length reads as garbage, so this doubles as corruption detection);
    ``checksum``: the payload CRC does not match (torn frame);
    ``header``: the JSON header failed to parse;
    ``truncated``: the stream ended mid-frame.
    """

    def __init__(self, kind: str, message: str):
        super().__init__(f"{kind}: {message}")
        self.kind = kind


def encode_frame(
    msg_type: MessageType, header: dict | None = None, blob: bytes = b""
) -> bytes:
    """Serialize one frame."""
    header_bytes = json.dumps(
        header or {}, separators=(",", ":"), allow_nan=True
    ).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise FrameError("oversized", f"header of {len(header_bytes)} bytes")
    if len(blob) > MAX_BLOB_BYTES:
        raise FrameError("oversized", f"blob of {len(blob)} bytes")
    prefix = _HEADER.pack(
        MAGIC, VERSION, int(msg_type), len(header_bytes), len(blob)
    )
    crc = zlib.crc32(prefix[2:])
    crc = zlib.crc32(header_bytes, crc)
    crc = zlib.crc32(blob, crc)
    return prefix + header_bytes + blob + _CRC.pack(crc)


@dataclass
class Frame:
    """One decoded frame."""

    type: MessageType
    header: dict
    blob: bytes = b""


class FrameDecoder:
    """Incremental decoder: feed bytes in any chunking, pop whole frames.

    ``feed`` buffers; :meth:`pop` returns the next complete frame or
    ``None``.  :meth:`finish` must be called when the stream ends: it
    raises ``FrameError("truncated", ...)`` if bytes are left over,
    which is how a torn-off connection mid-frame is reported.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes received but not yet consumed by a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> None:
        """Append raw stream bytes."""
        self._buffer.extend(data)

    def pop(self) -> Frame | None:
        """Decode and remove the next complete frame, if any."""
        buf = self._buffer
        if len(buf) < _HEADER.size:
            return None
        magic, version, msg_type, header_len, blob_len = _HEADER.unpack_from(buf)
        if magic != MAGIC:
            raise FrameError("magic", f"expected {MAGIC!r}, got {bytes(magic)!r}")
        if version != VERSION:
            raise FrameError("version", f"unsupported frame version {version}")
        if header_len > MAX_HEADER_BYTES or blob_len > MAX_BLOB_BYTES:
            raise FrameError(
                "oversized", f"header={header_len} blob={blob_len} bytes"
            )
        total = _HEADER.size + header_len + blob_len + _CRC.size
        if len(buf) < total:
            return None
        stored = _CRC.unpack_from(buf, total - _CRC.size)[0]
        actual = zlib.crc32(memoryview(buf)[2 : total - _CRC.size])
        if stored != actual:
            raise FrameError(
                "checksum", f"crc mismatch (stored {stored:#x}, got {actual:#x})"
            )
        header_bytes = bytes(buf[_HEADER.size : _HEADER.size + header_len])
        blob = bytes(buf[_HEADER.size + header_len : total - _CRC.size])
        del buf[:total]
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameError("header", f"bad JSON header: {exc}") from exc
        if not isinstance(header, dict):
            raise FrameError("header", "header must be a JSON object")
        try:
            kind = MessageType(msg_type)
        except ValueError as exc:
            raise FrameError("header", f"unknown message type {msg_type}") from exc
        return Frame(type=kind, header=header, blob=blob)

    def finish(self) -> None:
        """Assert the stream ended at a frame boundary."""
        if self._buffer:
            raise FrameError(
                "truncated", f"stream ended {len(self._buffer)} bytes into a frame"
            )


class SocketChannel:
    """Blocking-socket frame channel with a serialized writer.

    One reader (thread) per channel; any number of writers (``send``
    holds a lock so interleaved frames never tear).  ``recv`` returns
    ``None`` on a clean EOF at a frame boundary and raises
    :class:`FrameError` on a mid-frame EOF or torn bytes.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._decoder = FrameDecoder()
        self._wlock = threading.Lock()
        self._closed = False

    def send(
        self, msg_type: MessageType, header: dict | None = None, blob: bytes = b""
    ) -> None:
        """Write one frame (atomic with respect to other senders)."""
        data = encode_frame(msg_type, header, blob)
        with self._wlock:
            self._sock.sendall(data)

    def recv(self) -> Frame | None:
        """Block for the next frame; ``None`` on clean EOF."""
        while True:
            frame = self._decoder.pop()
            if frame is not None:
                return frame
            try:
                data = self._sock.recv(1 << 16)
            except OSError:
                if self._closed:
                    return None
                raise
            if not data:
                self._decoder.finish()
                return None
            self._decoder.feed(data)

    def settimeout(self, timeout: float | None) -> None:
        """Set the socket timeout (``recv`` raises ``TimeoutError`` past it)."""
        self._sock.settimeout(timeout)

    def close(self) -> None:
        """Close the underlying socket (unblocks a pending ``recv``)."""
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


async def read_frame_async(reader, decoder: FrameDecoder) -> Frame | None:
    """asyncio variant of :meth:`SocketChannel.recv` over a StreamReader."""
    while True:
        frame = decoder.pop()
        if frame is not None:
            return frame
        data = await reader.read(1 << 16)
        if not data:
            decoder.finish()
            return None
        decoder.feed(data)


# -- geometry over the wire -------------------------------------------------


def polyhedron_to_wire(polyhedron: Polyhedron) -> dict:
    """JSON-safe form of a polyhedron (float64-exact via repr round-trip)."""
    return {
        "normals": polyhedron.normals.tolist(),
        "offsets": polyhedron.offsets.tolist(),
    }


def polyhedron_from_wire(wire: dict) -> Polyhedron:
    """Inverse of :func:`polyhedron_to_wire`."""
    return Polyhedron.from_inequalities(
        np.asarray(wire["normals"], dtype=np.float64),
        np.asarray(wire["offsets"], dtype=np.float64),
    )


def box_to_wire(box: Box) -> dict:
    """JSON-safe form of a box."""
    return {"lo": box.lo.tolist(), "hi": box.hi.tolist()}


def box_from_wire(wire: dict) -> Box:
    """Inverse of :func:`box_to_wire`."""
    return Box(np.asarray(wire["lo"]), np.asarray(wire["hi"]))


# -- result rows over the wire ----------------------------------------------


def columns_to_blob(rows: dict[str, np.ndarray]) -> tuple[list, bytes]:
    """Pack a column dict into (metadata, raw bytes) for a PAGE frame.

    Metadata is ``[[name, dtype_str, row_count], ...]`` in blob order;
    the blob is the concatenation of each column's C-contiguous bytes.
    """
    meta: list = []
    parts: list[bytes] = []
    for name, arr in rows.items():
        arr = np.ascontiguousarray(arr)
        meta.append([name, arr.dtype.str, int(arr.shape[0])])
        parts.append(arr.tobytes())
    return meta, b"".join(parts)


def columns_from_blob(meta: list, blob: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`columns_to_blob` (validates the blob length)."""
    out: dict[str, np.ndarray] = {}
    offset = 0
    for name, dtype_str, count in meta:
        dtype = np.dtype(dtype_str)
        nbytes = dtype.itemsize * int(count)
        if offset + nbytes > len(blob):
            raise FrameError(
                "truncated",
                f"column {name!r} needs {nbytes} bytes past offset {offset}, "
                f"blob has {len(blob)}",
            )
        out[name] = np.frombuffer(
            blob, dtype=dtype, count=int(count), offset=offset
        ).copy()
        offset += nbytes
    if offset != len(blob):
        raise FrameError(
            "header", f"blob has {len(blob) - offset} unclaimed trailing bytes"
        )
    return out


# -- query stats over the wire ----------------------------------------------

_STAT_COUNTERS = (
    "rows_examined",
    "rows_returned",
    "cells_inside",
    "cells_outside",
    "cells_partial",
    "nodes_visited",
    "pages_skipped",
    "pages_prefetched",
)


def stats_to_wire(stats: QueryStats) -> dict:
    """JSON-safe form of per-query stats.

    The distinct-page *set* is compressed to per-namespace counts; the
    receiving side reconstructs synthetic page ids.  That preserves
    ``pages_touched`` and cross-shard merge additivity (shard namespaces
    are disjoint) without shipping every page id.
    """
    pages: dict[str, int] = {}
    for namespace, _ in stats._pages:
        pages[namespace] = pages.get(namespace, 0) + 1
    extra = {
        k: v
        for k, v in stats.extra.items()
        if isinstance(v, (bool, int, float, str))
    }
    wire = {name: int(getattr(stats, name)) for name in _STAT_COUNTERS}
    wire["pages"] = pages
    wire["extra"] = extra
    return wire


def stats_from_wire(wire: dict) -> QueryStats:
    """Inverse of :func:`stats_to_wire` (synthetic per-namespace page ids)."""
    stats = QueryStats(**{name: int(wire.get(name, 0)) for name in _STAT_COUNTERS})
    stats.extra.update(wire.get("extra", {}))
    for namespace, count in wire.get("pages", {}).items():
        for page_id in range(int(count)):
            stats.record_page(namespace, page_id)
    return stats


# -- structured errors over the wire -----------------------------------------


def error_to_wire(exc: BaseException) -> dict:
    """Classify an exception into a wire error header.

    ``kind`` drives the receiver's handling: ``deadline`` and
    ``cancelled`` map back to cooperative-cancellation types,
    ``storage_fault`` to the matching :mod:`repro.db.errors` class (so
    per-shard degradation works across the process boundary), anything
    else to a generic remote error.
    """
    from repro.db.errors import StorageFault
    from repro.service.errors import DeadlineExceeded

    if isinstance(exc, DeadlineExceeded):
        kind = "deadline"
    elif isinstance(exc, StorageFault):
        kind = "storage_fault"
    else:
        kind = "error"
    return {"kind": kind, "type": type(exc).__name__, "message": str(exc)}


def error_from_wire(wire: dict) -> BaseException:
    """Reconstruct the closest local exception for a wire error."""
    from repro.db import errors as db_errors
    from repro.service.errors import DeadlineExceeded

    kind = wire.get("kind", "error")
    type_name = wire.get("type", "")
    message = wire.get("message", "")
    if kind == "deadline":
        return DeadlineExceeded(message)
    if kind == "storage_fault":
        cls = getattr(db_errors, type_name, db_errors.StorageFault)
        if not (isinstance(cls, type) and issubclass(cls, db_errors.StorageFault)):
            cls = db_errors.StorageFault
        return cls(message)
    return RuntimeError(f"remote {type_name or 'error'}: {message}")
