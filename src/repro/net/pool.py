"""Multi-process shard workers: scatter-gather over real parallelism.

:class:`ShardWorkerPool` is the process-transport counterpart of the
thread-based :class:`~repro.shard.ScatterGatherExecutor` and implements
the same engine protocol (``execute`` / ``execute_batch`` plus
``table_name`` / ``dims`` / ``layout_version``), so the planner,
micro-batching, and service layers run unchanged on top of it.  The
difference is *where* the work runs: each kd-subtree shard lives in its
own worker **process** (one interpreter, one GIL, one private
:class:`~repro.db.catalog.Database` per shard), built from a picklable
:class:`~repro.shard.partitioner.ShardSpec`, and the parent speaks the
length-prefixed binary protocol of :mod:`repro.net.wire` to it over a
per-worker socket.

Lifecycle and failure model:

* **Heartbeats** -- a monitor thread pings every worker each
  ``heartbeat_s``; a worker that misses ``heartbeat_misses`` beats (or
  whose process exits) is declared dead, its socket torn down, and its
  in-flight requests failed with :class:`WorkerDied`.
* **Degraded partials** -- :class:`WorkerDied` subclasses
  :class:`~repro.db.errors.StorageFault`, so a dead worker degrades a
  query exactly like a dead shard does in thread mode: the query
  completes over the survivors with ``partial=True`` and the shard id in
  ``failed_shards``, and the service never caches the partial answer.
* **Respawn** -- the monitor automatically forks a replacement from the
  stored spec (bounded by ``max_respawns`` per worker), so a transient
  worker crash costs some partial answers, not the pool.
* **Cancellation** -- the coordinator polls the caller's
  ``cancel_check`` while gathering; the moment it raises (a service
  deadline, typically) every in-flight sibling request gets a ``CANCEL``
  frame, which trips the worker-side cooperative check mid-scan.  When
  the check is a bound :class:`~repro.service.executor.Deadline` method
  the remaining budget also rides along in the request, so workers
  enforce the deadline locally between coordinator polls.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import socket
import tempfile
import threading
import time
from dataclasses import replace
from typing import Callable

import numpy as np

from repro.core.batch import BatchMemberResult, BatchResult
from repro.core.planner import PlannedQuery
from repro.db.errors import StorageFault
from repro.db.stats import IOStats, QueryStats
from repro.geometry.boxes import Box, BoxRelation
from repro.geometry.halfspace import Polyhedron
from repro.ingest.delta import DELTA_BASE, SHARD_STRIDE
from repro.ingest.manager import DEFAULT_MERGE_THRESHOLD
from repro.net.wire import (
    MessageType,
    SocketChannel,
    columns_from_blob,
    columns_to_blob,
    error_from_wire,
    polyhedron_to_wire,
    stats_from_wire,
)
from repro.net.worker import WorkerConfig, worker_main
from repro.shard.partitioner import (
    ShardSpec,
    attach_prebuilt_index,
    shard_layout_version,
)

__all__ = ["ShardWorkerPool", "WorkerDied"]


class WorkerDied(StorageFault):
    """A shard worker process died with requests in flight.

    Subclassing :class:`~repro.db.errors.StorageFault` makes a worker
    death indistinguishable from an unrecoverable shard-storage fault to
    everything above the pool: the query degrades to a flagged partial
    over the surviving shards, and partials are never cached.
    """


class _Death:
    """Queue sentinel: the worker serving this tag died."""

    def __init__(self, shard_id: int):
        self.shard_id = shard_id


def _memberships_to_wire(
    memberships: dict[str, np.ndarray] | None,
) -> dict | None:
    """Encode an IN-list mapping as JSON-safe ``{col: [values...]}``."""
    if not memberships:
        return None
    return {
        col: [float(v) for v in np.asarray(values).ravel()]
        for col, values in memberships.items()
    }


class _WorkerHandle:
    """Parent-side state of one worker: process, socket, response routing."""

    def __init__(self, pool: "ShardWorkerPool", config: WorkerConfig):
        self.pool = pool
        self.config = config
        self.spec = config.spec
        self.process = None
        self.channel: SocketChannel | None = None
        self.alive = False
        self.pid: int | None = None
        self._lock = threading.Lock()
        # request_id -> (out_queue, tag): where this worker's response
        # frames for that request should be delivered.
        self._routes: dict[int, tuple[queue.Queue, object]] = {}
        self._generation = 0
        self.respawns = 0
        self.requests = 0
        self.busy_s = 0.0
        self.last_pong = 0.0
        self.io: dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------------

    def attach(self, process, channel: SocketChannel, pid: int) -> None:
        """Adopt a freshly accepted worker connection and start its reader."""
        with self._lock:
            self.process = process
            self.channel = channel
            self.pid = pid
            self.alive = True
            self._generation += 1
            generation = self._generation
        threading.Thread(
            target=self._reader_loop,
            args=(channel, generation),
            name=f"pool-reader-{self.spec.shard_id}",
            daemon=True,
        ).start()

    def mark_dead(self) -> None:
        """Declare the worker dead and fail everything in flight."""
        with self._lock:
            if not self.alive and self.channel is None:
                return
            self.alive = False
            channel, self.channel = self.channel, None
            routes, self._routes = self._routes, {}
        if channel is not None:
            channel.close()
        for out, tag in routes.values():
            out.put((tag, _Death(self.spec.shard_id)))
        self.pool._note(worker_deaths=1)

    # -- request routing ----------------------------------------------------

    def send_request(
        self,
        msg_type: MessageType,
        header: dict,
        out: queue.Queue,
        tag: object,
        blob: bytes = b"",
    ) -> bool:
        """Register the response route and send; False if the worker is down."""
        request_id = header["request_id"]
        with self._lock:
            if not self.alive or self.channel is None:
                return False
            self._routes[request_id] = (out, tag)
            channel = self.channel
        try:
            channel.send(msg_type, header, blob)
            return True
        except OSError:
            self.forget(request_id)
            self.mark_dead()
            return False

    def forget(self, request_id: int) -> None:
        """Drop the route: late frames for this request are discarded."""
        with self._lock:
            self._routes.pop(request_id, None)

    def cancel(self, request_id: int, member: int | None = None) -> None:
        """Best-effort CANCEL frame (worker may already be dead)."""
        with self._lock:
            channel = self.channel if self.alive else None
        if channel is not None:
            try:
                channel.send(
                    MessageType.CANCEL,
                    {"request_id": request_id, "member": member},
                )
            except OSError:
                pass

    def ping(self) -> None:
        """Best-effort heartbeat request."""
        with self._lock:
            channel = self.channel if self.alive else None
        if channel is not None:
            try:
                channel.send(MessageType.PING, {})
            except OSError:
                self.mark_dead()

    def shutdown(self) -> None:
        """Ask the worker to exit cleanly."""
        with self._lock:
            channel = self.channel if self.alive else None
        if channel is not None:
            try:
                channel.send(MessageType.SHUTDOWN, {})
            except OSError:
                pass

    # -- reader thread ------------------------------------------------------

    def _reader_loop(self, channel: SocketChannel, generation: int) -> None:
        try:
            while True:
                frame = channel.recv()
                if frame is None:
                    break
                if frame.type is MessageType.PONG:
                    self.last_pong = time.monotonic()
                    self.requests = int(frame.header.get("requests", self.requests))
                    self.busy_s = float(frame.header.get("busy_s", self.busy_s))
                    self.io = frame.header.get("io", self.io)
                    continue
                request_id = frame.header.get("request_id")
                with self._lock:
                    route = self._routes.get(request_id)
                    if frame.type is MessageType.DONE and (
                        frame.header.get("member") is None
                    ):
                        # Terminal frame for solo queries and batches.
                        if "busy_s" in frame.header:
                            self.busy_s = float(frame.header["busy_s"])
                        if "requests" in frame.header:
                            self.requests = int(frame.header["requests"]) + 1
                        if route is not None and frame.header.get("counters") is None:
                            self._routes.pop(request_id, None)
                if route is not None:
                    out, tag = route
                    out.put((tag, frame))
        except Exception:
            pass
        with self._lock:
            current = generation == self._generation
        if current:
            self.mark_dead()

    def stats(self) -> dict:
        """Per-worker utilization snapshot (for replay summaries)."""
        return {
            "shard_id": self.spec.shard_id,
            "pid": self.pid,
            "alive": self.alive,
            "requests": self.requests,
            "busy_s": self.busy_s,
            "respawns": self.respawns,
        }


class ShardWorkerPool:
    """One worker process per kd-subtree shard, behind the engine protocol.

    Parameters
    ----------
    specs:
        The partitioning plan (see :meth:`~repro.shard.KdPartitioner.plan`).
        Each spec ships to its worker, which builds the shard's database
        and kd-tree on its side of the process boundary.
    crossover / sample_pages / seed:
        Planner knobs, divided across shards exactly as the thread
        executor divides them (``sample_pages`` is the whole-table probe
        budget; each worker's planner is seeded ``seed + shard_id``).
    use_tight_boxes:
        Router pruning family (see :class:`~repro.shard.ShardRouter`).
    start_method:
        ``multiprocessing`` start method; ``"fork"`` (default where
        available) shares the parent's page data copy-on-write, while
        ``"spawn"`` pickles every spec -- both work because specs are
        spawn-safe by construction.
    heartbeat_s / heartbeat_misses:
        Liveness probing cadence and tolerance before a worker is
        declared dead and respawned.
    max_respawns:
        Per-worker automatic respawn budget.
    page_rows:
        Result-streaming chunk size (rows per PAGE frame).
    """

    def __init__(
        self,
        specs: list[ShardSpec],
        *,
        crossover: float = 0.25,
        sample_pages: int = 8,
        seed: int = 0,
        use_tight_boxes: bool = True,
        engine: str = "auto",
        start_method: str | None = None,
        heartbeat_s: float = 0.5,
        heartbeat_misses: int = 6,
        max_respawns: int = 8,
        page_rows: int = 4096,
        spawn_timeout_s: float = 60.0,
        poll_s: float = 0.01,
    ):
        if not specs:
            raise ValueError("a worker pool needs at least one shard spec")
        self.specs = list(specs)
        self.use_tight_boxes = use_tight_boxes
        self.heartbeat_s = heartbeat_s
        self.heartbeat_misses = heartbeat_misses
        self.max_respawns = max_respawns
        self.spawn_timeout_s = spawn_timeout_s
        self.poll_s = poll_s
        self._total_rows = int(sum(spec.num_rows for spec in specs))
        self._layout_version = shard_layout_version(
            specs[0].base_name, specs[0].dims, [s.num_rows for s in specs]
        )
        # Fallback result schema from the specs; replaced by the richer
        # schema the first worker reports in HELLO (a built shard table
        # can carry clustering columns beyond the input, e.g. kd_leaf).
        self._dtypes: dict[str, np.dtype] = dict(specs[0].column_dtypes())
        self._dtypes["_row_id"] = np.dtype(np.int64)
        self._column_order = list(specs[0].columns) + ["_row_id"]
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        shard_probe = max(1, sample_pages // len(specs))
        self._handles = [
            _WorkerHandle(
                self,
                WorkerConfig(
                    spec=spec,
                    crossover=crossover,
                    sample_pages=shard_probe,
                    seed=seed + spec.shard_id,
                    page_rows=page_rows,
                    engine=engine,
                ),
            )
            for spec in specs
        ]
        self._request_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._counters = {
            "queries": 0,
            "shards_dispatched": 0,
            "shards_pruned": 0,
            "shard_faults": 0,
            "partial_results": 0,
            "worker_deaths": 0,
            "worker_respawns": 0,
            "cancels_sent": 0,
            "rows_inserted": 0,
            "rows_deleted": 0,
            "merges": 0,
            "repartitions": 0,
        }
        # Write-path state.  The coordinator mirrors every acknowledged
        # mutation into a per-shard op log so a respawned worker -- which
        # rebuilds from its (immutable-columns) spec -- replays its way
        # back to the acknowledged state, with the same row ids (delta
        # ids are assigned sequentially and the kd build and merge are
        # deterministic).  ``_delta_boxes`` is the coordinator's
        # conservative bound on each shard's pending delta inserts: it
        # widens routing boxes the same way the thread-mode router does,
        # keeping OUTSIDE pruning and the INSIDE shortcut sound.
        self._write_lock = threading.Lock()
        self._spawn_lock = threading.Lock()
        self._epochs: list[str] = ["g0.e0"] * len(specs)
        self._delta_counts: list[int] = [0] * len(specs)
        self._delta_boxes: list[Box | None] = [None] * len(specs)
        self._oplog: list[list[tuple]] = [[] for _ in specs]
        self._recuts: list[int] = [0] * len(specs)
        self._closed = False
        self._listener, self._address, self._socket_dir = self._make_listener()
        try:
            for handle in self._handles:
                self._spawn(handle)
        except Exception:
            self.close()
            raise
        self._monitor_stop = threading.Event()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="pool-monitor", daemon=True
        )
        self._monitor.start()

    # -- engine protocol (mirrors ScatterGatherExecutor) --------------------

    @property
    def table_name(self) -> str:
        """Logical name of the sharded table (cache fingerprinting)."""
        return self.specs[0].base_name

    @property
    def dims(self) -> list[str]:
        """Ordered coordinate column names."""
        return list(self.specs[0].dims)

    @property
    def layout_version(self) -> str:
        """Layout digest plus per-shard write epochs (thread-mode formula).

        Changes on every acknowledged insert/delete (the worker's table
        epoch moves), every merge (generation moves), and every re-cut
        (the ``r<n>`` prefix moves), so the result cache can never serve
        a pre-write answer to a post-write query.
        """
        return f"{self._layout_version}|{','.join(self._epochs)}"

    @property
    def num_shards(self) -> int:
        """How many shard worker processes back this pool."""
        return len(self.specs)

    @property
    def transport(self) -> str:
        """Execution transport identifier (for reports and replays)."""
        return "process"

    # -- process management -------------------------------------------------

    def _make_listener(self):
        if hasattr(socket, "AF_UNIX"):
            sock_dir = tempfile.mkdtemp(prefix="repro-pool-")
            path = os.path.join(sock_dir, "pool.sock")
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(path)
            listener.listen(len(self.specs) + 4)
            return listener, path, sock_dir
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(len(self.specs) + 4)
        return listener, listener.getsockname(), None

    def _spawn(self, handle: _WorkerHandle) -> None:
        """Start (or restart) one worker and wait for its HELLO."""
        process = self._ctx.Process(
            target=worker_main,
            args=(handle.config, self._address),
            name=f"shard-worker-{handle.spec.shard_id}",
            daemon=True,
        )
        process.start()
        self._listener.settimeout(self.spawn_timeout_s)
        try:
            conn, _ = self._listener.accept()
        except OSError:
            process.terminate()
            raise TimeoutError(
                f"shard worker {handle.spec.shard_id} did not connect within "
                f"{self.spawn_timeout_s:.0f}s"
            ) from None
        conn.settimeout(self.spawn_timeout_s)
        channel = SocketChannel(conn)
        try:
            hello = channel.recv()
        except (OSError, TimeoutError):
            channel.close()
            process.terminate()
            raise TimeoutError(
                f"shard worker {handle.spec.shard_id} connected but sent no HELLO"
            ) from None
        if hello is None or hello.type is not MessageType.HELLO:
            channel.close()
            process.terminate()
            raise RuntimeError(
                f"shard worker {handle.spec.shard_id} spoke a bad handshake"
            )
        conn.settimeout(None)
        schema = hello.header.get("schema")
        if schema:
            self._column_order = [name for name, _ in schema]
            self._dtypes = {name: np.dtype(code) for name, code in schema}
        try:
            self._replay_oplog(handle.spec.shard_id, channel)
        except Exception as exc:
            channel.close()
            process.terminate()
            raise RuntimeError(
                f"shard worker {handle.spec.shard_id} failed op-log replay: {exc}"
            ) from None
        handle.last_pong = time.monotonic()
        handle.attach(process, channel, pid=int(hello.header.get("pid", 0)))

    def _replay_oplog(self, shard_id: int, channel: SocketChannel) -> None:
        """Re-apply acknowledged mutations to a freshly respawned worker.

        Runs synchronously on the bare channel *before* the worker is
        attached (no reader thread yet, so no query can observe the
        half-replayed shard).  Replay is idempotent across respawns
        because every respawn rebuilds the shard from the spec's columns
        first: the op sequence always starts from the same state, so it
        reproduces the same delta row ids and merge generations that
        were acknowledged to clients.
        """
        for entry in self._oplog[shard_id]:
            request_id = next(self._request_ids)
            if entry[0] == "insert":
                _, meta, blob = entry
                channel.send(
                    MessageType.INGEST,
                    {"request_id": request_id, "op": "insert", "columns": meta},
                    blob,
                )
            elif entry[0] == "delete":
                channel.send(
                    MessageType.INGEST,
                    {"request_id": request_id, "op": "delete"},
                    entry[1],
                )
            else:
                channel.send(MessageType.MERGE, {"request_id": request_id})
            while True:
                reply = channel.recv()
                if reply is None:
                    raise RuntimeError("worker closed the channel mid-replay")
                if reply.type is MessageType.ERROR:
                    raise RuntimeError(
                        f"replayed {entry[0]} failed: {reply.header.get('message')}"
                    )
                if (
                    reply.type is MessageType.DONE
                    and reply.header.get("request_id") == request_id
                ):
                    break

    def _monitor_loop(self) -> None:
        """Heartbeat, dead-worker detection, and automatic respawn."""
        while not self._monitor_stop.wait(self.heartbeat_s):
            for handle in self._handles:
                if self._monitor_stop.is_set():
                    return
                if handle.alive:
                    process = handle.process
                    stale = (
                        time.monotonic() - handle.last_pong
                        > self.heartbeat_s * self.heartbeat_misses
                    )
                    if process is not None and not process.is_alive():
                        handle.mark_dead()
                    elif stale:
                        # Wedged: no PONG for several beats. Kill it so
                        # in-flight requests fail fast, then respawn.
                        if process is not None:
                            process.terminate()
                        handle.mark_dead()
                    else:
                        handle.ping()
                if not handle.alive and handle.respawns < self.max_respawns:
                    try:
                        with self._spawn_lock:
                            if handle.alive:
                                continue
                            self._spawn(handle)
                    except (TimeoutError, RuntimeError, OSError):
                        continue
                    handle.respawns += 1
                    self._note(worker_respawns=1)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Shut every worker down and reap the processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        stop = getattr(self, "_monitor_stop", None)
        if stop is not None:
            stop.set()
            self._monitor.join(timeout=5.0)
        for handle in self._handles:
            handle.shutdown()
        deadline = time.monotonic() + 5.0
        for handle in self._handles:
            process = handle.process
            if process is None:
                continue
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for handle in self._handles:
            handle.mark_dead()
        self._listener.close()
        if self._socket_dir is not None:
            try:
                os.unlink(self._address)
            except OSError:
                pass
            try:
                os.rmdir(self._socket_dir)
            except OSError:
                pass

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- routing ------------------------------------------------------------

    def _route(
        self, polyhedron: Polyhedron
    ) -> tuple[list[tuple[ShardSpec, BoxRelation]], int]:
        dispatched: list[tuple[ShardSpec, BoxRelation]] = []
        pruned = 0
        for spec in self.specs:
            delta_box = self._delta_boxes[spec.shard_id]
            if spec.num_rows == 0 and delta_box is None:
                pruned += 1
                continue
            box = spec.tight_box if self.use_tight_boxes else spec.partition_box
            if delta_box is not None:
                # Pending delta inserts may fall outside the main rows'
                # tight box; widen so pruning and INSIDE stay sound.
                box = box.union_bounds(delta_box)
            relation = polyhedron.classify_box(box)
            if relation is BoxRelation.OUTSIDE:
                pruned += 1
            else:
                dispatched.append((spec, relation))
        return dispatched, pruned

    @staticmethod
    def _remaining_deadline(cancel_check) -> float | None:
        """Extract a forwardable budget when the check is Deadline.check."""
        owner = getattr(cancel_check, "__self__", None)
        remaining = getattr(owner, "remaining", None)
        if callable(remaining):
            try:
                return max(0.0, float(remaining()))
            except Exception:
                return None
        return None

    # -- merging helpers ----------------------------------------------------

    def _empty_rows(self) -> dict[str, np.ndarray]:
        return {
            name: np.empty(0, dtype=self._dtypes[name])
            for name in self._column_order
        }

    def _merge_pieces(
        self, pieces: list[dict[str, np.ndarray]]
    ) -> dict[str, np.ndarray]:
        if not pieces:
            return self._empty_rows()
        return {
            name: np.concatenate([p[name] for p in pieces])
            for name in self._column_order
        }

    @staticmethod
    def _rebase(spec: ShardSpec, rows: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        rebased = dict(rows)
        ids = rows["_row_id"]
        # Main-band ids shift by the shard's global row offset; delta-band
        # ids move into the shard's slice of the delta namespace.
        rebased["_row_id"] = np.where(
            ids >= DELTA_BASE,
            ids + spec.shard_id * SHARD_STRIDE,
            ids + spec.row_offset,
        )
        return rebased

    # -- solo execution -----------------------------------------------------

    def execute(
        self,
        polyhedron: Polyhedron,
        cancel_check: Callable[[], None] | None = None,
        memberships: dict[str, np.ndarray] | None = None,
    ) -> PlannedQuery:
        """Route, scatter over worker processes, and gather one query."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        if cancel_check is not None:
            cancel_check()
        dispatched, pruned = self._route(polyhedron)
        out: queue.Queue = queue.Queue()
        poly_wire = polyhedron_to_wire(polyhedron)
        memberships_wire = _memberships_to_wire(memberships)
        deadline_s = self._remaining_deadline(cancel_check)

        sent: dict[int, tuple[_WorkerHandle, int]] = {}
        failed: list[int] = []
        last_fault: StorageFault | None = None
        for spec, relation in dispatched:
            handle = self._handles[spec.shard_id]
            request_id = next(self._request_ids)
            header = {
                "request_id": request_id,
                "inside": relation is BoxRelation.INSIDE,
                "deadline_s": deadline_s,
            }
            if memberships_wire:
                header["memberships"] = memberships_wire
            if relation is not BoxRelation.INSIDE:
                header["polyhedron"] = poly_wire
            if handle.send_request(MessageType.QUERY, header, out, spec.shard_id):
                sent[spec.shard_id] = (handle, request_id)
            else:
                failed.append(spec.shard_id)
                last_fault = WorkerDied(
                    f"shard worker {spec.shard_id} is down (respawning)"
                )

        stats = QueryStats()
        pieces: list[dict[str, np.ndarray]] = []
        path_counts: dict[str, int] = {}
        weighted_estimate = 0.0
        estimated_rows = 0
        sampled_pages = 0
        fallback = False
        fallback_reason = ""
        shard_pieces: dict[int, list] = {sid: [] for sid in sent}
        pending = set(sent)

        while pending:
            # Poll the caller's check both while waiting and per frame,
            # so a tripped deadline aborts in-flight siblings promptly
            # even when responses arrive back-to-back.
            if cancel_check is not None:
                try:
                    cancel_check()
                except BaseException:
                    self._abort_pending(sent, pending)
                    raise
            try:
                sid, msg = out.get(timeout=self.poll_s)
            except queue.Empty:
                continue
            if sid not in pending:
                continue
            spec = self.specs[sid]
            if isinstance(msg, _Death):
                pending.discard(sid)
                failed.append(sid)
                last_fault = WorkerDied(
                    f"shard worker {sid} died mid-query"
                )
                continue
            if msg.type is MessageType.PAGE:
                shard_pieces[sid].append(
                    columns_from_blob(msg.header["columns"], msg.blob)
                )
                continue
            if msg.type is MessageType.ERROR:
                kind = msg.header.get("kind")
                pending.discard(sid)
                if kind == "storage_fault":
                    failed.append(sid)
                    last_fault = error_from_wire(msg.header)
                elif kind == "cancelled":
                    continue
                else:
                    # Deadline or unexpected error: abort in-flight
                    # siblings, then re-raise (the thread-mode contract).
                    self._abort_pending(sent, pending)
                    raise error_from_wire(msg.header)
                continue
            # DONE: assemble the shard's result.
            pending.discard(sid)
            header = msg.header
            parts = shard_pieces[sid]
            if not parts and "columns" in header:
                parts = [columns_from_blob(header["columns"], b"")]
            rows = (
                {
                    name: np.concatenate([p[name] for p in parts])
                    for name in self._column_order
                }
                if parts
                else self._empty_rows()
            )
            shard_stats = stats_from_wire(header["stats"])
            stats.merge(shard_stats)
            pieces.append(self._rebase(spec, rows))
            path = header["chosen_path"]
            path_counts[path] = path_counts.get(path, 0) + 1
            if header.get("fallback"):
                fallback = True
                fallback_reason = fallback_reason or header.get(
                    "fallback_reason", ""
                )
            estimate = float(header.get("estimated_selectivity", float("nan")))
            if np.isfinite(estimate):
                weighted_estimate += estimate * spec.num_rows
                estimated_rows += spec.num_rows
            sampled_pages += int(header.get("sampled_pages", 0))

        if failed and not pieces and dispatched:
            assert last_fault is not None
            raise last_fault

        rows = self._merge_pieces(pieces)
        estimate = (
            weighted_estimate / self._total_rows
            if estimated_rows
            else (0.0 if not dispatched else float("nan"))
        )
        for path, count in path_counts.items():
            stats.extra[f"shard_path_{path}"] = count
        stats.extra.setdefault("transport", "process")
        self._note(
            queries=1,
            shards_dispatched=len(dispatched),
            shards_pruned=pruned,
            shard_faults=len(failed),
            partial_results=1 if failed else 0,
        )
        return PlannedQuery(
            rows=rows,
            stats=stats,
            chosen_path="sharded",
            estimated_selectivity=estimate,
            sampled_pages=sampled_pages,
            fallback=fallback,
            fallback_reason=fallback_reason,
            shards_dispatched=len(dispatched),
            shards_pruned=pruned,
            shard_faults=len(failed),
            partial=bool(failed),
            failed_shards=tuple(sorted(failed)),
        )

    def _abort_pending(
        self, sent: dict[int, tuple[_WorkerHandle, int]], pending: set
    ) -> None:
        """Cancel every in-flight shard request and drop their routes."""
        for sid in list(pending):
            handle, request_id = sent[sid]
            handle.cancel(request_id)
            handle.forget(request_id)
            self._note(cancels_sent=1)
        pending.clear()

    # -- batched execution --------------------------------------------------

    def execute_batch(
        self,
        polyhedra: list[Polyhedron],
        cancel_checks: list[Callable[[], None] | None] | None = None,
        memberships_list: list[dict | None] | None = None,
    ) -> BatchResult:
        """Scatter one micro-batch over the worker processes.

        Semantics mirror the thread executor: each shard receives one
        BATCH request covering all the members routed to it, a member's
        own deadline/cancel failure never disturbs its siblings, and a
        per-shard storage fault (or worker death) degrades exactly the
        members that shard served to flagged partials.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        n = len(polyhedra)
        checks = list(cancel_checks) if cancel_checks is not None else [None] * n
        member_filters = (
            list(memberships_list) if memberships_list is not None else [None] * n
        )
        result = BatchResult(
            members=[BatchMemberResult() for _ in range(n)], occupancy=n
        )
        live: list[int] = []
        routes: list = [None] * n
        for m, (polyhedron, check) in enumerate(zip(polyhedra, checks)):
            if check is not None:
                try:
                    check()
                except BaseException as exc:
                    result.members[m].error = exc
                    continue
            routes[m] = self._route(polyhedron)
            live.append(m)

        shard_members: dict[int, list[tuple[int, BoxRelation]]] = {}
        for m in live:
            for spec, relation in routes[m][0]:
                shard_members.setdefault(spec.shard_id, []).append((m, relation))

        out: queue.Queue = queue.Queue()
        sent: dict[int, tuple[_WorkerHandle, int]] = {}
        merged = {
            m: {
                "stats": QueryStats(),
                "pieces": [],
                "path_counts": {},
                "failed": [],
                "last_fault": None,
                "fallback": False,
                "reason": "",
                "weighted": 0.0,
                "est_rows": 0,
                "sampled": 0,
            }
            for m in live
        }
        member_pieces: dict[tuple[int, int], list] = {}
        for sid, entries in shard_members.items():
            handle = self._handles[sid]
            request_id = next(self._request_ids)
            header = {
                "request_id": request_id,
                "members": [
                    {
                        "member": m,
                        "inside": relation is BoxRelation.INSIDE,
                        "deadline_s": self._remaining_deadline(checks[m]),
                        "memberships": _memberships_to_wire(member_filters[m]),
                        "polyhedron": (
                            polyhedron_to_wire(polyhedra[m])
                            if relation is not BoxRelation.INSIDE
                            else None
                        ),
                    }
                    for m, relation in entries
                ],
            }
            if handle.send_request(MessageType.BATCH, header, out, sid):
                sent[sid] = (handle, request_id)
            else:
                for m, _ in entries:
                    merged[m]["failed"].append(sid)
                    merged[m]["last_fault"] = WorkerDied(
                        f"shard worker {sid} is down (respawning)"
                    )

        pending = set(sent)
        cancelled_members: set[int] = set()
        while pending:
            # Poll live members' own checks so a coordinator-side
            # deadline cancels exactly that member everywhere, without
            # disturbing its batch siblings.
            for m in live:
                if m in cancelled_members or result.members[m].error is not None:
                    continue
                check = checks[m]
                if check is None:
                    continue
                try:
                    check()
                except BaseException as exc:
                    result.members[m].error = exc
                    cancelled_members.add(m)
                    for other_sid in pending:
                        handle, request_id = sent[other_sid]
                        if any(mm == m for mm, _ in shard_members[other_sid]):
                            handle.cancel(request_id, member=m)
                            self._note(cancels_sent=1)
            try:
                sid, msg = out.get(timeout=self.poll_s)
            except queue.Empty:
                continue
            if sid not in pending:
                continue
            spec = self.specs[sid]
            if isinstance(msg, _Death):
                pending.discard(sid)
                for m, _ in shard_members[sid]:
                    merged[m]["failed"].append(sid)
                    merged[m]["last_fault"] = WorkerDied(
                        f"shard worker {sid} died mid-batch"
                    )
                continue
            member = msg.header.get("member")
            if msg.type is MessageType.PAGE:
                member_pieces.setdefault((sid, member), []).append(
                    columns_from_blob(msg.header["columns"], msg.blob)
                )
                continue
            if msg.type is MessageType.ERROR:
                kind = msg.header.get("kind")
                if member is None:
                    continue
                if kind == "storage_fault":
                    merged[member]["failed"].append(sid)
                    merged[member]["last_fault"] = error_from_wire(msg.header)
                elif kind == "cancelled":
                    pass
                elif result.members[member].error is None:
                    result.members[member].error = error_from_wire(msg.header)
                continue
            # DONE frames: per-member completion, or the shard's trailer.
            if member is None:
                counters = msg.header.get("counters") or {}
                result.pages_decoded += int(counters.get("pages_decoded", 0))
                result.shared_decode_hits += int(
                    counters.get("shared_decode_hits", 0)
                )
                pending.discard(sid)
                self._handles[sid].forget(sent[sid][1])
                continue
            header = msg.header
            parts = member_pieces.pop((sid, member), [])
            if not parts and "columns" in header:
                parts = [columns_from_blob(header["columns"], b"")]
            rows = (
                {
                    name: np.concatenate([p[name] for p in parts])
                    for name in self._column_order
                }
                if parts
                else self._empty_rows()
            )
            acc = merged[member]
            acc["stats"].merge(stats_from_wire(header["stats"]))
            acc["pieces"].append(self._rebase(spec, rows))
            path = header["chosen_path"]
            acc["path_counts"][path] = acc["path_counts"].get(path, 0) + 1
            if header.get("fallback"):
                acc["fallback"] = True
                acc["reason"] = acc["reason"] or header.get("fallback_reason", "")
            estimate = float(header.get("estimated_selectivity", float("nan")))
            if np.isfinite(estimate):
                acc["weighted"] += estimate * spec.num_rows
                acc["est_rows"] += spec.num_rows
            acc["sampled"] += int(header.get("sampled_pages", 0))

        note = {
            "queries": 0,
            "shards_dispatched": 0,
            "shards_pruned": 0,
            "shard_faults": 0,
            "partial_results": 0,
        }
        for m in live:
            acc = merged[m]
            dispatched, pruned = routes[m]
            note["queries"] += 1
            note["shards_dispatched"] += len(dispatched)
            note["shards_pruned"] += pruned
            note["shard_faults"] += len(acc["failed"])
            if result.members[m].error is not None:
                continue
            if acc["failed"] and not acc["pieces"] and dispatched:
                result.members[m].error = acc["last_fault"]
                continue
            note["partial_results"] += 1 if acc["failed"] else 0
            rows = self._merge_pieces(acc["pieces"])
            estimate = (
                acc["weighted"] / self._total_rows
                if acc["est_rows"]
                else (0.0 if not dispatched else float("nan"))
            )
            stats = acc["stats"]
            for path, count in acc["path_counts"].items():
                stats.extra[f"shard_path_{path}"] = count
            stats.extra.setdefault("transport", "process")
            result.members[m].planned = PlannedQuery(
                rows=rows,
                stats=stats,
                chosen_path="sharded",
                estimated_selectivity=estimate,
                sampled_pages=acc["sampled"],
                fallback=acc["fallback"],
                fallback_reason=acc["reason"],
                shards_dispatched=len(dispatched),
                shards_pruned=pruned,
                shard_faults=len(acc["failed"]),
                partial=bool(acc["failed"]),
                failed_shards=tuple(sorted(acc["failed"])),
            )
        self._note(**note)
        return result

    # -- write path ---------------------------------------------------------

    def _shard_rpc(
        self,
        shard_id: int,
        msg_type: MessageType,
        header: dict,
        blob: bytes = b"",
        timeout_s: float | None = None,
    ):
        """One synchronous request/response round with a shard worker.

        Returns ``(done_frame, pages)`` where ``pages`` are any decoded
        PAGE payloads that preceded DONE.  Worker death or a worker-side
        error surfaces as the corresponding exception.
        """
        handle = self._handles[shard_id]
        out: queue.Queue = queue.Queue()
        request_id = next(self._request_ids)
        header = dict(header, request_id=request_id)
        if not handle.send_request(msg_type, header, out, shard_id, blob=blob):
            raise WorkerDied(f"shard worker {shard_id} is down (respawning)")
        deadline = time.monotonic() + (
            timeout_s if timeout_s is not None else self.spawn_timeout_s
        )
        pages: list[dict[str, np.ndarray]] = []
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                handle.forget(request_id)
                raise WorkerDied(f"shard worker {shard_id} timed out")
            try:
                _, msg = out.get(timeout=remaining)
            except queue.Empty:
                continue
            if isinstance(msg, _Death):
                raise WorkerDied(f"shard worker {shard_id} died mid-request")
            if msg.type is MessageType.PAGE:
                pages.append(columns_from_blob(msg.header["columns"], msg.blob))
                continue
            if msg.type is MessageType.ERROR:
                handle.forget(request_id)
                raise error_from_wire(msg.header)
            if msg.type is MessageType.DONE:
                return msg, pages

    def insert_rows(self, data: dict[str, np.ndarray]) -> np.ndarray:
        """Insert rows, routed to workers by partition-box containment.

        The semantics mirror the thread-mode executor exactly: each row
        lands in the owning shard's delta tier (WAL-first, inside that
        worker process), a row outside every partition cell goes to the
        nearest shard, and the returned ids are global delta-band ids in
        input order.  Acknowledged mutations are mirrored into the
        coordinator's op log so a respawned worker replays back to them.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        arrays = {c: np.asarray(arr) for c, arr in data.items()}
        dims = self.dims
        points = np.column_stack(
            [np.asarray(arrays[d], dtype=np.float64) for d in dims]
        )
        n = len(points)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        owner = np.full(n, -1, dtype=np.int64)
        for spec in self.specs:
            undecided = owner == -1
            if not undecided.any():
                break
            inside = spec.partition_box.contains_points(points[undecided])
            owner[np.flatnonzero(undecided)[inside]] = spec.shard_id
        for i in np.flatnonzero(owner == -1):
            distances = [
                spec.partition_box.min_distance_to_point(points[i])
                for spec in self.specs
            ]
            owner[i] = int(np.argmin(distances))
        out = np.empty(n, dtype=np.int64)
        with self._write_lock:
            for shard_id in np.unique(owner):
                sid = int(shard_id)
                where = np.flatnonzero(owner == shard_id)
                sub = {c: np.ascontiguousarray(arr[where]) for c, arr in arrays.items()}
                meta, blob = columns_to_blob(sub)
                done, _ = self._shard_rpc(
                    sid, MessageType.INGEST, {"op": "insert", "columns": meta}, blob
                )
                local = np.frombuffer(done.blob, dtype=np.int64)
                out[where] = local + sid * SHARD_STRIDE
                self._oplog[sid].append(("insert", meta, blob))
                self._epochs[sid] = done.header.get(
                    "layout_version", self._epochs[sid]
                )
                self._delta_counts[sid] += len(where)
                batch_box = Box(points[where].min(axis=0), points[where].max(axis=0))
                box = self._delta_boxes[sid]
                self._delta_boxes[sid] = (
                    batch_box if box is None else box.union_bounds(batch_box)
                )
        self._note(rows_inserted=n)
        return out

    def delete_rows(self, row_ids) -> int:
        """Tombstone rows by global id (main-band or delta-band)."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        ids = np.atleast_1d(np.asarray(row_ids, dtype=np.int64))
        if len(ids) == 0:
            return 0
        in_delta = ids >= DELTA_BASE
        owner = np.empty(len(ids), dtype=np.int64)
        owner[in_delta] = (ids[in_delta] - DELTA_BASE) // SHARD_STRIDE
        main = ids[~in_delta]
        if len(main) and (main.min() < 0 or main.max() >= self._total_rows):
            raise IndexError(
                f"delete row ids out of range [0, {self._total_rows})"
            )
        offsets = np.array([s.row_offset for s in self.specs], dtype=np.int64)
        owner[~in_delta] = np.searchsorted(offsets, main, side="right") - 1
        if in_delta.any() and (
            owner[in_delta].min() < 0 or owner[in_delta].max() >= self.num_shards
        ):
            raise IndexError("delta row ids out of range")
        deleted = 0
        with self._write_lock:
            for shard_id in np.unique(owner):
                sid = int(shard_id)
                spec = self.specs[sid]
                where = owner == shard_id
                local = np.where(
                    in_delta[where],
                    ids[where] - sid * SHARD_STRIDE,
                    ids[where] - spec.row_offset,
                )
                blob = np.ascontiguousarray(local, dtype=np.int64).tobytes()
                done, _ = self._shard_rpc(
                    sid, MessageType.INGEST, {"op": "delete"}, blob
                )
                deleted += int(done.header.get("count", 0))
                self._oplog[sid].append(("delete", blob))
                self._epochs[sid] = done.header.get(
                    "layout_version", self._epochs[sid]
                )
                self._delta_counts[sid] += int(where.sum())
        self._note(rows_deleted=deleted)
        return deleted

    def delta_fraction(self) -> float:
        """The largest per-shard pending-churn fraction (repartition trigger)."""
        return max(
            self._delta_counts[spec.shard_id] / max(1, spec.num_rows)
            for spec in self.specs
        )

    def merge(self, threshold: float = 0.0) -> list[dict]:
        """Merge every shard whose churn fraction crossed ``threshold``.

        Each qualifying worker drains its delta out-of-place (median-split
        kd rebuild over old + new rows) and swaps atomically inside its
        own process; the coordinator refreshes that shard's routing
        geometry from the reply and recomputes global offsets and the
        layout digest.  Queries keep flowing on every shard throughout.
        """
        reports: list[dict] = []
        with self._write_lock:
            for spec in self.specs:
                sid = spec.shard_id
                if self._delta_counts[sid] == 0:
                    continue
                if self._delta_counts[sid] / max(1, spec.num_rows) < threshold:
                    continue
                done, _ = self._shard_rpc(sid, MessageType.MERGE, {})
                header = done.header
                reports.append(header.get("report", {}))
                self._oplog[sid].append(("merge",))
                spec.num_rows = int(header.get("num_rows", spec.num_rows))
                box = header.get("tight_box")
                if box:
                    spec.tight_box = Box(
                        np.asarray(box["lo"], dtype=np.float64),
                        np.asarray(box["hi"], dtype=np.float64),
                    )
                self._epochs[sid] = header.get("layout_version", self._epochs[sid])
                self._delta_counts[sid] = 0
                self._delta_boxes[sid] = None
            if reports:
                self._refresh_layout()
        self._note(merges=len(reports))
        return reports

    def repartition(self, shard_id: int) -> dict:
        """Re-cut one shard from its merged rows and respawn its worker.

        Fetches the shard's current merge-on-read contents over the wire
        (main + delta, tombstones suppressed), rebuilds the
        :class:`~repro.shard.partitioner.ShardSpec` around them -- same
        partition cell and post-order range, fresh tight box and row
        count -- and restarts that worker process from the new spec.
        The other shards keep serving queries throughout; in-flight
        queries on the re-cut shard degrade to flagged partials, exactly
        as a worker crash does.
        """
        with self._write_lock:
            sid = int(shard_id)
            old = self.specs[sid]
            done, pages = self._shard_rpc(
                sid, MessageType.QUERY, {"inside": True, "deadline_s": None}
            )
            if not pages and "columns" in done.header:
                pages = [columns_from_blob(done.header["columns"], b"")]
            columns = {
                c: np.concatenate([p[c] for p in pages])
                for c in old.columns
            }
            num_rows = len(next(iter(columns.values()))) if columns else 0
            if num_rows == 0:
                raise ValueError(
                    f"cannot repartition shard {sid}: no live rows to re-cut"
                )
            pts = np.column_stack(
                [np.asarray(columns[d], dtype=np.float64) for d in old.dims]
            )
            # Clear the prebuilt index fields before recomputing: stale
            # blobs carried by replace() would describe the pre-recut
            # tree.  attach_prebuilt_index rebuilds them for the new
            # rows, so the respawn (and every later crash respawn)
            # installs pages instead of re-running the build.
            new_spec = replace(
                old,
                columns=columns,
                num_rows=num_rows,
                num_levels=min(old.num_levels, max(1, int(num_rows).bit_length())),
                tight_box=Box(pts.min(axis=0), pts.max(axis=0)),
                kd_leaf=None,
                index_pages=None,
                index_layout=None,
            )
            if old.index_pages is not None:
                attach_prebuilt_index(new_spec)
            with self._spawn_lock:
                handle = self._handles[sid]
                handle.shutdown()
                process = handle.process
                if process is not None:
                    process.join(timeout=5.0)
                    if process.is_alive():
                        process.terminate()
                        process.join(timeout=1.0)
                handle.mark_dead()
                self.specs[sid] = new_spec
                handle.config = replace(handle.config, spec=new_spec)
                handle.spec = new_spec
                self._oplog[sid] = []
                self._delta_counts[sid] = 0
                self._delta_boxes[sid] = None
                self._recuts[sid] += 1
                # A respawned worker starts back at generation 0; the
                # re-cut counter keeps the fingerprint moving forward.
                self._epochs[sid] = f"r{self._recuts[sid]}:g0.e0"
                self._spawn(handle)
            self._refresh_layout()
        self._note(repartitions=1)
        return {"shard_id": sid, "num_rows": num_rows}

    def maybe_repartition(
        self, threshold: float = DEFAULT_MERGE_THRESHOLD
    ) -> list[dict]:
        """Online repartitioning: re-cut and respawn every shard whose
        pending churn fraction crossed ``threshold``."""
        out = []
        for spec in list(self.specs):
            sid = spec.shard_id
            if self._delta_counts[sid] == 0:
                continue
            if self._delta_counts[sid] / max(1, spec.num_rows) < threshold:
                continue
            out.append(self.repartition(sid))
        return out

    def _refresh_layout(self) -> None:
        """Recompute global offsets and the layout digest after re-cuts."""
        offset = 0
        for spec in self.specs:
            spec.row_offset = offset
            offset += spec.num_rows
        self._total_rows = offset
        self._layout_version = shard_layout_version(
            self.specs[0].base_name,
            list(self.specs[0].dims),
            [s.num_rows for s in self.specs],
        )

    def knn(self, point, k, cancel_check=None):
        """k-NN is not served over the process transport (yet)."""
        raise NotImplementedError(
            "k-NN queries are not supported over transport='process'; "
            "use the thread-transport ScatterGatherExecutor"
        )

    # -- observability ------------------------------------------------------

    def _note(self, **deltas: int) -> None:
        with self._lock:
            for key, delta in deltas.items():
                self._counters[key] += delta

    def counters(self) -> dict[str, int]:
        """Cumulative pool counters since construction."""
        with self._lock:
            return dict(self._counters)

    def worker_stats(self) -> list[dict]:
        """Per-worker utilization snapshots (requests, busy time, respawns)."""
        return [handle.stats() for handle in self._handles]

    def io_stats(self) -> IOStats:
        """Aggregate worker-side I/O counters via a heartbeat round."""
        asked = time.monotonic()
        for handle in self._handles:
            handle.ping()
        deadline = asked + 1.0
        while time.monotonic() < deadline:
            if all(
                handle.last_pong >= asked
                for handle in self._handles
                if handle.alive
            ):
                break
            time.sleep(0.005)
        total = IOStats()
        for handle in self._handles:
            if handle.io:
                total.add(**handle.io)
        return total

    def __repr__(self) -> str:
        alive = sum(1 for h in self._handles if h.alive)
        return (
            f"ShardWorkerPool(name={self.table_name!r}, shards={self.num_shards}, "
            f"alive={alive}, transport='process')"
        )
