"""The asyncio network front door: a TCP server in front of QueryService.

The paper's system serves SkyServer web traffic; this module is the
reproduction's network edge.  A :class:`QueryServer` listens on TCP and
speaks the same length-prefixed framing as the worker IPC
(:mod:`repro.net.wire`), translating frames into
:class:`~repro.service.QueryService` calls:

* **Sessions** -- each connection HELLOs with a tenant name and gets its
  own service :class:`~repro.service.session.Session`, so the service's
  per-session accounting and the report's ``sessions`` block see network
  tenants exactly like in-process clients.
* **Admission and backpressure** -- queries pass two gates: a
  per-connection in-flight cap (``max_inflight``, the per-tenant gate)
  and the service's own :class:`~repro.service.AdmissionQueue`.  Both
  reject with a structured ``ERROR {kind: "rejected"}`` frame telling
  the client which gate refused, and a well-behaved client backs off and
  resubmits -- the same cooperative discipline as in-process replay.
* **Streaming** -- results leave as ``PAGE`` frames (raw column chunks)
  followed by one ``DONE`` frame with plan fields, stats, and metrics,
  so a big result never materializes as one giant message.
* **Structured errors** -- service exceptions cross the wire as typed
  ERROR frames (``rejected`` / ``deadline`` / ``draining`` /
  ``query_fault`` / ``storage_fault``), which the client maps back to
  the exception types of :mod:`repro.service.errors`.
* **Graceful drain** -- SIGTERM (or :meth:`QueryServer.drain`) stops
  accepting connections, refuses new queries with ``draining``, lets
  every in-flight query finish streaming, then stops the service with
  ``drain=True``.  No accepted query is abandoned.

The event loop never blocks on query execution: each submitted ticket is
awaited via ``asyncio.to_thread``, so slow queries park on the service's
worker pool while the loop keeps serving CANCELs, PINGs, and other
connections.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
from dataclasses import asdict

from repro.net.wire import (
    FrameDecoder,
    FrameError,
    MessageType,
    columns_to_blob,
    encode_frame,
    error_to_wire,
    polyhedron_from_wire,
    read_frame_async,
    stats_to_wire,
)
from repro.service.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    QueryFault,
    ServiceClosed,
)
from repro.service.executor import QueryService

__all__ = ["QueryServer", "serve"]


def _service_error_to_wire(exc: BaseException) -> dict:
    """Map a service exception to a structured ERROR header."""
    if isinstance(exc, AdmissionRejected):
        return {
            "kind": "rejected",
            "type": "AdmissionRejected",
            "scope": "service",
            "depth": exc.depth,
            "message": str(exc),
        }
    if isinstance(exc, ServiceClosed):
        return {"kind": "draining", "type": "ServiceClosed", "message": str(exc)}
    if isinstance(exc, QueryFault):
        return {
            "kind": "query_fault",
            "type": "QueryFault",
            "query_id": exc.query_id,
            "tag": exc.tag,
            "cause_type": exc.cause_type,
            "message": str(exc),
        }
    # DeadlineExceeded and StorageFault (and anything else) already have
    # wire forms in the shared converter.
    if isinstance(exc, DeadlineExceeded):
        return {"kind": "deadline", "type": "DeadlineExceeded", "message": str(exc)}
    return error_to_wire(exc)


def _json_safe(value):
    """Deep-copy a report into plain JSON types (numpy scalars included)."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


class _Connection:
    """Per-connection state: session, write lock, in-flight queries."""

    def __init__(self, tenant: str, session, max_inflight: int):
        self.tenant = tenant
        self.session = session
        self.max_inflight = max_inflight
        self.write_lock = asyncio.Lock()
        self.tasks: set[asyncio.Task] = set()
        self.cancelled: set[int] = set()

    @property
    def inflight(self) -> int:
        return len(self.tasks)


class QueryServer:
    """Serve a running :class:`~repro.service.QueryService` over TCP."""

    def __init__(
        self,
        service: QueryService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 32,
        page_rows: int = 4096,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.page_rows = page_rows
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        self._draining = False
        self._drained = asyncio.Event()
        self._conn_ids = iter(range(1, 1 << 62))

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves port 0 after start)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def draining(self) -> bool:
        """Whether a graceful drain is in progress (or finished)."""
        return self._draining

    async def start(self) -> "QueryServer":
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight queries, then stop the service.

        Idempotent; subsequent calls await the same drain.
        """
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Let every accepted query finish streaming its result.
        pending = [t for conn in self._connections for t in conn.tasks]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        await asyncio.to_thread(self.service.stop, True)
        self._drained.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger a graceful drain (POSIX loops only)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.drain())
                )

    async def serve_until_drained(self) -> None:
        """Block until a drain (signal- or call-initiated) completes."""
        await self._drained.wait()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        decoder = FrameDecoder()
        conn: _Connection | None = None
        try:
            hello = await read_frame_async(reader, decoder)
            if hello is None or hello.type is not MessageType.HELLO:
                writer.close()
                return
            tenant = str(hello.header.get("tenant") or f"net-{next(self._conn_ids)}")
            conn = _Connection(
                tenant,
                self.service.open_session(name=tenant),
                int(hello.header.get("max_inflight") or self.max_inflight),
            )
            conn.max_inflight = min(conn.max_inflight, self.max_inflight)
            self._connections.add(conn)
            engine = self.service.planner
            await self._send(
                writer,
                conn,
                MessageType.HELLO,
                {
                    "server": "repro-query-service",
                    "table": engine.table_name,
                    "dims": list(engine.dims),
                    "layout_version": engine.layout_version,
                    "transport": getattr(engine, "transport", "inprocess"),
                    "max_inflight": conn.max_inflight,
                    "session": conn.session.session_id,
                },
            )
            while True:
                frame = await read_frame_async(reader, decoder)
                if frame is None:
                    break
                if frame.type is MessageType.QUERY:
                    await self._handle_query(writer, conn, frame)
                elif frame.type is MessageType.CANCEL:
                    conn.cancelled.add(int(frame.header.get("request_id", -1)))
                elif frame.type is MessageType.PING:
                    await self._send(
                        writer,
                        conn,
                        MessageType.PONG,
                        {
                            "draining": self._draining,
                            "inflight": conn.inflight,
                            "session": conn.session.session_id,
                        },
                    )
                elif frame.type is MessageType.REPORT:
                    report = await asyncio.to_thread(self.service.report)
                    await self._send(
                        writer, conn, MessageType.REPORT, _json_safe(report)
                    )
                elif frame.type is MessageType.SHUTDOWN:
                    break
        except (ConnectionError, FrameError, asyncio.IncompleteReadError):
            pass
        finally:
            if conn is not None:
                if conn.tasks:
                    await asyncio.gather(*conn.tasks, return_exceptions=True)
                self._connections.discard(conn)
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    async def _handle_query(self, writer, conn: _Connection, frame) -> None:
        request_id = int(frame.header["request_id"])
        if self._draining:
            await self._send_error(
                writer, conn, request_id, ServiceClosed("server is draining")
            )
            return
        if conn.inflight >= conn.max_inflight:
            # The per-tenant gate: reject *before* touching the shared
            # admission queue so one greedy tenant cannot fill it.
            header = {
                "kind": "rejected",
                "type": "AdmissionRejected",
                "scope": "tenant",
                "depth": conn.max_inflight,
                "message": (
                    f"tenant {conn.tenant!r} has {conn.inflight} queries in "
                    f"flight (cap {conn.max_inflight}); retry later"
                ),
                "request_id": request_id,
            }
            async with conn.write_lock:
                writer.write(encode_frame(MessageType.ERROR, header))
                await writer.drain()
            return
        try:
            polyhedron = polyhedron_from_wire(frame.header["polyhedron"])
            ticket = self.service.submit(
                polyhedron,
                session=conn.session,
                deadline=frame.header.get("deadline_s"),
                tag=str(frame.header.get("tag", "")),
            )
        except Exception as exc:
            await self._send_error(writer, conn, request_id, exc)
            return
        task = asyncio.ensure_future(
            self._stream_outcome(writer, conn, request_id, ticket)
        )
        conn.tasks.add(task)
        task.add_done_callback(conn.tasks.discard)

    async def _stream_outcome(self, writer, conn, request_id: int, ticket) -> None:
        try:
            outcome = await asyncio.to_thread(ticket.result)
        except Exception as exc:
            with contextlib.suppress(ConnectionError):
                await self._send_error(writer, conn, request_id, exc)
            return
        if request_id in conn.cancelled:
            conn.cancelled.discard(request_id)
            with contextlib.suppress(ConnectionError):
                await self._send_error(
                    writer,
                    conn,
                    request_id,
                    None,
                    header={
                        "kind": "cancelled",
                        "type": "Cancelled",
                        "message": "request cancelled by client",
                    },
                )
            return
        rows = outcome.rows
        names = list(rows)
        total = int(rows["_row_id"].shape[0]) if "_row_id" in rows else (
            int(rows[names[0]].shape[0]) if names else 0
        )
        try:
            for start in range(0, total, self.page_rows):
                piece = {n: rows[n][start : start + self.page_rows] for n in names}
                meta, blob = columns_to_blob(piece)
                await self._send(
                    writer,
                    conn,
                    MessageType.PAGE,
                    {"request_id": request_id, "columns": meta},
                    blob,
                )
            header = {
                "request_id": request_id,
                "rows": total,
                "chosen_path": outcome.chosen_path,
                "estimated_selectivity": float(outcome.estimated_selectivity),
                "cache_hit": bool(outcome.cache_hit),
                "fallback": bool(outcome.fallback),
                "partial": bool(outcome.partial),
                "failed_shards": list(outcome.failed_shards),
                "stats": stats_to_wire(outcome.stats),
                "metrics": _json_safe(asdict(outcome.metrics)),
            }
            if total == 0:
                meta, _ = columns_to_blob({n: rows[n][:0] for n in names})
                header["columns"] = meta
            await self._send(writer, conn, MessageType.DONE, header)
        except ConnectionError:
            pass

    async def _send(
        self, writer, conn: _Connection, msg_type, header, blob: bytes = b""
    ) -> None:
        async with conn.write_lock:
            writer.write(encode_frame(msg_type, header, blob))
            await writer.drain()

    async def _send_error(
        self, writer, conn, request_id: int, exc, header: dict | None = None
    ) -> None:
        if header is None:
            header = _service_error_to_wire(exc)
        header["request_id"] = request_id
        await self._send(writer, conn, MessageType.ERROR, header)


async def _serve_async(
    service: QueryService,
    host: str,
    port: int,
    *,
    max_inflight: int = 32,
    ready_callback=None,
) -> None:
    server = QueryServer(service, host=host, port=port, max_inflight=max_inflight)
    await server.start()
    server.install_signal_handlers()
    if ready_callback is not None:
        ready_callback(server)
    await server.serve_until_drained()


def serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_inflight: int = 32,
    ready_callback=None,
) -> None:
    """Run the front door until a SIGTERM/SIGINT drain completes.

    ``ready_callback(server)`` fires once the listener is bound -- the
    CLI uses it to print the resolved address.
    """
    asyncio.run(
        _serve_async(
            service,
            host,
            port,
            max_inflight=max_inflight,
            ready_callback=ready_callback,
        )
    )
