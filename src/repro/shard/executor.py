"""Scatter-gather execution: parallel per-shard planners, one answer.

The executor is the sharded counterpart of a single
:class:`~repro.core.planner.QueryPlanner` and implements the same engine
protocol (``execute(polyhedron, cancel_check)`` plus ``table_name`` /
``dims`` / ``layout_version``), so a :class:`~repro.service.QueryService`
drives it unchanged.  Per query it:

1. routes: the :class:`~repro.shard.router.ShardRouter` classifies every
   shard's box against the polyhedron and prunes OUTSIDE shards with
   zero I/O;
2. scatters: each dispatched shard runs its *own* planner (selectivity
   probe, kd-tree vs. scan choice, fault fallback) on a shared thread
   pool;
3. gathers: per-shard results stream into the merge as they complete --
   row ids are remapped to the global namespace, stats merge with
   distinct page namespaces, and the per-shard access-path choices are
   aggregated.

Deadlines and cancellation propagate into every in-flight shard: the
service's ``cancel_check`` is wrapped in a shared token that every
shard's page/node loops poll, and the first deadline hit (or any
unexpected error) trips the token so sibling shards abandon their scans
instead of running to completion.

Per-shard storage faults degrade, not fail: a shard whose planner dies
on an unrecoverable :class:`~repro.db.errors.StorageFault` (its own
retry budget and scan fallback exhausted) is recorded in
``failed_shards`` and the query completes over the survivors with
``partial=True``.  Only when every dispatched shard dies does the fault
propagate to the caller.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Callable

import numpy as np

from repro.core.batch import BatchMemberResult, BatchResult
from repro.core.planner import PlannedQuery, QueryPlanner
from repro.db.errors import StorageFault
from repro.ingest.delta import DELTA_BASE, SHARD_STRIDE
from repro.ingest.manager import DEFAULT_MERGE_THRESHOLD
from repro.db.scan import (
    BatchScanMember,
    batch_full_scan,
    full_scan,
    membership_predicate,
)
from repro.db.stats import IOStats, QueryStats
from repro.geometry.boxes import BoxRelation
from repro.geometry.halfspace import Polyhedron
from repro.shard.knn import ShardedKnnResult, scatter_gather_knn
from repro.shard.partitioner import Shard, ShardSet
from repro.shard.router import ShardRouter

__all__ = ["ScatterGatherExecutor", "ShardAborted"]


class ShardAborted(Exception):
    """Internal: a sibling shard's failure/deadline tripped the cancel token."""


class _CancelToken:
    """Shared cooperative-cancellation handle for one scatter-gather query.

    ``check`` composes the caller's own check (typically a service
    deadline) with a local abort flag; tripping the flag makes every
    shard still iterating pages/nodes raise :class:`ShardAborted` at its
    next poll, which is how one shard's deadline stops its siblings.
    """

    def __init__(self, inner: Callable[[], None] | None):
        self._inner = inner
        self._aborted = threading.Event()

    def trip(self) -> None:
        self._aborted.set()

    def check(self) -> None:
        if self._aborted.is_set():
            raise ShardAborted("sibling shard aborted the query")
        if self._inner is not None:
            self._inner()


class ScatterGatherExecutor:
    """Parallel per-shard engines behind a planner-shaped facade.

    Parameters
    ----------
    shard_set:
        The partitioned table (see :class:`~repro.shard.KdPartitioner`).
    workers:
        Thread-pool size (default: one thread per shard, capped at 16).
    crossover / sample_pages / seed:
        Planner knobs, as in :class:`~repro.core.planner.QueryPlanner`.
        ``sample_pages`` is the *whole-table* probe budget: each shard's
        planner probes ``sample_pages / num_shards`` pages (at least
        one), so the aggregate sampling rate -- and plan-time I/O --
        matches the unsharded planner instead of multiplying by the
        shard count.  Each planner is seeded with ``seed + shard_id`` so
        probe jitter stays deterministic but uncorrelated across shards.
    use_tight_boxes:
        Router pruning family (see :class:`~repro.shard.ShardRouter`).
    """

    def __new__(
        cls,
        shard_set: ShardSet | None = None,
        *,
        specs=None,
        transport: str = "thread",
        workers: int | None = None,
        crossover: float = 0.25,
        sample_pages: int = 8,
        seed: int = 0,
        use_tight_boxes: bool = True,
        engine: str = "auto",
        **process_opts,
    ):
        # transport="process" swaps the thread pool for one worker
        # process per shard (repro.net); the returned pool speaks the
        # same engine protocol, so callers are transport-agnostic.
        if transport == "process":
            if specs is None:
                raise ValueError(
                    "transport='process' needs picklable shard specs; build "
                    "them with KdPartitioner.plan() and pass specs=..."
                )
            from repro.net.pool import ShardWorkerPool

            return ShardWorkerPool(
                specs,
                crossover=crossover,
                sample_pages=sample_pages,
                seed=seed,
                use_tight_boxes=use_tight_boxes,
                engine=engine,
                **process_opts,
            )
        if transport != "thread":
            raise ValueError(f"unknown transport {transport!r}")
        return super().__new__(cls)

    def __init__(
        self,
        shard_set: ShardSet | None = None,
        *,
        specs=None,
        transport: str = "thread",
        workers: int | None = None,
        crossover: float = 0.25,
        sample_pages: int = 8,
        seed: int = 0,
        use_tight_boxes: bool = True,
        engine: str = "auto",
        **process_opts,
    ):
        if shard_set is None:
            raise ValueError("thread transport needs a built ShardSet")
        if process_opts:
            unknown = ", ".join(sorted(process_opts))
            raise TypeError(f"unexpected arguments for thread transport: {unknown}")
        self.shard_set = shard_set
        self.router = ShardRouter(shard_set, use_tight_boxes=use_tight_boxes)
        shard_probe = max(1, sample_pages // shard_set.num_shards)
        self.planners = {
            shard.shard_id: QueryPlanner(
                shard.index,
                crossover=crossover,
                sample_pages=shard_probe,
                seed=seed + shard.shard_id,
                engine=engine,
            )
            for shard in shard_set
        }
        if workers is None:
            workers = min(max(shard_set.num_shards, 1), 16)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=f"shard-{shard_set.name}"
        )
        self._closed = False
        self._lock = threading.Lock()
        self._counters = {
            "queries": 0,
            "knn_queries": 0,
            "shards_dispatched": 0,
            "shards_pruned": 0,
            "shard_faults": 0,
            "partial_results": 0,
        }
        self._shard_busy = {shard.shard_id: 0.0 for shard in shard_set}
        self._shard_requests = {shard.shard_id: 0 for shard in shard_set}

    # -- engine protocol (mirrors QueryPlanner) -----------------------------

    @property
    def table_name(self) -> str:
        """Logical name of the sharded table (cache fingerprinting)."""
        return self.shard_set.name

    @property
    def dims(self) -> list[str]:
        """Ordered coordinate column names."""
        return list(self.shard_set.dims)

    @property
    def layout_version(self) -> str:
        """Digest of shard boundaries plus per-shard write epochs.

        The boundary digest changes on repartitioning; the appended
        epochs change on every ingest write and shard merge, so result
        caches above can never serve rows from a superseded view.
        """
        epochs = ",".join(
            shard.table.layout_version for shard in self.shard_set
        )
        return f"{self.shard_set.layout_version}|{epochs}"

    @property
    def num_shards(self) -> int:
        """How many shards back this executor."""
        return self.shard_set.num_shards

    @property
    def transport(self) -> str:
        """Execution transport identifier (for reports and replays)."""
        return "thread"

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Shut the shard pool down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "ScatterGatherExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- polyhedron queries -------------------------------------------------

    def execute(
        self,
        polyhedron: Polyhedron,
        cancel_check: Callable[[], None] | None = None,
        memberships: dict[str, np.ndarray] | None = None,
    ) -> PlannedQuery:
        """Route, scatter, and gather one polyhedron query.

        ``memberships`` (column -> IN-list values) is forwarded to every
        dispatched shard; routing stays polyhedron-only -- membership
        filters never widen the dispatched set, they only thin rows
        inside it.
        """
        if cancel_check is not None:
            cancel_check()
        decision = self.router.route_polyhedron(polyhedron)
        token = _CancelToken(cancel_check)
        futures = {
            self._pool.submit(
                self._run_shard, shard, relation, polyhedron, token, memberships
            ): shard
            for shard, relation in decision.dispatched
        }

        stats = QueryStats()
        pieces: list[dict[str, np.ndarray]] = []
        path_counts: dict[str, int] = {}
        failed: list[int] = []
        last_fault: StorageFault | None = None
        pending_error: BaseException | None = None
        fallback = False
        fallback_reason = ""
        weighted_estimate = 0.0
        estimated_rows = 0
        sampled_pages = 0

        # Streaming gather: merge each shard as it completes rather than
        # barriering on the slowest one.
        for future in as_completed(futures):
            shard = futures[future]
            try:
                planned = future.result()
            except StorageFault as exc:
                failed.append(shard.shard_id)
                last_fault = exc
                continue
            except ShardAborted:
                continue
            except BaseException as exc:
                # Deadline or unexpected error: trip the token so
                # in-flight siblings stop scanning, then drain and re-raise.
                if pending_error is None:
                    pending_error = exc
                token.trip()
                continue
            stats.merge(planned.stats)
            pieces.append(self._rebase_rows(shard, planned.rows))
            path_counts[planned.chosen_path] = (
                path_counts.get(planned.chosen_path, 0) + 1
            )
            if planned.fallback:
                fallback = True
                fallback_reason = fallback_reason or planned.fallback_reason
            if np.isfinite(planned.estimated_selectivity):
                weighted_estimate += planned.estimated_selectivity * shard.num_rows
                estimated_rows += shard.num_rows
            sampled_pages += planned.sampled_pages
        if pending_error is not None:
            raise pending_error
        if failed and not pieces and decision.dispatched:
            assert last_fault is not None
            raise last_fault

        rows = self._merge_pieces(pieces)
        estimate = (
            weighted_estimate / self.shard_set.total_rows
            if estimated_rows
            else (0.0 if not decision.dispatched else float("nan"))
        )
        for path, count in path_counts.items():
            stats.extra[f"shard_path_{path}"] = count
        self._note(
            queries=1,
            shards_dispatched=decision.shards_dispatched,
            shards_pruned=decision.shards_pruned,
            shard_faults=len(failed),
            partial_results=1 if failed else 0,
        )
        return PlannedQuery(
            rows=rows,
            stats=stats,
            chosen_path="sharded",
            estimated_selectivity=estimate,
            sampled_pages=sampled_pages,
            fallback=fallback,
            fallback_reason=fallback_reason,
            shards_dispatched=decision.shards_dispatched,
            shards_pruned=decision.shards_pruned,
            shard_faults=len(failed),
            partial=bool(failed),
            failed_shards=tuple(sorted(failed)),
        )

    def execute_batch(
        self,
        polyhedra: list[Polyhedron],
        cancel_checks: list[Callable[[], None] | None] | None = None,
        memberships_list: list[dict | None] | None = None,
    ) -> BatchResult:
        """Route, scatter, and gather a micro-batch in one fan-out.

        Every member is routed once, then each shard receives a single
        task covering *all* the members dispatched to it -- INSIDE
        members share one predicate-free scan pass and PARTIAL members
        go through the shard planner's own
        :meth:`~repro.core.planner.QueryPlanner.execute_batch`, so a
        page hot across the batch is decoded once per shard instead of
        once per (member, shard).

        Member isolation: a member's cancel/deadline error on any shard
        fails that member alone (its gathered pieces are discarded, no
        partial rows leak) and never trips its batch siblings.  A
        per-shard storage fault marks that shard failed *for the members
        it served*; each such member completes partial over its
        surviving shards, exactly like the solo path.
        """
        n = len(polyhedra)
        checks = (
            list(cancel_checks) if cancel_checks is not None else [None] * n
        )
        member_filters = (
            list(memberships_list) if memberships_list is not None else [None] * n
        )
        result = BatchResult(
            members=[BatchMemberResult() for _ in range(n)], occupancy=n
        )
        decisions = [None] * n
        live: list[int] = []
        for m, (polyhedron, check) in enumerate(zip(polyhedra, checks)):
            if check is not None:
                try:
                    check()
                except BaseException as exc:
                    result.members[m].error = exc
                    continue
            decisions[m] = self.router.route_polyhedron(polyhedron)
            live.append(m)

        shard_entries: dict[int, list[tuple[int, BoxRelation]]] = {}
        shards_by_id: dict[int, Shard] = {}
        for m in live:
            for shard, relation in decisions[m].dispatched:
                shard_entries.setdefault(shard.shard_id, []).append((m, relation))
                shards_by_id[shard.shard_id] = shard

        futures = {
            self._pool.submit(
                self._run_shard_batch,
                shards_by_id[shard_id],
                entries,
                polyhedra,
                checks,
                member_filters,
            ): shard_id
            for shard_id, entries in shard_entries.items()
        }

        merged = {
            m: {
                "stats": QueryStats(),
                "pieces": [],
                "path_counts": {},
                "failed": [],
                "last_fault": None,
                "fallback": False,
                "reason": "",
                "weighted": 0.0,
                "est_rows": 0,
                "sampled": 0,
            }
            for m in live
        }
        for future in as_completed(futures):
            shard_id = futures[future]
            shard = shards_by_id[shard_id]
            try:
                outcomes, counters = future.result()
            except StorageFault as exc:
                # The whole shard task died before demultiplexing; every
                # member it served loses this shard.
                for m, _ in shard_entries[shard_id]:
                    merged[m]["failed"].append(shard_id)
                    merged[m]["last_fault"] = exc
                continue
            result.pages_decoded += counters["pages_decoded"]
            result.shared_decode_hits += counters["shared_decode_hits"]
            for m, (kind, payload) in outcomes.items():
                if kind == "error":
                    if isinstance(payload, StorageFault):
                        merged[m]["failed"].append(shard_id)
                        merged[m]["last_fault"] = payload
                    elif result.members[m].error is None:
                        result.members[m].error = payload
                    continue
                planned = payload
                acc = merged[m]
                acc["stats"].merge(planned.stats)
                acc["pieces"].append(self._rebase_rows(shard, planned.rows))
                acc["path_counts"][planned.chosen_path] = (
                    acc["path_counts"].get(planned.chosen_path, 0) + 1
                )
                if planned.fallback:
                    acc["fallback"] = True
                    acc["reason"] = acc["reason"] or planned.fallback_reason
                if np.isfinite(planned.estimated_selectivity):
                    acc["weighted"] += (
                        planned.estimated_selectivity * shard.num_rows
                    )
                    acc["est_rows"] += shard.num_rows
                acc["sampled"] += planned.sampled_pages

        note = {
            "queries": 0,
            "shards_dispatched": 0,
            "shards_pruned": 0,
            "shard_faults": 0,
            "partial_results": 0,
        }
        for m in live:
            acc = merged[m]
            decision = decisions[m]
            note["queries"] += 1
            note["shards_dispatched"] += decision.shards_dispatched
            note["shards_pruned"] += decision.shards_pruned
            note["shard_faults"] += len(acc["failed"])
            if result.members[m].error is not None:
                # Member failed on its own terms (deadline/cancel): its
                # surviving pieces are discarded, nothing leaks.
                continue
            if acc["failed"] and not acc["pieces"] and decision.dispatched:
                result.members[m].error = acc["last_fault"]
                continue
            note["partial_results"] += 1 if acc["failed"] else 0
            rows = self._merge_pieces(acc["pieces"])
            estimate = (
                acc["weighted"] / self.shard_set.total_rows
                if acc["est_rows"]
                else (0.0 if not decision.dispatched else float("nan"))
            )
            stats = acc["stats"]
            for path, count in acc["path_counts"].items():
                stats.extra[f"shard_path_{path}"] = count
            result.members[m].planned = PlannedQuery(
                rows=rows,
                stats=stats,
                chosen_path="sharded",
                estimated_selectivity=estimate,
                sampled_pages=acc["sampled"],
                fallback=acc["fallback"],
                fallback_reason=acc["reason"],
                shards_dispatched=decision.shards_dispatched,
                shards_pruned=decision.shards_pruned,
                shard_faults=len(acc["failed"]),
                partial=bool(acc["failed"]),
                failed_shards=tuple(sorted(acc["failed"])),
            )
        self._note(**note)
        return result

    def _run_shard_batch(
        self,
        shard: Shard,
        entries: list[tuple[int, BoxRelation]],
        polyhedra: list[Polyhedron],
        checks: list[Callable[[], None] | None],
        member_filters: list[dict | None],
    ) -> tuple[dict[int, tuple[str, object]], dict]:
        """One shard's share of a batch: all its members in two passes.

        Returns ``(outcomes, counters)`` where ``outcomes[m]`` is
        ``("ok", PlannedQuery)`` or ``("error", exception)`` and the
        counters carry this shard's shared-decode totals.
        """
        started = time.perf_counter()
        try:
            return self._run_shard_batch_inner(
                shard, entries, polyhedra, checks, member_filters
            )
        finally:
            self._note_shard_time(shard.shard_id, time.perf_counter() - started)

    def _run_shard_batch_inner(
        self,
        shard: Shard,
        entries: list[tuple[int, BoxRelation]],
        polyhedra: list[Polyhedron],
        checks: list[Callable[[], None] | None],
        member_filters: list[dict | None],
    ) -> tuple[dict[int, tuple[str, object]], dict]:
        inside = [m for m, relation in entries if relation is BoxRelation.INSIDE]
        partial = [m for m, relation in entries if relation is not BoxRelation.INSIDE]
        outcomes: dict[int, tuple[str, object]] = {}
        counters = {"pages_decoded": 0, "shared_decode_hits": 0}

        if inside:
            # Figure 4's fully-inside case at shard granularity, batched:
            # one shared pass returns every row to every member, each
            # member keeping only its own membership filter (if any).
            members = [
                BatchScanMember(
                    predicate=(
                        membership_predicate(member_filters[m])
                        if member_filters[m]
                        else None
                    ),
                    cancel_check=checks[m],
                )
                for m in inside
            ]
            try:
                scanned, scan_counters = batch_full_scan(shard.table, members)
            except StorageFault:
                # The shared pass died; retry each member alone so the
                # fault stays per-member.
                for m in inside:
                    try:
                        rows, stats = full_scan(
                            shard.table,
                            predicate=(
                                membership_predicate(member_filters[m])
                                if member_filters[m]
                                else None
                            ),
                            cancel_check=checks[m],
                        )
                    except BaseException as exc:
                        outcomes[m] = ("error", exc)
                        continue
                    outcomes[m] = (
                        "ok",
                        PlannedQuery(
                            rows=rows,
                            stats=stats,
                            chosen_path="inside",
                            estimated_selectivity=1.0,
                            sampled_pages=0,
                        ),
                    )
            else:
                counters["pages_decoded"] += scan_counters["pages_decoded"]
                counters["shared_decode_hits"] += scan_counters["shared_decode_hits"]
                for m, (rows, stats, error) in zip(inside, scanned):
                    if error is not None:
                        outcomes[m] = ("error", error)
                    else:
                        outcomes[m] = (
                            "ok",
                            PlannedQuery(
                                rows=rows,
                                stats=stats,
                                chosen_path="inside",
                                estimated_selectivity=1.0,
                                sampled_pages=0,
                            ),
                        )

        if partial:
            batch = self.planners[shard.shard_id].execute_batch(
                [polyhedra[m] for m in partial],
                [checks[m] for m in partial],
                memberships_list=[member_filters[m] for m in partial],
            )
            counters["pages_decoded"] += batch.pages_decoded
            counters["shared_decode_hits"] += batch.shared_decode_hits
            for m, member in zip(partial, batch.members):
                if member.error is not None:
                    outcomes[m] = ("error", member.error)
                else:
                    outcomes[m] = ("ok", member.planned)
        return outcomes, counters

    def _run_shard(
        self,
        shard: Shard,
        relation: BoxRelation,
        polyhedron: Polyhedron,
        token: _CancelToken,
        memberships: dict[str, np.ndarray] | None = None,
    ) -> PlannedQuery:
        token.check()
        started = time.perf_counter()
        try:
            return self._run_shard_inner(
                shard, relation, polyhedron, token, memberships
            )
        finally:
            self._note_shard_time(shard.shard_id, time.perf_counter() - started)

    def _run_shard_inner(
        self,
        shard: Shard,
        relation: BoxRelation,
        polyhedron: Polyhedron,
        token: _CancelToken,
        memberships: dict[str, np.ndarray] | None = None,
    ) -> PlannedQuery:
        if relation is BoxRelation.INSIDE:
            # Figure 4's fully-inside case at shard granularity: the
            # shard's whole box satisfies every halfspace, so each of its
            # rows qualifies -- no probe, no tree, no per-row tests
            # beyond any membership filter riding on the query.
            predicate = membership_predicate(memberships) if memberships else None
            rows, stats = full_scan(
                shard.table, predicate=predicate, cancel_check=token.check
            )
            return PlannedQuery(
                rows=rows,
                stats=stats,
                chosen_path="inside",
                estimated_selectivity=1.0,
                sampled_pages=0,
            )
        return self.planners[shard.shard_id].execute(
            polyhedron, cancel_check=token.check, memberships=memberships
        )

    def _rebase_rows(
        self, shard: Shard, rows: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Remap a shard's local row ids into the global namespace.

        Main-band ids shift by the shard's row offset; delta-band ids
        (pending inserts surfaced by merge-on-read) move into the
        shard's slice of the global delta namespace instead.
        """
        ids = rows["_row_id"]
        rebased = dict(rows)
        rebased["_row_id"] = np.where(
            ids >= DELTA_BASE,
            ids + shard.shard_id * SHARD_STRIDE,
            ids + shard.row_offset,
        )
        return rebased

    def _merge_pieces(
        self, pieces: list[dict[str, np.ndarray]]
    ) -> dict[str, np.ndarray]:
        template = self.shard_set[0].table
        names = template.column_names + ["_row_id"]
        if not pieces:
            out = {
                n: np.empty(0, dtype=template.dtype_of(n))
                for n in template.column_names
            }
            out["_row_id"] = np.empty(0, dtype=np.int64)
            return out
        return {n: np.concatenate([p[n] for p in pieces]) for n in names}

    # -- the write path -----------------------------------------------------

    def insert_rows(self, data: dict[str, np.ndarray]) -> np.ndarray:
        """Insert rows, routed to shards by partition-box containment.

        Each row lands in the owning shard's delta tier (WAL-first on
        that shard's database); a row outside every partition cell goes
        to the nearest shard.  Returns global delta-band row ids in
        input order.
        """
        dims = self.dims
        points = np.column_stack(
            [np.asarray(data[d], dtype=np.float64) for d in dims]
        )
        n = len(points)
        owner = np.full(n, -1, dtype=np.int64)
        for shard in self.shard_set:
            undecided = owner == -1
            if not undecided.any():
                break
            inside = shard.partition_box.contains_points(points[undecided])
            owner[np.flatnonzero(undecided)[inside]] = shard.shard_id
        for i in np.flatnonzero(owner == -1):
            distances = [
                shard.partition_box.min_distance_to_point(points[i])
                for shard in self.shard_set
            ]
            owner[i] = int(np.argmin(distances))
        out = np.empty(n, dtype=np.int64)
        for shard_id in np.unique(owner):
            shard = self.shard_set[int(shard_id)]
            where = np.flatnonzero(owner == shard_id)
            sub = {c: np.asarray(arr)[where] for c, arr in data.items()}
            local = shard.table.insert_rows(sub)
            out[where] = local + int(shard_id) * SHARD_STRIDE
        return out

    def delete_rows(self, row_ids) -> int:
        """Tombstone rows by global id (main-band or delta-band)."""
        ids = np.atleast_1d(np.asarray(row_ids, dtype=np.int64))
        if len(ids) == 0:
            return 0
        in_delta = ids >= DELTA_BASE
        owner = np.empty(len(ids), dtype=np.int64)
        owner[in_delta] = (ids[in_delta] - DELTA_BASE) // SHARD_STRIDE
        main = ids[~in_delta]
        if len(main) and (
            main.min() < 0 or main.max() >= self.shard_set.total_rows
        ):
            raise IndexError(
                f"delete row ids out of range "
                f"[0, {self.shard_set.total_rows})"
            )
        owner[~in_delta] = self.shard_set.owner_of_rows(main)
        if in_delta.any() and (
            owner[in_delta].min() < 0 or owner[in_delta].max() >= self.num_shards
        ):
            raise IndexError("delta row ids out of range")
        deleted = 0
        for shard_id in np.unique(owner):
            shard = self.shard_set[int(shard_id)]
            where = owner == shard_id
            local = np.where(
                in_delta[where],
                ids[where] - int(shard_id) * SHARD_STRIDE,
                ids[where] - shard.row_offset,
            )
            deleted += shard.table.delete_rows(local)
        return deleted

    def delta_fraction(self) -> float:
        """The largest per-shard delta fraction (repartition trigger)."""
        return max(
            shard.database.ingest.delta_fraction(shard.table.name)
            for shard in self.shard_set
        )

    def merge(self, threshold: float = 0.0) -> list:
        """Merge every shard whose delta fraction crossed ``threshold``.

        Each qualifying shard's delta is drained out-of-place into a new
        local generation (median-split kd rebuild over old + new points
        -- the re-cut of that subtree), the shard's routing geometry is
        refreshed, and the shard set's offsets and layout digest are
        recomputed.  Queries keep flowing throughout: the swap is atomic
        under each shard database's catalog lock.
        """
        reports = []
        for shard in self.shard_set:
            name = shard.table.name
            ingest = shard.database.ingest
            state = ingest.state(name)
            if state is None or state.delta.churn == 0:
                continue
            if ingest.delta_fraction(name) < threshold:
                continue
            reports.append(ingest.merge(name))
            self._refresh_shard(shard)
        if reports:
            self.shard_set.refresh()
        return reports

    def maybe_repartition(
        self, threshold: float = DEFAULT_MERGE_THRESHOLD
    ) -> list:
        """Online repartitioning: re-cut shards whose churn crossed
        ``threshold`` (see :meth:`merge`); returns the merge reports."""
        return self.merge(threshold=threshold)

    def _refresh_shard(self, shard: Shard) -> None:
        """Re-resolve a shard's index and routing geometry post-merge."""
        name = shard.index.table.name
        index = shard.database.index_if_exists(f"{name}.kdtree")
        if index is not None:
            shard.index = index
        shard.num_rows = shard.table.num_rows
        shard.tight_box = shard.index.tree.tight_box(1)

    # -- k-NN ---------------------------------------------------------------

    def knn(
        self,
        point: np.ndarray,
        k: int,
        cancel_check: Callable[[], None] | None = None,
    ) -> ShardedKnnResult:
        """Globally exact top-k via the frontier-merging shard search."""
        token = _CancelToken(cancel_check)
        result = scatter_gather_knn(
            self.router, self._pool, point, k, cancel_check=token.check
        )
        self._note(
            knn_queries=1,
            shards_dispatched=result.shards_dispatched,
            shards_pruned=result.shards_pruned,
            shard_faults=result.shard_faults,
            partial_results=1 if result.partial else 0,
        )
        return result

    # -- observability ------------------------------------------------------

    def gather(self, global_row_ids: np.ndarray) -> dict[str, np.ndarray]:
        """Fetch rows by global id across shards (see :meth:`ShardSet.gather`)."""
        return self.shard_set.gather(global_row_ids)

    def _note(self, **deltas: int) -> None:
        with self._lock:
            for key, delta in deltas.items():
                self._counters[key] += delta

    def _note_shard_time(self, shard_id: int, elapsed: float) -> None:
        with self._lock:
            self._shard_busy[shard_id] += elapsed
            self._shard_requests[shard_id] += 1

    def counters(self) -> dict[str, int]:
        """Cumulative scatter-gather counters since construction."""
        with self._lock:
            return dict(self._counters)

    def worker_stats(self) -> list[dict]:
        """Per-shard utilization snapshots, shaped like the process pool's."""
        with self._lock:
            return [
                {
                    "shard_id": shard.shard_id,
                    "pid": None,
                    "alive": True,
                    "requests": self._shard_requests[shard.shard_id],
                    "busy_s": self._shard_busy[shard.shard_id],
                    "respawns": 0,
                }
                for shard in self.shard_set
            ]

    def io_stats(self) -> IOStats:
        """Aggregate I/O counters across every shard's storage backend."""
        total = IOStats()
        for shard in self.shard_set:
            total.add(**shard.database.io_stats.snapshot().as_dict())
        return total

    def __repr__(self) -> str:
        return (
            f"ScatterGatherExecutor(name={self.shard_set.name!r}, "
            f"shards={self.num_shards}, layout={self.layout_version!r})"
        )
