"""Scatter-gather k-NN: frontier-merged top-k across shard borders.

§3.3's boundary-point argument, applied one level up: a shard can only
contribute a neighbor if its bounding box comes closer to the query
point than the current k-th distance ``m``.  The search therefore

1. orders shards by box lower bound (the home shard -- the one whose
   box contains the point -- has bound zero),
2. runs the nearest shard first to *seed* ``m`` with k local
   candidates (the per-shard search is the paper's exact boundary-point
   algorithm over that shard's own kd-tree),
3. dispatches every remaining shard whose bound beats ``m`` in
   parallel -- ``m`` only shrinks as candidates merge, so any shard
   pruned against the seeded ``m`` is pruned against the final one too,
4. k-way merges the per-shard candidate heaps
   (:func:`repro.core.knn.merge_knn_results`) into the globally correct
   top-k, with shard-local row ids remapped to the global namespace.

Per-shard storage faults degrade the answer instead of failing it: the
dead shard is recorded in ``failed_shards`` and the merge proceeds over
the survivors with ``partial=True``.  Only when *every* examined shard
dies does the fault propagate.
"""

from __future__ import annotations

from concurrent.futures import Executor, as_completed
from dataclasses import dataclass, field

import numpy as np

from repro.core.knn import KnnResult, knn_boundary_points, merge_knn_results
from repro.db.errors import StorageFault
from repro.db.stats import QueryStats
from repro.shard.partitioner import Shard
from repro.shard.router import ShardRouter

__all__ = ["ShardedKnnResult", "scatter_gather_knn"]


@dataclass
class ShardedKnnResult:
    """A globally merged k-NN answer plus the scatter-gather accounting."""

    row_ids: np.ndarray
    distances: np.ndarray
    stats: QueryStats = field(default_factory=QueryStats)
    shards_dispatched: int = 0
    shards_pruned: int = 0
    shard_faults: int = 0
    failed_shards: tuple = ()
    #: At least one shard died; the top-k covers only the survivors.
    partial: bool = False

    @property
    def k(self) -> int:
        """Number of neighbors actually found."""
        return len(self.row_ids)


def _shard_knn(shard: Shard, point: np.ndarray, k: int, cancel_check) -> KnnResult:
    """Exact boundary-point k-NN inside one shard, ids remapped to global."""
    from repro.ingest.delta import DELTA_BASE, SHARD_STRIDE

    local = knn_boundary_points(shard.index, point, k, cancel_check=cancel_check)
    ids = local.row_ids
    # Main-band ids shift by the shard's global row offset; delta-band
    # ids move into the shard's slice of the delta namespace instead.
    rebased = np.where(
        ids >= DELTA_BASE,
        ids + shard.shard_id * SHARD_STRIDE,
        ids + shard.row_offset,
    )
    return KnnResult(
        row_ids=rebased,
        distances=local.distances,
        stats=local.stats,
    )


def _kth_distance(result: KnnResult | None, k: int) -> float:
    if result is None or len(result.distances) < k:
        return float("inf")
    return float(result.distances[k - 1])


def scatter_gather_knn(
    router: ShardRouter,
    pool: Executor,
    point: np.ndarray,
    k: int,
    cancel_check=None,
) -> ShardedKnnResult:
    """Globally exact top-k across every shard of ``router``'s shard set."""
    if k < 1:
        raise ValueError("k must be >= 1")
    point = np.asarray(point, dtype=np.float64)
    ordered = router.order_by_distance(point)
    results: list[KnnResult] = []
    failed: list[int] = []
    last_fault: StorageFault | None = None
    dispatched = 0

    # Seed m from the nearest shard(s); walk past dead ones so a faulty
    # home shard still leaves a usable bound.
    position = 0
    seed: KnnResult | None = None
    while position < len(ordered) and seed is None:
        _, shard = ordered[position]
        position += 1
        dispatched += 1
        try:
            seed = _shard_knn(shard, point, k, cancel_check)
        except StorageFault as exc:
            failed.append(shard.shard_id)
            last_fault = exc
    if seed is not None:
        results.append(seed)
    m = _kth_distance(seed, k)

    # Frontier wave: only shards whose lower bound beats the seeded m.
    # m never grows as more candidates merge, so this prune is final.
    wave = [shard for bound, shard in ordered[position:] if bound < m]
    pruned = len(ordered) - position - len(wave)
    dispatched += len(wave)
    futures = {
        pool.submit(_shard_knn, shard, point, k, cancel_check): shard
        for shard in wave
    }
    pending_error: BaseException | None = None
    for future in as_completed(futures):
        shard = futures[future]
        try:
            results.append(future.result())
        except StorageFault as exc:
            failed.append(shard.shard_id)
            last_fault = exc
        except BaseException as exc:  # deadline/cancellation: collect, re-raise
            pending_error = pending_error or exc
    if pending_error is not None:
        raise pending_error
    if not results and last_fault is not None:
        raise last_fault

    merged = merge_knn_results(results, k) if results else KnnResult(
        np.empty(0, dtype=np.int64), np.empty(0)
    )
    return ShardedKnnResult(
        row_ids=merged.row_ids,
        distances=merged.distances,
        stats=merged.stats,
        shards_dispatched=dispatched,
        shards_pruned=pruned,
        shard_faults=len(failed),
        failed_shards=tuple(sorted(failed)),
        partial=bool(failed),
    )
