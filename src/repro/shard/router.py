"""Shard routing: Figure 4's box classification lifted to shard granularity.

Berriman et al.'s survey-scale lesson is that the big win at scale comes
from pruning whole partitions before touching a page.  The router does
exactly that: every shard carries the bounding box of its kd-subtree, so
classifying N boxes against the query polyhedron (N = shard count, a
handful of O(d·m) tests) decides which shards can possibly contribute --
an OUTSIDE shard is pruned without consulting its planner, buffer pool,
or storage.

Two box families are available, mirroring the kd-tree's own choice: the
*partition* boxes tile space exactly (and drive the k-NN distance
bounds), while the *tight* boxes hug the actual rows and prune harder on
clustered data.  Both are sound: every row of a shard lies inside both
of its boxes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.boxes import Box, BoxRelation
from repro.geometry.halfspace import Polyhedron
from repro.shard.partitioner import Shard, ShardSet

__all__ = ["RoutingDecision", "ShardRouter"]


@dataclass
class RoutingDecision:
    """Which shards a query must visit, and which it provably need not."""

    dispatched: list[tuple[Shard, BoxRelation]] = field(default_factory=list)
    pruned: list[Shard] = field(default_factory=list)

    @property
    def shards_dispatched(self) -> int:
        """Shards the query will actually run on."""
        return len(self.dispatched)

    @property
    def shards_pruned(self) -> int:
        """Shards rejected by box classification alone (zero I/O)."""
        return len(self.pruned)


class ShardRouter:
    """Classifies shard boxes against queries and picks the targets.

    ``use_tight_boxes`` selects the pruning family: tight boxes (the
    default) reject more shards on clustered data; partition boxes
    reproduce the pure space-tiling behavior of the paper's Figure 4.
    """

    def __init__(self, shard_set: ShardSet, use_tight_boxes: bool = True):
        self.shard_set = shard_set
        self.use_tight_boxes = use_tight_boxes

    def box_of(self, shard: Shard) -> Box:
        """The pruning box of a shard under the configured family.

        Merge-on-read: a shard with pending delta inserts stretches its
        pruning box to cover them.  Delta rows are routed into the shard
        by partition-box containment but may fall outside the *tight*
        box of the main rows (built before they arrived); without the
        stretch, a query touching only delta rows could wrongly prune
        the shard.  The stretch also keeps the INSIDE shortcut sound:
        INSIDE now proves every delta row inside the polyhedron too.
        """
        box = shard.tight_box if self.use_tight_boxes else shard.partition_box
        snapshot = shard.table.delta_snapshot()
        if snapshot is not None and snapshot.num_rows:
            delta_box = snapshot.bounding_box(tuple(self.shard_set.dims))
            if delta_box is not None:
                box = box.union_bounds(delta_box)
        return box

    def route_polyhedron(self, polyhedron: Polyhedron) -> RoutingDecision:
        """Split the shard set into dispatched and pruned for one query.

        INSIDE and PARTIAL shards are dispatched (their own planners
        resolve the residual work); OUTSIDE shards are pruned.  The
        relation is forwarded so an executor could, e.g., skip the
        selectivity probe on an INSIDE shard.
        """
        decision = RoutingDecision()
        for shard in self.shard_set:
            if shard.num_rows == 0 and not shard.table.has_live_delta():
                decision.pruned.append(shard)
                continue
            relation = polyhedron.classify_box(self.box_of(shard))
            if relation is BoxRelation.OUTSIDE:
                decision.pruned.append(shard)
            else:
                decision.dispatched.append((shard, relation))
        return decision

    def order_by_distance(self, point) -> list[tuple[float, Shard]]:
        """Shards with lower-bound distances to ``point``, ascending.

        The bound is the box's min-distance -- zero for the shard(s)
        whose box contains the point -- and is the frontier key of the
        scatter-gather k-NN: a shard whose bound is not below the
        current k-th distance can be pruned outright (§3.3's boundary
        logic applied across shard borders).
        """
        ordered = [
            (self.box_of(shard).min_distance_to_point(point), shard)
            for shard in self.shard_set
            if shard.num_rows > 0 or shard.table.has_live_delta()
        ]
        ordered.sort(key=lambda pair: (pair[0], pair[1].shard_id))
        return ordered
