"""Kd-subtree partitioning: one table cut into spatially coherent shards.

The paper's post-order numbering (§3.2) makes every kd-subtree's leaves
a contiguous id range -- which is a *partitioning function*: cutting the
tree at depth ``log2(N)`` splits the table into N disjoint, spatially
coherent shards, each retrievable with one ``BETWEEN`` over the
post-order ids.  :class:`KdPartitioner` materializes exactly that: it
builds a shallow *router tree* (the top levels of the paper's kd-tree)
over the coordinates, and turns each router leaf into a :class:`Shard`
with its own :class:`~repro.db.catalog.Database` (hence its own
:class:`~repro.db.buffer_pool.BufferPool` and storage backend) and a
locally built :class:`~repro.core.kdtree.KdTreeIndex` over just that
shard's rows.

Because every shard is a kd-subtree, the router leaf's *partition box*
tiles space with its siblings and bounds every row the shard holds --
the property the :class:`~repro.shard.router.ShardRouter` exploits to
prune whole shards against a query polyhedron before a single page is
touched (the Figure 4 inside/partial/outside logic lifted to shard
granularity).

Global row ids: shard-local ``_row_id``s are offset by the shard's
cumulative start (:attr:`Shard.row_offset`), so a scatter-gather merge
hands back globally unique, stable ids; :meth:`ShardSet.gather` routes
them back to the owning shard.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.bitmap.index import DEFAULT_BITMAP_BINS, BitmapIndex
from repro.core.index_base import stack_coordinates
from repro.core.kdtree import KdTree, KdTreeIndex, default_num_levels
from repro.db.catalog import Database, DatabaseOptions
from repro.db.errors import StorageFault
from repro.db.table import DEFAULT_ROWS_PER_PAGE, Table
from repro.geometry.boxes import Box

__all__ = [
    "KdPartitioner",
    "Shard",
    "ShardSet",
    "ShardSpec",
    "attach_prebuilt_index",
    "build_shard",
    "shard_layout_version",
]


def shard_layout_version(name: str, dims: list[str], shard_sizes: list[int]) -> str:
    """Digest of a shard layout (count, sizes, base name, dims).

    Shared by :class:`ShardSet` and the process-transport worker pool so
    the same partitioning plan yields the same cache-fingerprint version
    regardless of which transport executes it.
    """
    digest = hashlib.sha1()
    digest.update(f"{name}|{','.join(dims)}|{len(shard_sizes)}".encode())
    digest.update(np.array(shard_sizes, dtype=np.int64).tobytes())
    return f"kd{len(shard_sizes)}:{digest.hexdigest()[:12]}"


@dataclass
class ShardSpec:
    """A picklable recipe for one shard: data, geometry, and open options.

    Everything a worker -- a thread in this process or a forked/spawned
    *worker process* -- needs to build the shard's private
    :class:`~repro.db.catalog.Database` and kd-tree from scratch:
    the shard's column arrays, its kd geometry (partition and tight
    boxes, post-order range), its global row offset, and the database
    open options (including, for fault drills, the parent's seeded
    :class:`~repro.db.faults.FaultInjector`, which pickles with its RNG
    state so the worker reproduces the configured fault sequence).
    """

    shard_id: int
    #: The shard's table name (``<base_name>__shard<j>``).
    name: str
    base_name: str
    dims: list[str]
    columns: dict[str, np.ndarray]
    num_levels: int
    axis_policy: str
    rows_per_page: int
    row_offset: int
    num_rows: int
    post_order_range: tuple[int, int]
    partition_box: Box
    tight_box: Box
    options: DatabaseOptions = field(default_factory=DatabaseOptions)
    #: Bins per column of the shard's bitmap index; 0 disables it.
    bitmap_bins: int = DEFAULT_BITMAP_BINS
    #: Columns the shard's bitmap index covers (``None`` = all dims).
    #: A tuned replica ships a subset here; the index still answers
    #: queries phrased over the full ``dims`` space.
    bitmap_dims: tuple[str, ...] | None = None
    #: Prebuilt index shipment (see :func:`attach_prebuilt_index`): the
    #: parent builds the shard tree once and ships its clustering column
    #: and encoded node pages, so the worker installs page blobs instead
    #: of re-running the median-split build.  ``None`` -> the worker
    #: builds from scratch.
    kd_leaf: np.ndarray | None = None
    index_pages: list[bytes] | None = None
    index_layout: dict | None = None

    def column_dtypes(self) -> dict[str, np.dtype]:
        """Result-schema dtypes (what a gather/merge must produce)."""
        return {name: arr.dtype for name, arr in self.columns.items()}


def attach_prebuilt_index(spec: ShardSpec) -> ShardSpec:
    """Build the shard's kd-tree in the parent and ship it as page blobs.

    Fills the spec's ``kd_leaf`` (the clustering column that reproduces
    the tree's row order byte-for-byte on the worker -- the stable
    cluster sort puts rows in left-to-right leaf order with original
    ascending order inside each leaf, exactly the build permutation),
    ``index_pages`` (encoded ``RPGZ`` node pages), and ``index_layout``.
    A worker then installs the blobs instead of re-running the
    median-split build, so spawn/respawn cost stops scaling with index
    depth.  Must be re-run (or the fields cleared) whenever the spec's
    columns or tree geometry change -- stale blobs would describe a
    different tree.
    """
    from repro.core.kdpaged import PagedTreeLayout, tree_node_pages
    from repro.db.pages import PageCodec

    points = stack_coordinates(spec.columns, list(spec.dims))
    tree = KdTree(
        points, num_levels=spec.num_levels, axis_policy=spec.axis_policy
    )
    leaf_ids = np.empty(tree.num_points, dtype=np.int64)
    leaf_post = tree.leaf_post_order_ids()
    for j, leaf in enumerate(range(tree.first_leaf, 2 * tree.first_leaf)):
        start, end = tree.node_rows(leaf)
        leaf_ids[tree.permutation[start:end]] = leaf_post[j]
    spec.kd_leaf = leaf_ids
    spec.index_pages = [PageCodec.encode(p) for p in tree_node_pages(tree)]
    spec.index_layout = PagedTreeLayout.for_tree(tree).to_dict()
    return spec


def _install_prebuilt_index(shard_db: Database, spec: ShardSpec) -> KdTreeIndex:
    """Worker-side install of a parent-built index (see :func:`attach_prebuilt_index`).

    Creates the clustered table from the shipped ``kd_leaf`` column and
    writes the node-page blobs under the index namespace.  A storage
    fault during the page install degrades to rebuilding the in-memory
    tree locally (the table is already clustered identically, so the
    rebuilt tree's row ranges address it unchanged).
    """
    from repro.core.kdpaged import PagedKdTree, PagedTreeLayout
    from repro.db.pages import PageCodec
    from repro.db.storage import index_namespace

    table_data = dict(spec.columns)
    table_data["kd_leaf"] = spec.kd_leaf
    table = shard_db.create_table(
        spec.name,
        table_data,
        rows_per_page=spec.rows_per_page,
        clustered_by=("kd_leaf",),
    )
    namespace = index_namespace(table.physical_name)
    try:
        for blob in spec.index_pages:
            shard_db.storage.write_page(namespace, PageCodec.decode(blob))
    except StorageFault:
        shard_db.buffer_pool.invalidate(namespace)
        try:
            shard_db.storage.drop_namespace(namespace)
        except Exception:
            pass
        points = stack_coordinates(spec.columns, list(spec.dims))
        tree = KdTree(
            points, num_levels=spec.num_levels, axis_policy=spec.axis_policy
        )
    else:
        tree = PagedKdTree(
            shard_db, table.physical_name, PagedTreeLayout.from_dict(spec.index_layout)
        )
    index = KdTreeIndex(shard_db, table, tree, list(spec.dims))
    shard_db.register_index(f"{spec.name}.kdtree", index)
    return index


def build_shard(
    spec: ShardSpec, database_factory: Callable[[int], Database] | None = None
) -> Shard:
    """Materialize one shard -- database, table, kd-tree -- from its spec.

    This is the worker-side half of partitioning: the parent computes
    specs once (:meth:`KdPartitioner.plan`) and each worker, wherever it
    runs, builds its own engine stack from the spec alone.  Specs
    carrying a prebuilt index (:func:`attach_prebuilt_index`) install
    its page blobs instead of rebuilding the tree.
    """
    if database_factory is not None:
        shard_db = database_factory(spec.shard_id)
    else:
        shard_db = spec.options.open()
    if (
        spec.index_pages is not None
        and spec.index_layout is not None
        and spec.kd_leaf is not None
    ):
        index = _install_prebuilt_index(shard_db, spec)
    else:
        index = KdTreeIndex.build(
            shard_db,
            spec.name,
            spec.columns,
            list(spec.dims),
            num_levels=spec.num_levels,
            axis_policy=spec.axis_policy,
            rows_per_page=spec.rows_per_page,
        )
    if spec.bitmap_bins:
        bitmap_dims = (
            list(spec.bitmap_dims)
            if spec.bitmap_dims is not None
            else list(spec.dims)
        )
        try:
            BitmapIndex.build(
                shard_db,
                spec.name,
                bitmap_dims,
                num_bins=spec.bitmap_bins,
                table_dims=list(spec.dims),
            )
        except StorageFault:
            # A faulty backend that kills the build just leaves the shard
            # without a bitmap index; its planner keeps the kd/scan paths.
            pass
    return Shard(
        shard_id=spec.shard_id,
        database=shard_db,
        index=index,
        partition_box=spec.partition_box,
        tight_box=spec.tight_box,
        row_offset=spec.row_offset,
        num_rows=spec.num_rows,
        post_order_range=spec.post_order_range,
    )


@dataclass
class Shard:
    """One kd-subtree's worth of rows with its own engine stack."""

    shard_id: int
    database: Database
    index: KdTreeIndex
    #: The router leaf's space-tiling cell (bounds every row in the shard).
    partition_box: Box
    #: Bounding box of the shard's actual rows (tighter pruning).
    tight_box: Box
    #: Global row id of this shard's first row.
    row_offset: int
    num_rows: int
    #: Inclusive post-order id range of the router subtree (the BETWEEN).
    post_order_range: tuple[int, int]

    @property
    def table(self) -> Table:
        """The shard's locally clustered data table."""
        return self.index.table


class ShardSet:
    """The output of partitioning: ordered shards plus the layout identity.

    ``layout_version`` digests the shard boundaries (count, sizes, base
    name, dims); any repartitioning -- a different shard count or a
    rebuild over different data -- yields a different version, which the
    result cache folds into its fingerprints.
    """

    def __init__(self, name: str, dims: list[str], shards: list[Shard], root_box: Box):
        if not shards:
            raise ValueError("a shard set needs at least one shard")
        self.name = name
        self.dims = list(dims)
        self.shards = list(shards)
        self.root_box = root_box
        self._offsets = np.array([s.row_offset for s in shards], dtype=np.int64)
        self.layout_version = shard_layout_version(
            name, self.dims, [s.num_rows for s in shards]
        )

    def refresh(self) -> str:
        """Recompute offsets and the layout digest after shard merges.

        A shard-local merge changes that shard's row count (tombstones
        dropped, delta folded in), which shifts every later shard's
        global id range and therefore the layout identity.  Called by
        the executor after it merges/repartitions shards; returns the
        new ``layout_version``.
        """
        offset = 0
        for shard in self.shards:
            shard.row_offset = offset
            offset += shard.num_rows
        self._offsets = np.array([s.row_offset for s in self.shards], dtype=np.int64)
        self.layout_version = shard_layout_version(
            self.name, self.dims, [s.num_rows for s in self.shards]
        )
        return self.layout_version

    def owner_of_rows(self, global_row_ids: np.ndarray) -> np.ndarray:
        """Shard id owning each *main-band* global row id."""
        return (
            np.searchsorted(self._offsets, global_row_ids, side="right") - 1
        ).astype(np.int64)

    @property
    def num_shards(self) -> int:
        """How many shards the table was cut into."""
        return len(self.shards)

    @property
    def total_rows(self) -> int:
        """Rows across all shards (the original table's row count)."""
        return int(sum(s.num_rows for s in self.shards))

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def __getitem__(self, shard_id: int) -> Shard:
        return self.shards[shard_id]

    def shard_of_row(self, global_row_id: int) -> Shard:
        """The shard owning a global row id."""
        if not (0 <= global_row_id < self.total_rows):
            raise IndexError(
                f"row {global_row_id} out of range [0, {self.total_rows})"
            )
        pos = int(np.searchsorted(self._offsets, global_row_id, side="right")) - 1
        return self.shards[pos]

    def gather(self, global_row_ids: np.ndarray) -> dict[str, np.ndarray]:
        """Fetch arbitrary rows by global id, in the given order.

        Ids are grouped by owning shard, fetched through each shard's
        buffer pool, and reassembled in input order with the ``_row_id``
        column remapped back to the global namespace.
        """
        global_row_ids = np.asarray(global_row_ids, dtype=np.int64)
        columns = self.shards[0].table.column_names
        if global_row_ids.size == 0:
            out = {
                n: np.empty(0, dtype=self.shards[0].table.dtype_of(n))
                for n in columns
            }
            out["_row_id"] = np.empty(0, dtype=np.int64)
            return out
        from repro.ingest.delta import DELTA_BASE, SHARD_STRIDE

        in_delta = global_row_ids >= DELTA_BASE
        main_ids = global_row_ids[~in_delta]
        if len(main_ids) and (
            main_ids.min() < 0 or main_ids.max() >= self.total_rows
        ):
            raise IndexError("row ids out of range")
        owners = np.empty(len(global_row_ids), dtype=np.int64)
        owners[~in_delta] = (
            np.searchsorted(self._offsets, main_ids, side="right") - 1
        )
        owners[in_delta] = (global_row_ids[in_delta] - DELTA_BASE) // SHARD_STRIDE
        if in_delta.any() and (
            owners[in_delta].min() < 0 or owners[in_delta].max() >= len(self.shards)
        ):
            raise IndexError("delta row ids out of range")
        out: dict[str, np.ndarray] = {}
        for shard_id in np.unique(owners):
            shard = self.shards[int(shard_id)]
            where = np.flatnonzero(owners == shard_id)
            ids = global_row_ids[where]
            delta_here = ids >= DELTA_BASE
            pieces: dict[str, np.ndarray] = {}
            if (~delta_here).any():
                local = shard.table.gather(
                    ids[~delta_here] - shard.row_offset
                )
                for name in columns:
                    pieces[name] = local[name]
            if delta_here.any():
                snapshot = shard.table.delta_snapshot()
                local_delta = ids[delta_here] - int(shard_id) * SHARD_STRIDE
                if snapshot is None:
                    raise IndexError("delta row ids reference no pending delta")
                pos = np.searchsorted(snapshot.row_ids, local_delta)
                if (
                    pos.max(initial=-1) >= len(snapshot.row_ids)
                    or not np.array_equal(snapshot.row_ids[pos], local_delta)
                ):
                    raise IndexError("delta row ids not found (merged or deleted)")
                for name in columns:
                    arr = snapshot.columns[name][pos]
                    if name in pieces:
                        pieces[name] = np.concatenate([pieces[name], arr])
                    else:
                        pieces[name] = arr
            # Reassemble in input order: main rows first, then delta rows,
            # matching the concatenation order above.
            order = np.concatenate(
                [np.flatnonzero(~delta_here), np.flatnonzero(delta_here)]
            )
            for name, arr in pieces.items():
                if name not in out:
                    out[name] = np.empty(len(global_row_ids), dtype=arr.dtype)
                out[name][where[order]] = arr
        out["_row_id"] = global_row_ids.copy()
        return out


class KdPartitioner:
    """Cuts a table into ``num_shards`` kd-subtree shards.

    Parameters
    ----------
    num_shards:
        Must be a power of two: shards are the leaves of a perfect
        binary router tree of depth ``log2(num_shards)``.
    axis_policy:
        Split-axis rule of the router tree and every per-shard tree
        (``"widest"`` or ``"cycle"``, as in :class:`~repro.core.kdtree.KdTree`).
    buffer_pages:
        Buffer-pool capacity of each shard's private database (``None``
        for unbounded); ignored when ``database_factory`` is given.
    database_factory:
        ``factory(shard_id) -> Database`` for custom per-shard backends
        -- the fault tests wrap individual shards in
        :class:`~repro.db.faults.FaultyStorage` through this hook.
    shard_levels:
        Per-shard kd-tree depth.  ``None`` (the default) sizes each
        shard tree as the *continuation of one global tree*: the paper's
        √N rule applied to the whole table, minus the router levels.
        The union of shard leaves then reproduces the unsharded index's
        leaf geometry exactly -- same leaf count, same leaf size -- so
        sharding changes where the work runs, not how much leaf-level
        work there is.  (Applying √N to each shard's own row count would
        yield √num_shards times more, smaller leaves and a corresponding
        per-query overhead.)
    index_cache_bytes:
        Decoded node-cache byte budget of each shard's paged kd-tree
        (``None`` keeps the database default); ignored when explicit
        ``options`` are passed to :meth:`plan`.
    """

    def __init__(
        self,
        num_shards: int,
        *,
        axis_policy: str = "widest",
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
        buffer_pages: int | None = None,
        database_factory: Callable[[int], Database] | None = None,
        shard_levels: int | None = None,
        index_cache_bytes: int | None = None,
    ):
        if num_shards < 1 or (num_shards & (num_shards - 1)) != 0:
            raise ValueError(
                f"num_shards must be a power of two (got {num_shards}): "
                "shards are the leaves of a perfect kd router tree"
            )
        self.num_shards = num_shards
        self.axis_policy = axis_policy
        self.rows_per_page = rows_per_page
        self.buffer_pages = buffer_pages
        self.database_factory = database_factory
        self.shard_levels = shard_levels
        self.index_cache_bytes = index_cache_bytes

    def plan(
        self,
        name: str,
        data: dict[str, np.ndarray],
        dims: list[str],
        *,
        options: DatabaseOptions | None = None,
        shard_options: dict[int, DatabaseOptions] | None = None,
        prebuild_index: bool = True,
        bitmap_bins: int = DEFAULT_BITMAP_BINS,
        bitmap_dims: tuple[str, ...] | None = None,
    ) -> list[ShardSpec]:
        """Compute the partitioning plan without building any database.

        Returns one picklable :class:`ShardSpec` per shard, ordered
        left-to-right in router-leaf order (ascending post-order range).
        ``options`` is the database configuration every shard opens with
        (default: in-memory with this partitioner's ``buffer_pages``);
        ``shard_options`` overrides it per shard id (how fault drills
        give one worker a seeded injector).  The specs feed either
        :func:`build_shard` (thread transport, this process) or a
        :class:`~repro.net.pool.ShardWorkerPool` (process transport).

        With ``prebuild_index`` on (the default) each spec also carries
        the shard's kd-tree as compressed page blobs
        (:func:`attach_prebuilt_index`), so workers -- and every later
        respawn of a dead worker -- skip the median-split build.
        """
        points = stack_coordinates(data, list(dims))
        if len(points) < self.num_shards:
            raise ValueError(
                f"{self.num_shards} shards need >= {self.num_shards} rows "
                f"(got {len(points)})"
            )
        if options is None:
            if self.index_cache_bytes is not None:
                options = DatabaseOptions(
                    buffer_pages=self.buffer_pages,
                    index_cache_bytes=self.index_cache_bytes,
                )
            else:
                options = DatabaseOptions(buffer_pages=self.buffer_pages)
        depth = self.num_shards.bit_length() - 1
        router_tree = KdTree(
            points, num_levels=depth + 1, axis_policy=self.axis_policy
        )
        shard_levels = self.shard_levels
        if shard_levels is None:
            shard_levels = max(1, default_num_levels(len(points)) - depth)
        arrays = {c: np.asarray(arr) for c, arr in data.items()}
        specs: list[ShardSpec] = []
        offset = 0
        for j, leaf in enumerate(
            range(router_tree.first_leaf, 2 * router_tree.first_leaf)
        ):
            start, end = router_tree.node_rows(leaf)
            rows = router_tree.permutation[start:end]
            specs.append(
                ShardSpec(
                    shard_id=j,
                    name=f"{name}__shard{j}",
                    base_name=name,
                    dims=list(dims),
                    columns={c: arr[rows] for c, arr in arrays.items()},
                    num_levels=min(
                        shard_levels, max(1, int(len(rows)).bit_length())
                    ),
                    axis_policy=self.axis_policy,
                    rows_per_page=self.rows_per_page,
                    row_offset=offset,
                    num_rows=len(rows),
                    post_order_range=router_tree.post_order_range(leaf),
                    partition_box=router_tree.partition_box(leaf),
                    tight_box=router_tree.tight_box(leaf),
                    options=(shard_options or {}).get(j, options),
                    bitmap_bins=bitmap_bins,
                    bitmap_dims=bitmap_dims,
                )
            )
            offset += len(rows)
        if prebuild_index:
            for spec in specs:
                attach_prebuilt_index(spec)
        return specs

    def partition(
        self, name: str, data: dict[str, np.ndarray], dims: list[str]
    ) -> ShardSet:
        """Cut ``data`` into shards and build every per-shard index.

        Shard ``j``'s table is named ``<name>__shard<j>`` inside its own
        database; shards are ordered left-to-right in router-leaf order,
        i.e. by ascending post-order id range.
        """
        specs = self.plan(name, data, dims)
        shards = [build_shard(spec, self.database_factory) for spec in specs]
        root_lo = np.min(np.stack([s.partition_box.lo for s in specs]), axis=0)
        root_hi = np.max(np.stack([s.partition_box.hi for s in specs]), axis=0)
        return ShardSet(name, list(dims), shards, Box(root_lo, root_hi))
