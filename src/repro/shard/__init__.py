"""Sharded scatter-gather execution over kd-subtree partitions.

The paper's post-order kd-tree numbering (§3.2) makes every subtree a
contiguous id range, which this package exploits as a partitioning
function: :class:`KdPartitioner` cuts a table into N spatially coherent
shards (each with its own database, buffer pool, and locally built
kd-tree index), :class:`ShardRouter` prunes whole shards against a query
polyhedron with Figure 4's box classification, and
:class:`ScatterGatherExecutor` runs the surviving shards' planners in
parallel and merges their answers -- including a frontier-merged, exact
k-NN across shard borders (§3.3 one level up).
"""

from repro.shard.executor import ScatterGatherExecutor, ShardAborted
from repro.shard.knn import ShardedKnnResult, scatter_gather_knn
from repro.shard.partitioner import (
    KdPartitioner,
    Shard,
    ShardSet,
    ShardSpec,
    build_shard,
)
from repro.shard.router import RoutingDecision, ShardRouter

__all__ = [
    "KdPartitioner",
    "RoutingDecision",
    "ScatterGatherExecutor",
    "Shard",
    "ShardAborted",
    "ShardRouter",
    "ShardSet",
    "ShardSpec",
    "ShardedKnnResult",
    "build_shard",
    "scatter_gather_knn",
]
