"""Bitmap-driven query executors: solo, batched, and hybrid.

The execution shape mirrors the scan/kd executors exactly -- same
``(rows, QueryStats)`` contract solo, same ``(results, counters)``
contract batched -- so the planner can treat the bitmap engine as a
drop-in third path:

1. AND/OR the per-bin compressed bitmaps into a candidate row superset
   (zero pages touched -- the whole point);
2. map surviving rows to page ids, zone-prune, and pull the survivors
   through the existing coalesced read-ahead;
3. decode each candidate page once, apply the **full residual**
   (polyhedron + memberships + tombstones) to the candidate rows only;
4. merge-on-read the delta tier, which the bitmap (built at the last
   merge) does not cover.

Hybrid execution (bitmap prefilter -> kd residual) intersects the
candidate rows with the kd traversal's INSIDE/PARTIAL clustered row
ranges: the kd-tree prunes where the *joint* geometry is selective, the
bitmaps prune where *per-axis* predicates are, and the intersection
inherits both.  Correct because candidate sets and kd ranges are each
conservative supersets of the answer's main-tier rows.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.bitmap.index import BitmapIndex
from repro.db.scan import (
    SCAN_RETRY,
    _alive_mask,
    _coalesced_runs,
    _read_page_retrying,
)
from repro.db.stats import QueryStats
from repro.geometry.boxes import BoxRelation
from repro.geometry.halfspace import Polyhedron

__all__ = ["bitmap_query", "batch_bitmap_query", "hybrid_query", "batch_hybrid_query"]


def _membership_row_mask(
    columns: dict[str, np.ndarray],
    memberships: dict[str, np.ndarray],
    take: np.ndarray | None = None,
) -> np.ndarray | None:
    """AND of IN-list masks over (optionally row-sliced) column arrays."""
    mask: np.ndarray | None = None
    for col, values in memberships.items():
        arr = columns[col]
        if take is not None:
            arr = arr[take]
        piece = np.isin(arr, values)
        mask = piece if mask is None else mask & piece
    return mask


def _restrict_to_ranges(
    candidates: np.ndarray, ranges: Sequence[tuple[int, int]]
) -> np.ndarray:
    """Keep candidate rows falling in any ``[start, end)`` clustered range."""
    if not ranges:
        return candidates[:0]
    pieces = []
    for start, end in sorted(ranges):
        lo = np.searchsorted(candidates, start, side="left")
        hi = np.searchsorted(candidates, end, side="left")
        if hi > lo:
            pieces.append(candidates[lo:hi])
    if not pieces:
        return candidates[:0]
    return np.unique(np.concatenate(pieces))


def _delta_piece(snapshot, polyhedron, dims, memberships, stats):
    """Delta-tier rows matching polyhedron + memberships (merge-on-read)."""
    if snapshot is None or not snapshot.num_rows:
        return None
    stats.rows_examined += snapshot.num_rows
    cols, row_ids = snapshot.match(polyhedron, dims=tuple(dims))
    if memberships and len(row_ids):
        mask = _membership_row_mask(cols, memberships)
        if mask is not None:
            cols = {name: arr[mask] for name, arr in cols.items()}
            row_ids = row_ids[mask]
    stats.rows_returned += len(row_ids)
    piece = dict(cols)
    piece["_row_id"] = row_ids
    return piece


def batch_bitmap_query(
    index: BitmapIndex,
    polyhedra: Sequence[Polyhedron],
    cancel_checks: Sequence[Callable[[], None] | None] | None = None,
    memberships_list: Sequence[dict | None] | None = None,
    row_ranges_list: Sequence[Sequence[tuple[int, int]] | None] | None = None,
    use_zone_maps: bool = True,
    retry=SCAN_RETRY,
) -> tuple[list[tuple[dict[str, np.ndarray] | None, QueryStats, BaseException | None]], dict]:
    """Serve a micro-batch of queries off shared candidate-page decodes.

    Per-member candidate bitmaps are computed independently (cheap word
    ops), then the union of candidate pages is decoded once, each page
    serving every member with candidates on it.  Member isolation and
    the ``(results, counters)`` contract match
    :func:`repro.db.scan.batch_full_scan`; a :class:`StorageFault` from
    the shared read path propagates so the planner can degrade the group
    to solo execution.

    ``row_ranges_list`` (per-member clustered row ranges from a kd
    traversal) turns members into hybrid executions -- candidates are
    intersected with the ranges before any page is touched.
    """
    table = index.table
    # Residual filtering, zone pruning, and dim validation all happen in
    # the *query* coordinate space, which may be wider than the indexed
    # column subset on a tuned replica.
    dims = getattr(index, "query_dims", None) or index.dims
    n = len(polyhedra)
    checks = list(cancel_checks) if cancel_checks is not None else [None] * n
    memberships_list = (
        list(memberships_list) if memberships_list is not None else [None] * n
    )
    ranges_list = (
        list(row_ranges_list) if row_ranges_list is not None else [None] * n
    )
    for polyhedron in polyhedra:
        if polyhedron is not None and polyhedron.dim != len(dims):
            raise ValueError(
                f"polyhedron dim {polyhedron.dim} != index dim {len(dims)}"
            )

    stats = [QueryStats() for _ in range(n)]
    errors: list[BaseException | None] = [None] * n
    wanted = table.column_names
    chunks: list[dict[str, list[np.ndarray]]] = [
        {name: [] for name in wanted} for _ in range(n)
    ]
    row_id_chunks: list[list[np.ndarray]] = [[] for _ in range(n)]
    counters = {"pages_decoded": 0, "shared_decode_hits": 0}
    rows_per_page = table.rows_per_page

    # One consistent snapshot serves planning and fetch for every member.
    snapshot = table.delta_snapshot()
    tombstones = snapshot.tombstones if snapshot is not None else None
    if tombstones is not None and not len(tombstones):
        tombstones = None
    zone_map = table.zone_map() if use_zone_maps else None

    # -- phase 1: candidate rows per member (compressed-word ops only) ----
    candidates: list[np.ndarray | None] = [None] * n
    pruners = [None] * n
    for m in range(n):
        check = checks[m]
        if check is not None:
            try:
                check()
            except BaseException as exc:
                errors[m] = exc
                continue
        rows = index.candidate_rows(polyhedra[m], memberships_list[m])
        if rows is None:
            # Nothing constrained the index: every main-tier row is a
            # candidate (the residual filter still decides membership).
            rows = np.arange(table.num_rows, dtype=np.int64)
        if ranges_list[m] is not None:
            rows = _restrict_to_ranges(rows, ranges_list[m])
        stats[m].extra["bitmap_candidate_rows"] = int(len(rows))
        candidates[m] = rows
        if zone_map is not None and polyhedra[m] is not None:
            pruners[m] = zone_map.pruner(polyhedra[m], dims)

    # -- phase 2: shared decode of the candidate-page union ---------------
    plan: dict[int, list[tuple[int, bool]]] = {}
    for m in range(n):
        if errors[m] is not None or candidates[m] is None:
            continue
        member_pages = np.unique(candidates[m] // rows_per_page)
        for page_id in member_pages:
            page_id = int(page_id)
            inside = False
            if pruners[m] is not None:
                relation = pruners[m].classify(page_id)
                if relation is BoxRelation.OUTSIDE:
                    stats[m].pages_skipped += 1
                    continue
                inside = relation is BoxRelation.INSIDE
            plan.setdefault(page_id, []).append((m, inside))

    page_ids = sorted(plan)
    window = table.readahead_pages
    prefetch_at: dict[int, list[int]] = {}
    if window > 1:
        for run in _coalesced_runs(page_ids, window):
            if len(run) > 1:
                prefetch_at[run[0]] = run

    for page_id in page_ids:
        live: list[tuple[int, bool]] = []
        for m, inside in plan[page_id]:
            if errors[m] is not None:
                continue
            check = checks[m]
            if check is not None:
                try:
                    check()
                except BaseException as exc:
                    errors[m] = exc
                    continue
            live.append((m, inside))
        if not live:
            continue
        run = prefetch_at.get(page_id)
        if run is not None:
            stats[live[0][0]].pages_prefetched += table.prefetch(run)
        page = _read_page_retrying(table, page_id, retry)
        counters["pages_decoded"] += 1
        counters["shared_decode_hits"] += len(live) - 1
        page_start = page_id * rows_per_page
        points = None
        for m, inside in live:
            member = candidates[m]
            lo = np.searchsorted(member, page_start, side="left")
            hi = np.searchsorted(member, page_start + page.num_rows, side="left")
            local = (member[lo:hi] - page_start).astype(np.int64)
            if not len(local):
                continue
            member_stats = stats[m]
            member_stats.record_page(table.name, page_id)
            member_stats.rows_examined += len(local)
            row_ids = member[lo:hi]
            if inside or polyhedra[m] is None:
                mask = np.ones(len(local), dtype=bool)
            else:
                if points is None:
                    # Stacked once per page, shared by every member on it.
                    points = np.column_stack([page.columns[d] for d in dims])
                mask = polyhedra[m].contains_points(points[local])
            memberships = memberships_list[m]
            if memberships:
                extra = _membership_row_mask(page.columns, memberships, local)
                if extra is not None:
                    mask = mask & extra
            if tombstones is not None:
                mask = mask & _alive_mask(row_ids, tombstones)
            matched = int(np.count_nonzero(mask))
            if matched == 0:
                continue
            member_stats.rows_returned += matched
            row_id_chunks[m].append(row_ids[mask])
            take = local[mask]
            for name in wanted:
                chunks[m][name].append(page.columns[name][take])

    # -- phase 3: per-member merge-on-read of the delta tier --------------
    for m in range(n):
        if errors[m] is not None:
            continue
        piece = _delta_piece(
            snapshot, polyhedra[m], dims, memberships_list[m], stats[m]
        )
        if piece is not None and len(piece["_row_id"]):
            row_id_chunks[m].append(piece["_row_id"])
            for name in wanted:
                chunks[m][name].append(piece[name])

    results: list[tuple[dict[str, np.ndarray] | None, QueryStats, BaseException | None]] = []
    for m in range(n):
        if errors[m] is not None:
            results.append((None, stats[m], errors[m]))
            continue
        rows: dict[str, np.ndarray] = {}
        for name in wanted:
            parts = chunks[m][name]
            rows[name] = (
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=table.dtype_of(name))
            )
        rows["_row_id"] = (
            np.concatenate(row_id_chunks[m])
            if row_id_chunks[m]
            else np.empty(0, dtype=np.int64)
        )
        results.append((rows, stats[m], None))
    return results, counters


def bitmap_query(
    index: BitmapIndex,
    polyhedron: Polyhedron,
    memberships: dict[str, np.ndarray] | None = None,
    cancel_check: Callable[[], None] | None = None,
    row_ranges: Sequence[tuple[int, int]] | None = None,
    use_zone_maps: bool = True,
    retry=SCAN_RETRY,
) -> tuple[dict[str, np.ndarray], QueryStats]:
    """Answer one polyhedron + membership query through the bitmap index.

    The single-member case of :func:`batch_bitmap_query` (same code
    path, so solo and batched answers are identical by construction).
    """
    results, _ = batch_bitmap_query(
        index,
        [polyhedron],
        cancel_checks=[cancel_check],
        memberships_list=[memberships],
        row_ranges_list=[row_ranges] if row_ranges is not None else None,
        use_zone_maps=use_zone_maps,
        retry=retry,
    )
    rows, stats, error = results[0]
    if error is not None:
        raise error
    return rows, stats


def hybrid_query(
    kd_index,
    bitmap_index: BitmapIndex,
    polyhedron: Polyhedron,
    memberships: dict[str, np.ndarray] | None = None,
    cancel_check: Callable[[], None] | None = None,
    use_tight_boxes: bool = True,
    use_zone_maps: bool = True,
) -> tuple[dict[str, np.ndarray], QueryStats]:
    """Bitmap prefilter intersected with the kd traversal's row ranges.

    The kd traversal runs in memory (no page I/O) and its traversal
    stats are merged into the fetch stats, so ``nodes_visited`` /
    ``cells_*`` read like a kd query while ``pages_touched`` reflects
    the intersected candidate set.
    """
    ranges, stats = kd_index.candidate_ranges(
        polyhedron, use_tight_boxes=use_tight_boxes, cancel_check=cancel_check
    )
    rows, fetch_stats = bitmap_query(
        bitmap_index,
        polyhedron,
        memberships=memberships,
        cancel_check=cancel_check,
        row_ranges=ranges,
        use_zone_maps=use_zone_maps,
    )
    stats.merge(fetch_stats)
    return rows, stats


def batch_hybrid_query(
    kd_index,
    bitmap_index: BitmapIndex,
    polyhedra: Sequence[Polyhedron],
    cancel_checks: Sequence[Callable[[], None] | None] | None = None,
    memberships_list: Sequence[dict | None] | None = None,
    use_tight_boxes: bool = True,
    use_zone_maps: bool = True,
) -> tuple[list[tuple[dict[str, np.ndarray] | None, QueryStats, BaseException | None]], dict]:
    """Hybrid execution for a member group, sharing the fetch pass.

    Each member's kd ranges are collected first (in-memory traversals),
    then one :func:`batch_bitmap_query` serves every member's
    intersected candidates with shared page decodes.
    """
    n = len(polyhedra)
    checks = list(cancel_checks) if cancel_checks is not None else [None] * n
    traversal_stats: list[QueryStats | None] = [None] * n
    ranges_list: list[Sequence[tuple[int, int]] | None] = [None] * n
    errors: list[BaseException | None] = [None] * n
    for m in range(n):
        try:
            ranges_list[m], traversal_stats[m] = kd_index.candidate_ranges(
                polyhedra[m],
                use_tight_boxes=use_tight_boxes,
                cancel_check=checks[m],
            )
        except BaseException as exc:
            from repro.db.errors import StorageFault

            if isinstance(exc, StorageFault):
                raise
            errors[m] = exc
            ranges_list[m] = []
    results, counters = batch_bitmap_query(
        bitmap_index,
        polyhedra,
        cancel_checks=[
            None if errors[m] is not None else checks[m] for m in range(n)
        ],
        memberships_list=memberships_list,
        row_ranges_list=ranges_list,
        use_zone_maps=use_zone_maps,
    )
    merged: list[tuple[dict[str, np.ndarray] | None, QueryStats, BaseException | None]] = []
    for m, (rows, stats, error) in enumerate(results):
        if errors[m] is not None:
            merged.append((None, traversal_stats[m] or QueryStats(), errors[m]))
            continue
        combined = traversal_stats[m] or QueryStats()
        combined.merge(stats)
        merged.append((rows, combined, error))
    return merged, counters
