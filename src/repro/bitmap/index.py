"""Per-column binned bitmap index over a clustered engine table.

Bin-based bitmap indexing (Krčál, Ho & Holub, arXiv 2108.13735) in the
engine's terms: every indexed column is cut into equi-depth bins (edges
from quantiles, so skewed magnitudes get evenly loaded bins) and each
bin stores one :class:`~repro.bitmap.compressed.CompressedBitmap` over
the table's main-tier row positions.  A conjunctive query then:

1. turns each *axis-aligned* halfspace into a per-axis interval,
2. ORs the bitmaps of the bins overlapping each interval,
3. ANDs across axes (and IN-list membership columns) -- all on
   compressed words, before any data page is read or decoded.

The result is a **conservative candidate superset**: bins are coarser
than values, and halfspaces with more than one nonzero coefficient
(oblique cuts) never constrain it.  Executors therefore always apply
the full residual predicate to candidate rows -- the index buys page
pruning, never answers.  This is deliberately stricter than
:meth:`repro.db.histogram.HistogramStatistics.estimate_polyhedron`,
whose dominant-axis division is fine for an *estimate* but unsound for
candidate pruning.

The index covers the main tier of one table generation; delta-tier rows
are merged on read by the executors, and merges rebuild the index for
the new generation (see :mod:`repro.ingest.merge`).
"""

from __future__ import annotations

import numpy as np

from repro.bitmap.compressed import CompressedBitmap
from repro.db.faults import call_with_retries
from repro.geometry.halfspace import Polyhedron

__all__ = ["BitmapIndex", "axis_bounds", "DEFAULT_BITMAP_BINS"]

#: Default bins per column; 32 keeps a 5-D index's bin bitmaps at ~3%
#: expected density each, where the sparse word form compresses well.
DEFAULT_BITMAP_BINS = 32


def axis_bounds(
    polyhedron: Polyhedron, dim: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-axis ``[low, high]`` intervals implied by axis-aligned halfspaces.

    Only halfspaces with exactly one nonzero coefficient constrain an
    axis; oblique halfspaces are ignored (the caller's residual filter
    handles them), so the returned box always contains the polyhedron.
    Unconstrained axes come back as ``(-inf, +inf)``.
    """
    lows = np.full(dim, -np.inf)
    highs = np.full(dim, np.inf)
    for halfspace in polyhedron.halfspaces:
        nonzero = np.flatnonzero(halfspace.normal)
        if len(nonzero) != 1:
            continue
        axis = int(nonzero[0])
        coefficient = halfspace.normal[axis]
        bound = halfspace.offset / coefficient
        if coefficient > 0:
            highs[axis] = min(highs[axis], bound)
        else:
            lows[axis] = max(lows[axis], bound)
    return lows, highs


class BitmapIndex:
    """Equi-depth binned bitmaps for every indexed column of a table.

    Registered in the catalog as ``<table>.bitmap`` next to the kd-tree's
    ``<table>.kdtree``; the planner resolves it per query, so a merge
    swapping a rebuilt index in is picked up without re-wiring.
    """

    def __init__(
        self,
        database,
        table,
        dims: list[str],
        edges: dict[str, np.ndarray],
        bitmaps: dict[str, list[CompressedBitmap]],
        bin_counts: dict[str, np.ndarray],
        table_dims: list[str] | None = None,
    ):
        self._db = database
        self._table = table
        self._dims = list(dims)
        self._edges = edges
        self._bitmaps = bitmaps
        self._bin_counts = bin_counts
        # Coordinate axes queries are phrased in.  Defaults to the
        # indexed dims (the historical all-axes index); a tuned replica
        # may index only a subset, in which case ``table_dims`` names
        # the full query space and ``_axes`` maps each indexed column
        # back to its polyhedron axis.
        self._table_dims = list(table_dims) if table_dims is not None else list(dims)
        self._axes = {
            col: self._table_dims.index(col)
            for col in self._dims
            if col in self._table_dims
        }

    # -- build ---------------------------------------------------------------

    @staticmethod
    def build(
        database,
        name: str,
        dims: list[str],
        num_bins: int = DEFAULT_BITMAP_BINS,
        columns: dict[str, np.ndarray] | None = None,
        register: bool = True,
        retry=None,
        table=None,
        table_dims: list[str] | None = None,
    ) -> "BitmapIndex":
        """Bin the table's columns and build one bitmap per bin.

        ``columns`` may supply the column arrays **in table row order**
        (e.g. a merge that just wrote them); otherwise they are read
        back through the buffer pool.  ``table`` overrides the catalog
        lookup for builds over a generation not yet swapped in (merges).
        ``table_dims`` names the full coordinate axis order when
        ``dims`` indexes only a subset of it (tuned replicas).
        Registers as ``<name>.bitmap`` unless ``register`` is false.
        """
        if num_bins < 2:
            raise ValueError("num_bins must be >= 2")
        if table is None:
            table = database.table(name)
        if columns is None:
            reader = lambda: table.read_columns(list(dims))  # noqa: E731
            columns = (
                call_with_retries(reader, retry) if retry is not None else reader()
            )
        num_rows = table.num_rows
        edges: dict[str, np.ndarray] = {}
        bitmaps: dict[str, list[CompressedBitmap]] = {}
        bin_counts: dict[str, np.ndarray] = {}
        quantiles = np.linspace(0.0, 1.0, num_bins + 1)
        for col in dims:
            values = np.asarray(columns[col], dtype=np.float64)
            if len(values) != num_rows:
                raise ValueError(
                    f"column {col!r} has {len(values)} rows, table has {num_rows}"
                )
            col_edges = (
                np.quantile(values, quantiles)
                if num_rows
                else np.zeros(num_bins + 1)
            )
            # Equal quantiles (heavy ties) leave some bins empty; that is
            # fine -- their bitmaps are zero words and cost nothing.
            assignments = np.clip(
                np.searchsorted(col_edges, values, side="right") - 1,
                0,
                num_bins - 1,
            )
            order = np.argsort(assignments, kind="stable")
            sorted_bins = assignments[order]
            boundaries = np.searchsorted(sorted_bins, np.arange(num_bins + 1))
            col_bitmaps = [
                CompressedBitmap.from_indices(
                    order[boundaries[b]: boundaries[b + 1]], num_rows
                )
                for b in range(num_bins)
            ]
            edges[col] = col_edges
            bitmaps[col] = col_bitmaps
            bin_counts[col] = np.diff(boundaries).astype(np.int64)
        index = BitmapIndex(
            database, table, dims, edges, bitmaps, bin_counts,
            table_dims=table_dims,
        )
        if register:
            database.register_index(f"{name}.bitmap", index)
        return index

    # -- identity ------------------------------------------------------------

    @property
    def table(self):
        """The indexed (main-tier) table."""
        return self._table

    @property
    def table_name(self) -> str:
        """Logical table name (catalog bookkeeping, drop propagation)."""
        return self._table.name

    @property
    def dims(self) -> list[str]:
        """Indexed column names, in axis order."""
        return list(self._dims)

    @property
    def query_dims(self) -> list[str]:
        """The coordinate axes queries are phrased in.

        Equal to :attr:`dims` for a full-coverage index; a superset of
        it when only some axes are indexed.  Executors validate query
        dimensionality and run residual filters against *this* space.
        """
        return list(self._table_dims)

    @property
    def num_bins(self) -> int:
        """Bins per indexed column."""
        return len(self._bin_counts[self._dims[0]]) if self._dims else 0

    def bin_edges(self, col: str) -> np.ndarray:
        """The ``num_bins + 1`` equi-depth edges of one column."""
        return self._edges[col]

    def bin_bitmap(self, col: str, bin_id: int) -> CompressedBitmap:
        """The compressed bitmap of one bin."""
        return self._bitmaps[col][bin_id]

    def compressed_words(self) -> int:
        """Total stored words across every bin (the index's footprint)."""
        return sum(
            bitmap.num_words
            for col_bitmaps in self._bitmaps.values()
            for bitmap in col_bitmaps
        )

    # -- bin selection -------------------------------------------------------

    def _assign_bin(self, col: str, value: float) -> int:
        edges = self._edges[col]
        return int(
            np.clip(
                np.searchsorted(edges, value, side="right") - 1,
                0,
                len(edges) - 2,
            )
        )

    def _range_bins(self, col: str, low: float, high: float) -> tuple[int, int]:
        """Inclusive bin range overlapping ``[low, high]``; (1, 0) = empty."""
        edges = self._edges[col]
        if high < edges[0] or low > edges[-1]:
            return 1, 0
        first = self._assign_bin(col, low) if np.isfinite(low) else 0
        last = self._assign_bin(col, high) if np.isfinite(high) else self.num_bins - 1
        return first, last

    def _membership_bins(self, col: str, values: np.ndarray) -> np.ndarray:
        """Distinct bins containing any of the IN-list values."""
        edges = self._edges[col]
        values = np.asarray(values, dtype=np.float64)
        inside = values[(values >= edges[0]) & (values <= edges[-1])]
        if not len(inside):
            return np.empty(0, dtype=np.int64)
        return np.unique(
            np.clip(
                np.searchsorted(edges, inside, side="right") - 1,
                0,
                self.num_bins - 1,
            )
        )

    # -- candidates ----------------------------------------------------------

    def candidate_bitmap(
        self,
        polyhedron: Polyhedron | None,
        memberships: dict[str, np.ndarray] | None = None,
    ) -> CompressedBitmap | None:
        """AND of per-axis bin unions: the candidate row superset.

        Returns ``None`` when nothing constrains the index (no
        axis-aligned halfspace on an indexed column, no membership on
        one) -- the caller should treat that as "every row", typically
        by falling back to a scan-shaped plan.
        """
        num_rows = self._table.num_rows
        result: CompressedBitmap | None = None
        if polyhedron is not None:
            lows, highs = axis_bounds(polyhedron, len(self._table_dims))
            for col in self._dims:
                axis = self._axes.get(col)
                if axis is None:
                    continue  # indexed column outside the query space
                low, high = lows[axis], highs[axis]
                if not (np.isfinite(low) or np.isfinite(high)):
                    continue
                first, last = self._range_bins(col, low, high)
                if first > last:
                    return CompressedBitmap.empty(num_rows)
                axis_bitmap = CompressedBitmap.union(
                    self._bitmaps[col][first: last + 1], num_rows
                )
                result = axis_bitmap if result is None else result & axis_bitmap
                if not result.any():
                    return result
        if memberships:
            for col, values in memberships.items():
                if col not in self._bitmaps:
                    continue  # unindexed column: residual filter handles it
                bins = self._membership_bins(col, values)
                if not len(bins):
                    return CompressedBitmap.empty(num_rows)
                col_bitmap = CompressedBitmap.union(
                    [self._bitmaps[col][b] for b in bins], num_rows
                )
                result = col_bitmap if result is None else result & col_bitmap
                if not result.any():
                    return result
        return result

    def candidate_rows(
        self,
        polyhedron: Polyhedron | None,
        memberships: dict[str, np.ndarray] | None = None,
    ) -> np.ndarray | None:
        """Sorted main-tier row positions of the candidate superset."""
        bitmap = self.candidate_bitmap(polyhedron, memberships)
        return None if bitmap is None else bitmap.to_indices()

    def estimate_fraction(
        self,
        polyhedron: Polyhedron | None,
        memberships: dict[str, np.ndarray] | None = None,
    ) -> float | None:
        """Candidate-rows fraction from bin counts alone (no bitmap ops).

        The planner's cost input: per-axis selected-bin mass, multiplied
        across constrained axes under the independence assumption.
        Returns ``None`` when nothing constrains the index.
        """
        num_rows = max(1, self._table.num_rows)
        fraction: float | None = None
        if polyhedron is not None:
            lows, highs = axis_bounds(polyhedron, len(self._table_dims))
            for col in self._dims:
                axis = self._axes.get(col)
                if axis is None:
                    continue
                low, high = lows[axis], highs[axis]
                if not (np.isfinite(low) or np.isfinite(high)):
                    continue
                first, last = self._range_bins(col, low, high)
                mass = (
                    float(self._bin_counts[col][first: last + 1].sum()) / num_rows
                    if first <= last
                    else 0.0
                )
                fraction = mass if fraction is None else fraction * mass
        if memberships:
            for col, values in memberships.items():
                if col not in self._bin_counts:
                    continue
                bins = self._membership_bins(col, values)
                mass = float(self._bin_counts[col][bins].sum()) / num_rows
                fraction = mass if fraction is None else fraction * mass
        return fraction

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form, keyed by the physical table namespace."""
        return {
            "table": self._table.physical_name,
            "name": self._table.name,
            "dims": list(self._dims),
            "table_dims": list(self._table_dims),
            "num_bins": self.num_bins,
            "columns": [
                {
                    "dim": col,
                    "edges": self._edges[col].tolist(),
                    "counts": self._bin_counts[col].tolist(),
                    "bitmaps": [b.to_dict() for b in self._bitmaps[col]],
                }
                for col in self._dims
            ],
        }

    @classmethod
    def from_dict(cls, database, payload: dict) -> "BitmapIndex":
        """Rebuild from :meth:`to_dict` output against a reopened catalog."""
        table = database.table(payload["name"])
        edges = {}
        bitmaps = {}
        bin_counts = {}
        for entry in payload["columns"]:
            col = entry["dim"]
            edges[col] = np.asarray(entry["edges"], dtype=np.float64)
            bin_counts[col] = np.asarray(entry["counts"], dtype=np.int64)
            bitmaps[col] = [CompressedBitmap.from_dict(b) for b in entry["bitmaps"]]
        return cls(
            database, table, payload["dims"], edges, bitmaps, bin_counts,
            table_dims=payload.get("table_dims"),
        )
