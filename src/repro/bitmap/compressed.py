"""Word-aligned compressed bitmaps with a hierarchy of summary levels.

The bin-based bitmap index (Krčál, Ho & Holub, arXiv 2108.13735) lives
and dies by two properties of its bit vectors:

* **Compression.**  A bin's bitmap over N rows is mostly zero words;
  storing only the nonzero 64-bit words (with their word positions)
  is the word-aligned analog of run-length encoding zero runs, and
  every set operation stays on the compressed form -- nothing is ever
  inflated to N bits.
* **Hierarchy.**  Each summary level packs one bit per word of the
  level below ("is that word nonzero?"), so an AND between two bitmaps
  can prove disjointness near the top of the hierarchy after touching
  O(N / 64^k) words -- the "hierarchical" part of the paper's title,
  and what lets multi-dimension predicates combine before any data
  page is read.

All operations are numpy-vectorized over the word arrays; population
counts use ``np.bitwise_count``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CompressedBitmap"]

_WORD_BITS = 64


def _pack_indices(indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted unique bit indices -> (word_index, words) sparse form."""
    word_of = indices >> 6
    bit_of = indices & 63
    word_index, starts = np.unique(word_of, return_index=True)
    bits = np.left_shift(np.uint64(1), bit_of.astype(np.uint64))
    words = np.bitwise_or.reduceat(bits, starts)
    return word_index.astype(np.int64), words.astype(np.uint64)


class CompressedBitmap:
    """An immutable bitmap over ``num_bits`` row positions.

    Stored as the sorted positions of its nonzero 64-bit words plus the
    words themselves; zero words (the bulk, for a selective bin) cost
    nothing.  Summary levels are built lazily and cached -- they are
    derived data, so AND/OR results simply rebuild them on demand.
    """

    __slots__ = ("num_bits", "word_index", "words", "_summaries")

    def __init__(self, num_bits: int, word_index: np.ndarray, words: np.ndarray):
        self.num_bits = int(num_bits)
        self.word_index = np.asarray(word_index, dtype=np.int64)
        self.words = np.asarray(words, dtype=np.uint64)
        if self.word_index.shape != self.words.shape:
            raise ValueError("word_index and words must align")
        self._summaries: list[np.ndarray] | None = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls, num_bits: int) -> "CompressedBitmap":
        """The all-zero bitmap."""
        return cls(num_bits, np.empty(0, np.int64), np.empty(0, np.uint64))

    @classmethod
    def from_indices(cls, indices: np.ndarray, num_bits: int) -> "CompressedBitmap":
        """Bitmap with exactly the given bit positions set."""
        indices = np.unique(np.asarray(indices, dtype=np.int64))
        if len(indices) and (indices[0] < 0 or indices[-1] >= num_bits):
            raise ValueError("bit index out of range")
        if not len(indices):
            return cls.empty(num_bits)
        word_index, words = _pack_indices(indices)
        return cls(num_bits, word_index, words)

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "CompressedBitmap":
        """Bitmap from a dense boolean mask (testing convenience)."""
        mask = np.asarray(mask, dtype=bool)
        return cls.from_indices(np.flatnonzero(mask), len(mask))

    # -- inspection ----------------------------------------------------------

    @property
    def num_words(self) -> int:
        """Nonzero (stored) words -- the compressed size."""
        return len(self.words)

    @property
    def total_words(self) -> int:
        """Words an uncompressed bitmap of this length would need."""
        return (self.num_bits + _WORD_BITS - 1) // _WORD_BITS

    def count(self) -> int:
        """Number of set bits (one vectorized popcount pass)."""
        if not len(self.words):
            return 0
        return int(np.bitwise_count(self.words).sum())

    def any(self) -> bool:
        """Whether any bit is set (stored words are nonzero by invariant)."""
        return len(self.words) > 0

    def density(self) -> float:
        """Set bits / total bits."""
        return self.count() / self.num_bits if self.num_bits else 0.0

    def to_indices(self) -> np.ndarray:
        """Sorted positions of the set bits."""
        if not len(self.words):
            return np.empty(0, dtype=np.int64)
        # Little-endian byte view: bit i of byte j within a word is
        # global bit 8*j + i, which unpackbits(bitorder="little") yields
        # in ascending order per word.
        bits = np.unpackbits(
            self.words.view(np.uint8), bitorder="little"
        ).reshape(len(self.words), _WORD_BITS)
        word_local, bit_local = np.nonzero(bits)
        return self.word_index[word_local] * _WORD_BITS + bit_local

    def to_mask(self) -> np.ndarray:
        """Dense boolean mask (testing convenience)."""
        mask = np.zeros(self.num_bits, dtype=bool)
        mask[self.to_indices()] = True
        return mask

    # -- summary hierarchy ---------------------------------------------------

    @property
    def summaries(self) -> list[np.ndarray]:
        """Packed summary levels, coarsest last.

        ``summaries[0]`` has one bit per word of the base bitmap (set iff
        that word is nonzero), ``summaries[k+1]`` one bit per word of
        ``summaries[k]``; the last level fits in a single word.  Levels
        are dense (their universe is already 64x smaller per step).
        """
        if self._summaries is None:
            levels: list[np.ndarray] = []
            set_words = self.word_index
            universe = self.total_words
            while universe > 1:
                level = np.zeros((universe + _WORD_BITS - 1) // _WORD_BITS, np.uint64)
                np.bitwise_or.at(
                    level,
                    set_words >> 6,
                    np.left_shift(np.uint64(1), (set_words & 63).astype(np.uint64)),
                )
                levels.append(level)
                set_words = np.flatnonzero(level)
                universe = len(level)
            self._summaries = levels
        return self._summaries

    def intersects(self, other: "CompressedBitmap") -> bool:
        """Whether the AND is nonempty, proving disjointness hierarchically.

        Walks the summary hierarchy coarsest-first: if any level's ANDed
        words are all zero the bitmaps cannot share a set bit, and the
        base word arrays are never touched.
        """
        self._check_compatible(other)
        if not (len(self.words) and len(other.words)):
            return False
        for mine, theirs in zip(reversed(self.summaries), reversed(other.summaries)):
            if not np.any(mine & theirs):
                return False
        common, my_pos, their_pos = np.intersect1d(
            self.word_index, other.word_index, assume_unique=True,
            return_indices=True,
        )
        if not len(common):
            return False
        return bool(np.any(self.words[my_pos] & other.words[their_pos]))

    # -- set algebra ---------------------------------------------------------

    def _check_compatible(self, other: "CompressedBitmap") -> None:
        if self.num_bits != other.num_bits:
            raise ValueError(
                f"bitmap length mismatch: {self.num_bits} != {other.num_bits}"
            )

    def __and__(self, other: "CompressedBitmap") -> "CompressedBitmap":
        self._check_compatible(other)
        if not self.intersects(other):
            return CompressedBitmap.empty(self.num_bits)
        common, my_pos, their_pos = np.intersect1d(
            self.word_index, other.word_index, assume_unique=True,
            return_indices=True,
        )
        words = self.words[my_pos] & other.words[their_pos]
        keep = words != 0
        return CompressedBitmap(self.num_bits, common[keep], words[keep])

    def __or__(self, other: "CompressedBitmap") -> "CompressedBitmap":
        self._check_compatible(other)
        if not len(self.words):
            return other
        if not len(other.words):
            return self
        merged = np.concatenate([self.word_index, other.word_index])
        all_words = np.concatenate([self.words, other.words])
        order = np.argsort(merged, kind="stable")
        merged, all_words = merged[order], all_words[order]
        word_index, starts = np.unique(merged, return_index=True)
        words = np.bitwise_or.reduceat(all_words, starts)
        return CompressedBitmap(self.num_bits, word_index, words)

    @staticmethod
    def union(bitmaps: list["CompressedBitmap"], num_bits: int) -> "CompressedBitmap":
        """OR many bitmaps in one grouped pass (bin-range unions)."""
        live = [b for b in bitmaps if len(b.words)]
        if not live:
            return CompressedBitmap.empty(num_bits)
        if len(live) == 1:
            return live[0]
        merged = np.concatenate([b.word_index for b in live])
        all_words = np.concatenate([b.words for b in live])
        order = np.argsort(merged, kind="stable")
        merged, all_words = merged[order], all_words[order]
        word_index, starts = np.unique(merged, return_index=True)
        words = np.bitwise_or.reduceat(all_words, starts)
        return CompressedBitmap(num_bits, word_index, words)

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form (catalog persistence)."""
        return {
            "num_bits": self.num_bits,
            "word_index": self.word_index.tolist(),
            "words": [int(w) for w in self.words],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CompressedBitmap":
        """Inverse of :meth:`to_dict`."""
        return cls(
            payload["num_bits"],
            np.asarray(payload["word_index"], dtype=np.int64),
            np.asarray(payload["words"], dtype=np.uint64),
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CompressedBitmap(bits={self.num_bits}, set={self.count()}, "
            f"words={self.num_words}/{self.total_words})"
        )
