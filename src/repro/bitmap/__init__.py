"""Hierarchical compressed bitmap index engine.

The third access path next to the kd-tree and the zone-map scan:
bin-based per-column bitmaps with summary hierarchies (Krčál, Ho &
Holub, arXiv 2108.13735) that AND/OR multi-dimension range and
membership predicates on compressed words before any data page is
read.  See :mod:`repro.bitmap.index` for the structure and
:mod:`repro.bitmap.executor` for the engine-protocol executors.
"""

from repro.bitmap.compressed import CompressedBitmap
from repro.bitmap.executor import (
    batch_bitmap_query,
    batch_hybrid_query,
    bitmap_query,
    hybrid_query,
)
from repro.bitmap.index import DEFAULT_BITMAP_BINS, BitmapIndex, axis_bounds

__all__ = [
    "BitmapIndex",
    "CompressedBitmap",
    "DEFAULT_BITMAP_BINS",
    "axis_bounds",
    "batch_bitmap_query",
    "batch_hybrid_query",
    "bitmap_query",
    "hybrid_query",
]
