"""Photometric-redshift datasets (§4.1, Figures 7 and 8).

The setup of the paper: "The reference set is the catalog of 1 million
galaxies where both colors and redshifts were observed by the telescope.
We will refer to the other set of the circa 270M objects with unknown
redshifts as the unknown set."  Both sets here are drawn from the same
generative pipeline -- galaxy template blends, redshifted and pushed
through the ugriz filters -- so the reference set "covers the color space
relatively well" by construction.

Calibration systematics: the template-fitting baseline of Figure 7
suffers from "the difficulty in calibrating it to get rid of systematic
observational errors".  We model this with per-band zeropoint offsets
between the truth pipeline and the templates the fitter assumes
(:data:`DEFAULT_CALIBRATION_OFFSETS`), which is precisely a calibration
error: the photometry the fitter sees is shifted relative to the
photometry its templates predict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.spectra import FilterBank, SpectrumTemplates

__all__ = [
    "PhotozDataset",
    "make_photoz_dataset",
    "DEFAULT_CALIBRATION_OFFSETS",
]

#: Per-band zeropoint error (truth vs the fitter's assumed calibration),
#: in magnitudes.  A few hundredths to ~0.1 mag is the realistic regime
#: the early SDSS template photo-z pipeline fought with.
DEFAULT_CALIBRATION_OFFSETS = {
    "u": 0.10,
    "g": -0.06,
    "r": 0.03,
    "i": -0.05,
    "z": 0.08,
}


@dataclass
class PhotozDataset:
    """Reference and unknown sets for the photo-z experiment.

    ``*_magnitudes`` are (n, 5) ugriz arrays; redshifts of the unknown
    set are the held-out truth an estimator is scored against.
    """

    reference_magnitudes: np.ndarray
    reference_redshifts: np.ndarray
    unknown_magnitudes: np.ndarray
    unknown_redshifts: np.ndarray
    templates: SpectrumTemplates
    filters: FilterBank

    @property
    def num_reference(self) -> int:
        """Size of the reference (training) set."""
        return len(self.reference_redshifts)

    @property
    def num_unknown(self) -> int:
        """Size of the unknown (evaluation) set."""
        return len(self.unknown_redshifts)


def _draw_galaxies(
    n: int,
    templates: SpectrumTemplates,
    filters: FilterBank,
    rng: np.random.Generator,
    photometric_noise: float,
    zeropoints: dict[str, float] | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample (magnitudes, redshifts) for n galaxies."""
    redshifts = rng.beta(2.0, 4.0, n) * 0.5 + 0.01
    mixes = rng.beta(1.3, 1.3, n)
    magnitudes = np.empty((n, 5))
    for row in range(n):
        spectrum = templates.galaxy_blend(float(mixes[row]), z=float(redshifts[row]))
        magnitudes[row] = filters.magnitudes(spectrum, zeropoints=zeropoints)
    magnitudes += rng.normal(0.0, photometric_noise, magnitudes.shape)
    return magnitudes, redshifts


def make_photoz_dataset(
    num_reference: int = 2000,
    num_unknown: int = 1000,
    photometric_noise: float = 0.03,
    calibration_offsets: dict[str, float] | None = None,
    seed: int = 0,
) -> PhotozDataset:
    """Build matched reference / unknown photo-z sets.

    Both sets carry the *true* calibration offsets (they are the same
    survey); the template fitter, by contrast, predicts colors with
    offset-free templates -- that mismatch is the calibration systematic.
    The k-NN method never sees templates, only the reference photometry,
    which is why "the nearest neighbor fitting method is not sensitive to
    calibration errors" (§4.1).
    """
    if calibration_offsets is None:
        calibration_offsets = dict(DEFAULT_CALIBRATION_OFFSETS)
    rng = np.random.default_rng(seed)
    templates = SpectrumTemplates()
    filters = FilterBank(templates.wavelengths)
    ref_mags, ref_z = _draw_galaxies(
        num_reference, templates, filters, rng, photometric_noise, calibration_offsets
    )
    unk_mags, unk_z = _draw_galaxies(
        num_unknown, templates, filters, rng, photometric_noise, calibration_offsets
    )
    return PhotozDataset(
        reference_magnitudes=ref_mags,
        reference_redshifts=ref_z,
        unknown_magnitudes=unk_mags,
        unknown_redshifts=unk_z,
        templates=templates,
        filters=filters,
    )
