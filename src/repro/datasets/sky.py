"""The (ra, dec, redshift) sky: large-scale structure for Figure 14.

"Our other point cloud visualization is that of the SDSS ra, dec,
redshift space ... Using Hubble's law ... we can trivially compute the
radial distance of celestial objects from redshift data.  This
visualization thus shows the 3D spatial distribution of the celestial
objects ... the large scale structure of the universe (e.g. Finger of
God structures)" (§5.2).

The generator places galaxy clusters, filaments between them, and a
field population on the survey footprint.  Cluster members get the
"Finger of God" treatment: their peculiar velocities inflate the
redshift scatter along -- and only along -- the line of sight, producing
the characteristic radial elongation the paper's Figure 14 shows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SkySample", "sky_survey_sample", "HUBBLE_CONSTANT"]

#: km/s/Mpc; only the ratio with the speed of light matters here.
HUBBLE_CONSTANT = 70.0
_SPEED_OF_LIGHT = 299_792.458  # km/s


@dataclass
class SkySample:
    """An (ra, dec, redshift) catalog with structure labels.

    ``kind`` is 0 for field galaxies, 1 for cluster members, 2 for
    filament members.
    """

    ra: np.ndarray  # degrees, [0, 360)
    dec: np.ndarray  # degrees, [-90, 90]
    redshift: np.ndarray
    kind: np.ndarray

    @property
    def num_objects(self) -> int:
        """Catalog size."""
        return len(self.redshift)

    def columns(self) -> dict[str, np.ndarray]:
        """Column dict for :meth:`repro.db.Database.create_table`."""
        return {
            "ra": self.ra,
            "dec": self.dec,
            "redshift": self.redshift,
            "kind": self.kind.astype(np.int64),
        }

    def cartesian(self) -> np.ndarray:
        """Comoving-ish 3-D positions via Hubble's law (Mpc), shape (n, 3).

        The paper: "celestial objects farther away are receding faster
        and thus have higher redshift (and these relations are linear)",
        so distance = c z / H0.
        """
        distance = _SPEED_OF_LIGHT * self.redshift / HUBBLE_CONSTANT
        ra_rad = np.radians(self.ra)
        dec_rad = np.radians(self.dec)
        return np.column_stack(
            [
                distance * np.cos(dec_rad) * np.cos(ra_rad),
                distance * np.cos(dec_rad) * np.sin(ra_rad),
                distance * np.sin(dec_rad),
            ]
        )


def sky_survey_sample(
    n: int,
    num_clusters: int = 30,
    cluster_fraction: float = 0.35,
    filament_fraction: float = 0.25,
    finger_of_god_kms: float = 700.0,
    seed: int = 0,
) -> SkySample:
    """Draw a structured (ra, dec, z) catalog on a survey footprint.

    Parameters
    ----------
    finger_of_god_kms:
        Cluster velocity dispersion in km/s; converted to redshift
        scatter purely along the line of sight (the radial "fingers").
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not (0.0 <= cluster_fraction + filament_fraction <= 1.0):
        raise ValueError("cluster + filament fractions must be within [0, 1]")
    rng = np.random.default_rng(seed)
    footprint_ra = (120.0, 250.0)  # the SDSS northern cap, roughly
    footprint_dec = (-5.0, 60.0)
    z_range = (0.02, 0.25)

    n_cluster = int(n * cluster_fraction)
    n_filament = int(n * filament_fraction)
    n_field = n - n_cluster - n_filament

    centers_ra = rng.uniform(*footprint_ra, num_clusters)
    centers_dec = rng.uniform(*footprint_dec, num_clusters)
    centers_z = rng.uniform(*z_range, num_clusters)

    ras, decs, zs, kinds = [], [], [], []

    if n_field:
        ras.append(rng.uniform(*footprint_ra, n_field))
        decs.append(rng.uniform(*footprint_dec, n_field))
        # Volume-weighted field redshifts: dN/dz ~ z^2 in a flat universe.
        zs.append(
            (rng.uniform(z_range[0] ** 3, z_range[1] ** 3, n_field)) ** (1.0 / 3.0)
        )
        kinds.append(np.zeros(n_field, dtype=np.int64))

    if n_cluster:
        which = rng.integers(0, num_clusters, n_cluster)
        angular_size = 0.4 / (1.0 + 20.0 * centers_z[which])  # degrees, shrink with z
        ras.append(centers_ra[which] + rng.normal(0, angular_size))
        decs.append(centers_dec[which] + rng.normal(0, angular_size))
        # Finger of God: peculiar velocities scatter z along the radial axis.
        sigma_z = finger_of_god_kms / _SPEED_OF_LIGHT
        zs.append(centers_z[which] + rng.normal(0, sigma_z, n_cluster))
        kinds.append(np.ones(n_cluster, dtype=np.int64))

    if n_filament:
        a = rng.integers(0, num_clusters, n_filament)
        b = rng.integers(0, num_clusters, n_filament)
        t = rng.uniform(0, 1, n_filament)
        ras.append(centers_ra[a] * (1 - t) + centers_ra[b] * t + rng.normal(0, 0.5, n_filament))
        decs.append(centers_dec[a] * (1 - t) + centers_dec[b] * t + rng.normal(0, 0.5, n_filament))
        zs.append(centers_z[a] * (1 - t) + centers_z[b] * t + rng.normal(0, 0.002, n_filament))
        kinds.append(np.full(n_filament, 2, dtype=np.int64))

    ra = np.mod(np.concatenate(ras), 360.0)
    dec = np.clip(np.concatenate(decs), -90.0, 90.0)
    redshift = np.clip(np.concatenate(zs), 1e-4, None)
    kind = np.concatenate(kinds)
    order = rng.permutation(len(ra))
    return SkySample(ra=ra[order], dec=dec[order], redshift=redshift[order], kind=kind[order])
