"""Synthetic spectra, filter curves, and magnitudes from spectra.

"SDSS spectra are sampled at over 3000 wavelength values, so they are
essentially 3000 dimensional vectors" (§4.2).  This module generates
physically flavored template spectra for the object classes the paper
mines, applies redshift and noise, and integrates spectra through ugriz
filter transmission curves to obtain magnitudes -- the pipeline both the
photometric-redshift experiment (template fitting needs the same physics
it calibrates against) and the spectral-similarity experiment build on.

The templates are simplified but carry the spectroscopically meaningful
features: continuum slope, the 4000 Å break, absorption lines for
early-type galaxies and stars, narrow emission lines for star-forming
galaxies, and broad emission lines on a power-law continuum for quasars.
A parameterized family of star-formation-history spectra stands in for
the Bruzual-Charlot synthesis grid the paper compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "DEFAULT_WAVELENGTHS",
    "SpectrumTemplates",
    "FilterBank",
    "magnitudes_from_spectrum",
]

#: Observed-frame wavelength grid: 3000 samples over 3800-9200 Å
#: (the SDSS spectrograph's range, at the paper's "over 3000" sampling).
DEFAULT_WAVELENGTHS = np.linspace(3800.0, 9200.0, 3000)


def _gaussian_line(
    wavelengths: np.ndarray, center: float, width: float, amplitude: float
) -> np.ndarray:
    return amplitude * np.exp(-0.5 * ((wavelengths - center) / width) ** 2)


@dataclass
class SpectrumTemplates:
    """Rest-frame template spectra evaluated on an observed-frame grid."""

    wavelengths: np.ndarray = field(
        default_factory=lambda: DEFAULT_WAVELENGTHS.copy()
    )

    # -- galaxy templates -----------------------------------------------------

    def elliptical(self, z: float = 0.0) -> np.ndarray:
        """Old red galaxy: red continuum, strong 4000 Å break, absorption."""
        rest = self.wavelengths / (1.0 + z)
        continuum = (rest / 5500.0) ** 1.2
        break_factor = 0.35 + 0.65 / (1.0 + np.exp(-(rest - 4000.0) / 60.0))
        spectrum = continuum * break_factor
        for center, width, depth in ((3933.7, 12.0, 0.30), (3968.5, 12.0, 0.25),
                                     (5175.0, 18.0, 0.18), (5894.0, 12.0, 0.12)):
            spectrum *= 1.0 - _gaussian_line(rest, center, width, depth)
        return spectrum

    def spiral(self, z: float = 0.0) -> np.ndarray:
        """Star-forming disk: bluer continuum, weak break, narrow emission."""
        rest = self.wavelengths / (1.0 + z)
        continuum = (rest / 5500.0) ** 0.2
        break_factor = 0.65 + 0.35 / (1.0 + np.exp(-(rest - 4000.0) / 80.0))
        spectrum = continuum * break_factor
        for center, width, strength in ((3727.0, 6.0, 0.5), (4861.3, 6.0, 0.3),
                                        (4959.0, 6.0, 0.2), (5006.8, 6.0, 0.6),
                                        (6562.8, 7.0, 1.0), (6716.0, 6.0, 0.25)):
            spectrum += _gaussian_line(rest, center, width, strength)
        return spectrum

    def starburst(self, z: float = 0.0) -> np.ndarray:
        """Irregular / starburst: blue continuum, very strong emission."""
        rest = self.wavelengths / (1.0 + z)
        continuum = (rest / 5500.0) ** -0.6
        spectrum = continuum.copy()
        for center, width, strength in ((3727.0, 6.0, 1.2), (4861.3, 6.0, 0.8),
                                        (4959.0, 6.0, 0.7), (5006.8, 6.0, 2.0),
                                        (6562.8, 7.0, 2.5)):
            spectrum += _gaussian_line(rest, center, width, strength)
        return spectrum

    def galaxy_blend(self, mix: float, z: float = 0.0) -> np.ndarray:
        """Continuous galaxy family: 0 = elliptical .. 1 = starburst.

        ``mix`` below 0.5 blends elliptical into spiral; above blends
        spiral into starburst, giving a one-parameter sequence of types.
        """
        if not (0.0 <= mix <= 1.0):
            raise ValueError("mix must be in [0, 1]")
        if mix <= 0.5:
            w = mix / 0.5
            return (1.0 - w) * self.elliptical(z) + w * self.spiral(z)
        w = (mix - 0.5) / 0.5
        return (1.0 - w) * self.spiral(z) + w * self.starburst(z)

    # -- other classes -------------------------------------------------------------

    def quasar(self, z: float = 0.0) -> np.ndarray:
        """Quasar: blue power law with broad emission lines."""
        rest = self.wavelengths / (1.0 + z)
        continuum = (rest / 5500.0) ** -1.5
        spectrum = continuum.copy()
        for center, width, strength in ((2798.0, 45.0, 1.2), (4340.0, 40.0, 0.5),
                                        (4861.3, 45.0, 1.0), (6562.8, 55.0, 1.8)):
            spectrum += _gaussian_line(rest, center, width, strength)
        return spectrum

    def star(self, temperature: float = 5800.0) -> np.ndarray:
        """Stellar spectrum: blackbody continuum with Balmer absorption."""
        lam_m = self.wavelengths * 1e-10
        h, c, kb = 6.626e-34, 2.998e8, 1.381e-23
        planck = 1.0 / (lam_m**5 * (np.expm1(h * c / (lam_m * kb * temperature))))
        spectrum = planck / planck.max()
        depth = np.clip((temperature - 4000.0) / 8000.0, 0.05, 0.5)
        for center in (4101.7, 4340.5, 4861.3, 6562.8):
            spectrum *= 1.0 - _gaussian_line(self.wavelengths, center, 10.0, depth)
        return spectrum

    # -- simulation grid (Bruzual-Charlot analog) ------------------------------------

    def synthesized(self, age: float, dust: float, z: float = 0.0) -> np.ndarray:
        """Parameterized stellar-population spectrum.

        ``age`` in [0, 1] (0 = young/blue, 1 = old/red), ``dust`` in
        [0, 1] (attenuation that reddens the continuum).  A grid over
        (age, dust) is this repo's stand-in for the Bruzual-Charlot
        synthesis library the paper compares observations against.
        """
        if not (0.0 <= age <= 1.0 and 0.0 <= dust <= 1.0):
            raise ValueError("age and dust must be in [0, 1]")
        blend = self.galaxy_blend(1.0 - age, z=z)
        rest = self.wavelengths / (1.0 + z)
        attenuation = np.exp(-dust * 1.2 * (5500.0 / rest - 0.3))
        return blend * attenuation

    def observe(
        self, spectrum: np.ndarray, snr: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Add photon noise at a given median signal-to-noise ratio."""
        if snr <= 0:
            raise ValueError("snr must be positive")
        sigma = np.median(np.abs(spectrum)) / snr
        return spectrum + rng.normal(0.0, sigma, spectrum.shape)


class FilterBank:
    """The five SDSS photometric filters as transmission curves.

    Gaussian transmission profiles centered at the survey's effective
    wavelengths; adequate for reproducing how redshift moves spectral
    features through the bands.
    """

    CENTERS = {"u": 3551.0, "g": 4686.0, "r": 6165.0, "i": 7481.0, "z": 8931.0}
    WIDTHS = {"u": 250.0, "g": 500.0, "r": 500.0, "i": 500.0, "z": 450.0}

    def __init__(self, wavelengths: np.ndarray | None = None):
        self.wavelengths = (
            DEFAULT_WAVELENGTHS.copy() if wavelengths is None else np.asarray(wavelengths)
        )
        self._curves = {
            band: np.exp(
                -0.5 * ((self.wavelengths - self.CENTERS[band]) / self.WIDTHS[band]) ** 2
            )
            for band in ("u", "g", "r", "i", "z")
        }
        self._norms = {
            band: float(np.trapezoid(curve, self.wavelengths))
            for band, curve in self._curves.items()
        }

    @property
    def bands(self) -> tuple[str, ...]:
        """Band names in catalog order."""
        return ("u", "g", "r", "i", "z")

    def transmission(self, band: str) -> np.ndarray:
        """Transmission curve of one band on the wavelength grid."""
        return self._curves[band]

    def magnitudes(self, spectrum: np.ndarray, zeropoints: dict[str, float] | None = None) -> np.ndarray:
        """Magnitudes of a spectrum in all five bands.

        ``m_b = -2.5 log10( \\int F T_b / \\int T_b ) + zp_b``; the
        optional per-band zeropoints model calibration offsets (the
        systematic errors that plague the template-fitting method of
        Figure 7).
        """
        spectrum = np.asarray(spectrum, dtype=np.float64)
        mags = np.empty(5)
        floor = 1e-12
        for idx, band in enumerate(self.bands):
            flux = float(np.trapezoid(spectrum * self._curves[band], self.wavelengths))
            flux = max(flux / self._norms[band], floor)
            zp = 0.0 if zeropoints is None else zeropoints.get(band, 0.0)
            mags[idx] = -2.5 * np.log10(flux) + zp
        return mags


def magnitudes_from_spectrum(
    spectrum: np.ndarray,
    filters: FilterBank,
    zeropoints: dict[str, float] | None = None,
) -> np.ndarray:
    """Convenience wrapper around :meth:`FilterBank.magnitudes`."""
    return filters.magnitudes(spectrum, zeropoints=zeropoints)
