"""Generative model of the SDSS 5-D color (magnitude) space.

Figure 1 of the paper shows the structure this module reproduces: stars
form a tight curved locus (one-dimensional, since stellar colors are
essentially a temperature sequence), galaxies form broader clumps spread
by redshift and type, quasars sit in a compact UV-excess cluster
separated mainly in u-g, and a sprinkle of outliers comes from
measurement and calibration problems.  The five magnitudes are u, g, r,
i, z; class labels follow :data:`CLASS_NAMES`.

The distribution is intentionally awkward for naive indexing: highly
non-uniform density (orders of magnitude contrast between the stellar
locus core and the outskirts), strong correlations (points near lower
dimensional manifolds), and outliers -- the properties §2.1 says "call
for adaptive binning".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CLASS_NAMES",
    "CLASS_STAR",
    "CLASS_GALAXY",
    "CLASS_QUASAR",
    "CLASS_OUTLIER",
    "SdssSample",
    "sdss_color_sample",
    "GaussianMixtureField",
]

CLASS_STAR = 0
CLASS_GALAXY = 1
CLASS_QUASAR = 2
CLASS_OUTLIER = 3

#: Class id -> human name (Figure 1's green / blue / red points).
CLASS_NAMES = {
    CLASS_STAR: "star",
    CLASS_GALAXY: "galaxy",
    CLASS_QUASAR: "quasar",
    CLASS_OUTLIER: "outlier",
}

#: Band order used throughout the project.
BANDS = ("u", "g", "r", "i", "z")


@dataclass
class SdssSample:
    """A labeled sample of the synthetic color space."""

    magnitudes: np.ndarray  # (n, 5) in u, g, r, i, z order
    labels: np.ndarray  # (n,) class ids

    @property
    def num_points(self) -> int:
        """Number of objects."""
        return len(self.labels)

    def columns(self) -> dict[str, np.ndarray]:
        """Column dict ready for :meth:`repro.db.Database.create_table`."""
        out = {band: self.magnitudes[:, idx] for idx, band in enumerate(BANDS)}
        out["cls"] = self.labels.astype(np.int64)
        return out

    def extended_columns(self, seed: int = 0) -> dict[str, np.ndarray]:
        """The Figure 2 schema: dereddened magnitudes, Petrosian radius.

        The paper's verbatim Figure 2 query references ``petroMag_r``,
        ``extinction_r``, ``dered_{g,r,i}`` and ``petroR50_r``.  This
        derives those columns from the sample: per-band Galactic
        extinction (drawn once per object, scaled by the standard
        extinction-law band ratios) plus a half-light radius that is
        larger for galaxies than for point sources.
        """
        rng = np.random.default_rng(seed)
        n = self.num_points
        extinction_r = rng.gamma(2.0, 0.05, n)  # magnitudes of dust dimming
        # Extinction-law ratios relative to r (Cardelli-like, approximate).
        ratios = {"u": 1.87, "g": 1.42, "r": 1.0, "i": 0.76, "z": 0.54}
        out = dict(self.columns())
        out["extinction_r"] = extinction_r
        for idx, band in enumerate(BANDS):
            out[f"dered_{band}"] = self.magnitudes[:, idx] - extinction_r * ratios[band]
        out["petroMag_r"] = self.magnitudes[:, 2]
        # Half-light radius in arcsec: galaxies are extended, stars and
        # quasars are near the PSF size.
        radius = np.where(
            self.labels == CLASS_GALAXY,
            rng.lognormal(0.6, 0.5, n),
            rng.lognormal(0.1, 0.15, n),
        )
        out["petroR50_r"] = radius
        return out

    def colors(self) -> np.ndarray:
        """The four adjacent colors (u-g, g-r, r-i, i-z), shape (n, 4)."""
        mags = self.magnitudes
        return np.column_stack(
            [mags[:, 0] - mags[:, 1], mags[:, 1] - mags[:, 2],
             mags[:, 2] - mags[:, 3], mags[:, 3] - mags[:, 4]]
        )


def _stellar_locus_colors(t: np.ndarray) -> np.ndarray:
    """Colors along the stellar temperature sequence, ``t`` in [0, 1].

    t = 0 is a hot blue star, t = 1 a cool red one; the polynomial shapes
    approximate the curved SDSS stellar locus.
    """
    u_g = 0.6 + 2.3 * t - 0.8 * t**2
    g_r = -0.2 + 1.6 * t
    r_i = -0.1 + 0.6 * t + 0.9 * t**3
    i_z = -0.05 + 0.3 * t + 0.5 * t**3
    return np.column_stack([u_g, g_r, r_i, i_z])


def _galaxy_colors(z: np.ndarray, kind: np.ndarray) -> np.ndarray:
    """Galaxy colors as a function of redshift and type mix in [0, 1].

    kind = 0 is an old red elliptical, kind = 1 a blue star-forming disk;
    redshift moves the 4000 A break through the bands, reddening u-g then
    g-r as z grows.
    """
    red = np.column_stack(
        [1.8 + 1.5 * z, 0.85 + 2.2 * z - 1.3 * z**2, 0.40 + 0.7 * z, 0.35 + 0.3 * z]
    )
    blue = np.column_stack(
        [1.1 + 1.0 * z, 0.45 + 1.4 * z, 0.20 + 0.5 * z, 0.10 + 0.3 * z]
    )
    mix = kind[:, np.newaxis]
    return (1.0 - mix) * red + mix * blue


def _quasar_colors(n: int, rng: np.random.Generator) -> np.ndarray:
    """Quasar colors: UV excess (low u-g), nearly power-law otherwise."""
    u_g = rng.normal(0.05, 0.12, n)
    g_r = rng.normal(0.15, 0.12, n)
    r_i = rng.normal(0.10, 0.10, n)
    i_z = rng.normal(0.05, 0.10, n)
    return np.column_stack([u_g, g_r, r_i, i_z])


def _magnitudes_from_colors(
    colors: np.ndarray, r_mag: np.ndarray
) -> np.ndarray:
    """Assemble (u, g, r, i, z) from adjacent colors and the r magnitude."""
    u_g, g_r, r_i, i_z = colors.T
    r = r_mag
    g = r + g_r
    u = g + u_g
    i = r - r_i
    z = i - i_z
    return np.column_stack([u, g, r, i, z])


def sdss_color_sample(
    n: int,
    seed: int = 0,
    fractions: tuple[float, float, float, float] = (0.55, 0.38, 0.04, 0.03),
    color_noise: float = 0.04,
) -> SdssSample:
    """Draw a labeled sample of the synthetic SDSS color space.

    Parameters
    ----------
    n:
        Number of objects (the paper's table has 270M; Figure 1 plots a
        500K subset).
    fractions:
        Star / galaxy / quasar / outlier mix; defaults roughly follow the
        photometric catalog's composition.
    color_noise:
        Per-color Gaussian measurement scatter in magnitudes.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    fracs = np.asarray(fractions, dtype=np.float64)
    if fracs.min() < 0 or not np.isclose(fracs.sum(), 1.0):
        raise ValueError("fractions must be non-negative and sum to 1")
    rng = np.random.default_rng(seed)
    counts = rng.multinomial(n, fracs)
    n_star, n_gal, n_qso, n_out = (int(c) for c in counts)

    parts: list[np.ndarray] = []
    labels: list[np.ndarray] = []

    if n_star:
        # Beta-distributed temperatures: most stars are cool dwarfs.
        t = rng.beta(2.0, 1.5, n_star)
        colors = _stellar_locus_colors(t)
        colors += rng.normal(0.0, color_noise * 0.8, colors.shape)
        r_mag = 14.0 + 8.0 * rng.beta(3.0, 1.2, n_star)
        parts.append(_magnitudes_from_colors(colors, r_mag))
        labels.append(np.full(n_star, CLASS_STAR))

    if n_gal:
        z = rng.beta(2.0, 4.0, n_gal) * 0.5
        kind = rng.beta(1.4, 1.4, n_gal)
        colors = _galaxy_colors(z, kind)
        colors += rng.normal(0.0, color_noise * 1.5, colors.shape)
        r_mag = 16.0 + 6.5 * rng.beta(3.5, 1.0, n_gal)
        parts.append(_magnitudes_from_colors(colors, r_mag))
        labels.append(np.full(n_gal, CLASS_GALAXY))

    if n_qso:
        colors = _quasar_colors(n_qso, rng)
        r_mag = 17.0 + 5.0 * rng.beta(2.5, 1.2, n_qso)
        parts.append(_magnitudes_from_colors(colors, r_mag))
        labels.append(np.full(n_qso, CLASS_QUASAR))

    if n_out:
        # Measurement / calibration failures: uniform over an inflated box.
        colors = rng.uniform(-2.0, 4.0, (n_out, 4))
        r_mag = rng.uniform(12.0, 26.0, n_out)
        parts.append(_magnitudes_from_colors(colors, r_mag))
        labels.append(np.full(n_out, CLASS_OUTLIER))

    magnitudes = np.vstack(parts)
    label_arr = np.concatenate(labels)
    order = rng.permutation(len(label_arr))
    return SdssSample(magnitudes=magnitudes[order], labels=label_arr[order])


class GaussianMixtureField:
    """A Gaussian mixture with an exact, evaluable density.

    The density-map experiment (E13) needs ground truth: the inverse
    Voronoi cell volume should correlate with the true local density.
    The locus-based generator has no closed-form pdf, so E13 uses this
    mixture instead (same qualitative shape: anisotropic clumps with
    orders-of-magnitude density contrast).
    """

    def __init__(
        self,
        means: np.ndarray,
        scales: np.ndarray,
        weights: np.ndarray,
    ):
        self.means = np.asarray(means, dtype=np.float64)
        self.scales = np.asarray(scales, dtype=np.float64)
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.means.ndim != 2:
            raise ValueError("means must be (k, d)")
        if self.scales.shape != self.means.shape:
            raise ValueError("scales must match means (diagonal covariances)")
        if len(self.weights) != len(self.means):
            raise ValueError("one weight per component")
        if not np.isclose(self.weights.sum(), 1.0):
            raise ValueError("weights must sum to 1")

    @staticmethod
    def default(dim: int = 3, num_components: int = 5, seed: int = 0) -> "GaussianMixtureField":
        """A reproducible anisotropic mixture with strong density contrast."""
        rng = np.random.default_rng(seed)
        means = rng.uniform(-3.0, 3.0, (num_components, dim))
        scales = rng.uniform(0.08, 0.9, (num_components, dim))
        weights = rng.dirichlet(np.ones(num_components) * 2.0)
        return GaussianMixtureField(means, scales, weights)

    @property
    def dim(self) -> int:
        """Ambient dimension."""
        return self.means.shape[1]

    def sample(self, n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``(points, component_labels)``."""
        rng = np.random.default_rng(seed)
        component = rng.choice(len(self.weights), size=n, p=self.weights)
        noise = rng.normal(size=(n, self.dim))
        points = self.means[component] + noise * self.scales[component]
        return points, component

    def pdf(self, points: np.ndarray) -> np.ndarray:
        """Exact mixture density at each point."""
        points = np.asarray(points, dtype=np.float64)
        total = np.zeros(len(points))
        norm_const = (2.0 * np.pi) ** (self.dim / 2.0)
        for mean, scale, weight in zip(self.means, self.scales, self.weights):
            z = (points - mean) / scale
            exponent = -0.5 * np.sum(z * z, axis=1)
            component_norm = norm_const * np.prod(scale)
            total += weight * np.exp(exponent) / component_norm
        return total
