"""Synthetic science datasets standing in for the SDSS archive.

The real 270M-row magnitude table is not redistributable; what the
indexing and mining results depend on is the *shape* of the data (§2.1):
"data points do not fill the parameter space uniformly ... there are
correlations, points are clustered, they lie along (hyper)surfaces or
subspaces ... there are outliers ... these large variations in the
density call for adaptive binning."

* :mod:`repro.datasets.sdss` -- generative model of the 5-D (u, g, r, i,
  z) color space: a curved stellar locus, galaxy clumps, a quasar
  UV-excess cluster, and outliers, each labeled with its spectral class.
  A Gaussian-mixture variant with an exact pdf supports the density-map
  experiment (E13).
* :mod:`repro.datasets.spectra` -- synthetic galaxy / quasar / star
  template spectra (~3000 samples), redshifting, noise, ugriz filter
  curves and magnitudes-from-spectra: the physical pipeline behind both
  photometric redshifts and spectral similarity search.
* :mod:`repro.datasets.redshift` -- reference/unknown photometric
  redshift datasets built from the spectral pipeline.
* :mod:`repro.datasets.workload` -- SkyServer-style complex spatial
  query generator (the Figure 2 family): conjunctions of linear
  inequalities over magnitudes with controlled selectivity, emitted both
  as expression trees and SQL text.
"""

from repro.datasets.sdss import (
    GaussianMixtureField,
    SdssSample,
    sdss_color_sample,
    CLASS_NAMES,
)
from repro.datasets.spectra import (
    FilterBank,
    SpectrumTemplates,
    magnitudes_from_spectrum,
)
from repro.datasets.redshift import PhotozDataset, make_photoz_dataset
from repro.datasets.sky import SkySample, sky_survey_sample
from repro.datasets.workload import QueryWorkload, WorkloadQuery

__all__ = [
    "CLASS_NAMES",
    "SdssSample",
    "sdss_color_sample",
    "GaussianMixtureField",
    "SpectrumTemplates",
    "FilterBank",
    "magnitudes_from_spectrum",
    "PhotozDataset",
    "make_photoz_dataset",
    "SkySample",
    "sky_survey_sample",
    "QueryWorkload",
    "WorkloadQuery",
]
