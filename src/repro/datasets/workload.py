"""SkyServer-style complex spatial query workload (Figure 2).

The paper mined the May 2006 SkyServer log for queries whose WHERE
clauses combine magnitude columns with linear arithmetic and
inequalities; Figure 2 shows one (a quasar/LRG target-selection cut).
This generator emits the same family: conjunctions of halfspaces over the
(u, g, r, i, z) magnitudes -- axis-aligned boxes, color cuts
(differences of adjacent bands), and oblique linear combinations -- with
a selectivity knob, rendered both as expression trees (executable by the
engine) and as SQL text (the display form of Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.expressions import Col, Expr, expression_to_polyhedron, expression_to_sql
from repro.geometry.halfspace import Polyhedron

__all__ = ["WorkloadQuery", "QueryWorkload", "FIGURE2_VERBATIM"]

_BANDS = ("u", "g", "r", "i", "z")


@dataclass
class WorkloadQuery:
    """One generated query in all three representations."""

    expression: Expr
    kind: str
    target_selectivity: float

    def polyhedron(self, columns: list[str] | None = None) -> Polyhedron:
        """The query as a convex polyhedron over the magnitude space."""
        return expression_to_polyhedron(
            self.expression, list(columns) if columns else list(_BANDS)
        )

    def sql(self) -> str:
        """SQL-flavored text of the WHERE clause (Figure 2's form)."""
        return expression_to_sql(self.expression)


class QueryWorkload:
    """Generator of complex spatial queries calibrated on a data sample.

    Selectivity control: thresholds are placed at empirical quantiles of
    the relevant linear form over a calibration sample, so a requested
    selectivity of s yields a query returning roughly s * N rows.

    Query kinds:

    * ``"box"`` -- axis-aligned magnitude window (2-3 active bands).
    * ``"color_cut"`` -- inequalities over adjacent colors (g-r, r-i ...),
      the bread-and-butter SkyServer selection.
    * ``"oblique"`` -- general linear combinations with fractional
      coefficients, like Figure 2's ``(dered_r - dered_i - (dered_g -
      dered_r)/4 - 0.18)`` terms.
    """

    def __init__(self, sample: np.ndarray, seed: int = 0):
        sample = np.asarray(sample, dtype=np.float64)
        if sample.ndim != 2 or sample.shape[1] != 5:
            raise ValueError("sample must be (n, 5) ugriz magnitudes")
        if len(sample) < 10:
            raise ValueError("need at least 10 calibration rows")
        self._sample = sample
        self._rng = np.random.default_rng(seed)

    # -- helpers -----------------------------------------------------------------

    def _band(self, idx: int) -> Col:
        return Col(_BANDS[idx])

    def _form_values(self, coefficients: np.ndarray) -> np.ndarray:
        return self._sample @ coefficients

    def _centered_window(
        self, values: np.ndarray, fraction: float
    ) -> tuple[float, float]:
        """Quantile window of the given mass around a random center."""
        fraction = min(max(fraction, 1e-4), 1.0)
        center = self._rng.uniform(0.25, 0.75)
        lo_q = np.clip(center - fraction / 2.0, 0.0, 1.0 - fraction)
        return (
            float(np.quantile(values, lo_q)),
            float(np.quantile(values, lo_q + fraction)),
        )

    def _linear_expr(self, coefficients: np.ndarray) -> Expr:
        expr: Expr | None = None
        for idx, coef in enumerate(coefficients):
            if coef == 0.0:
                continue
            term = self._band(idx) * float(coef)
            expr = term if expr is None else expr + term
        assert expr is not None
        return expr

    # -- generators ------------------------------------------------------------------

    def box_query(self, selectivity: float) -> WorkloadQuery:
        """Axis-aligned window over 2-3 random bands."""
        active = self._rng.choice(5, size=int(self._rng.integers(2, 4)), replace=False)
        per_axis = selectivity ** (1.0 / len(active))
        expr: Expr | None = None
        for idx in sorted(active):
            coefficients = np.zeros(5)
            coefficients[idx] = 1.0
            lo, hi = self._centered_window(self._form_values(coefficients), per_axis)
            clause = (self._band(idx) >= lo) & (self._band(idx) <= hi)
            expr = clause if expr is None else expr & clause
        return WorkloadQuery(expr, kind="box", target_selectivity=selectivity)

    def color_cut_query(self, selectivity: float) -> WorkloadQuery:
        """Window over two random adjacent colors (g-r style cuts)."""
        pairs = [(0, 1), (1, 2), (2, 3), (3, 4)]
        picks = self._rng.choice(len(pairs), size=2, replace=False)
        per_axis = selectivity**0.5
        expr: Expr | None = None
        for pick in picks:
            a, b = pairs[pick]
            coefficients = np.zeros(5)
            coefficients[a], coefficients[b] = 1.0, -1.0
            lo, hi = self._centered_window(self._form_values(coefficients), per_axis)
            color = self._band(a) - self._band(b)
            clause = (color >= lo) & (color <= hi)
            expr = clause if expr is None else expr & clause
        return WorkloadQuery(expr, kind="color_cut", target_selectivity=selectivity)

    def oblique_query(self, selectivity: float, num_terms: int = 2) -> WorkloadQuery:
        """Figure 2-style oblique cuts with fractional coefficients."""
        per_axis = selectivity ** (1.0 / num_terms)
        expr: Expr | None = None
        for _ in range(num_terms):
            coefficients = np.round(self._rng.uniform(-1.0, 1.0, 5) * 4) / 4.0
            if not np.any(coefficients):
                coefficients[int(self._rng.integers(5))] = 1.0
            lo, hi = self._centered_window(self._form_values(coefficients), per_axis)
            linear = self._linear_expr(coefficients)
            clause = (linear >= lo) & (linear <= hi)
            expr = clause if expr is None else expr & clause
        return WorkloadQuery(expr, kind="oblique", target_selectivity=selectivity)

    def figure2_query(self) -> WorkloadQuery:
        """A fixed rendition of the paper's Figure 2 LRG selection cut.

        The published clause (extinction and Petrosian terms folded into
        constants, since our schema carries only the five magnitudes):
        a brightness cut plus two symmetric cuts on the ``r - i -
        (g - r)/4 - 0.18`` color combination.
        """
        g, r, i = Col("g"), Col("r"), Col("i")
        d_perp = r - i - (g - r) / 4.0 - 0.18
        expr = (
            (r < (13.1 + (7.0 / 3.0) * (g - r) + 4.0 * (r - i) - 4.0 * 0.18))
            & (d_perp < 0.2)
            & (d_perp > -0.2)
            & (r < 19.5)
        )
        return WorkloadQuery(expr, kind="figure2", target_selectivity=float("nan"))

    def mixed(self, count: int, selectivities: list[float]) -> list[WorkloadQuery]:
        """A shuffled mix of all kinds across the requested selectivities."""
        kinds = [self.box_query, self.color_cut_query, self.oblique_query]
        queries = []
        for idx in range(count):
            make = kinds[idx % len(kinds)]
            sel = selectivities[idx % len(selectivities)]
            queries.append(make(sel))
        return queries


#: The paper's Figure 2 WHERE clause, verbatim up to the elided FROM/AND
#: header ("To save space part of the query has been left out"); the
#: visible clauses are reproduced exactly, including the LOG10 surface
#: brightness terms.  Parse with :func:`repro.db.parse_where` and run
#: against :meth:`repro.datasets.SdssSample.extended_columns`.
FIGURE2_VERBATIM = """
(petroMag_r - extinction_r < (13.1 + (7/3) * (dered_g - dered_r) + 4 * (dered_r - dered_i) - 4 * 0.18))
and ((dered_r - dered_i - (dered_g - dered_r)/4 - 0.18) < 0.2)
and ((dered_r - dered_i - (dered_g - dered_r)/4 - 0.18) > -0.2)
and ((petroMag_r - extinction_r + 2.5 * LOG10(2 * 3.1415 * petroR50_r * petroR50_r)) < 24.2)
or (
  (petroMag_r - extinction_r < 19.5)
  and ((dered_r - dered_i - (dered_g - dered_r)/4 - 0.18) > (0.45 - 4 * (dered_g - dered_r)))
  and ((dered_g - dered_r) > (1.35 + 0.25 * (dered_r - dered_i)))
)
and ((petroMag_r - extinction_r + 2.5 * LOG10(2 * 3.1415 * petroR50_r * petroR50_r)) < 23.3)
"""
