"""Reusable pipes: the ParaView-filter analogs (§5).

"Pipes are input/output objects which transform their input in some
manner (they correspond to ParaView's filters).  ParaView demonstrates
that this is a very powerful paradigm: well designed pipes can be used
in many visualization contexts."
"""

from __future__ import annotations

import numpy as np

from repro.geometry.boxes import Box
from repro.viz.geometry_set import GeometrySet
from repro.viz.plugin import Pipe

__all__ = ["SubsamplePipe", "ClipBoxPipe", "ColorByDensityPipe"]


class SubsamplePipe(Pipe):
    """Randomly keeps at most ``max_points`` points (deterministic seed).

    The budget guard in front of a renderer: "visualizing more than a
    few million objects is not possible on consumer-grade PCs, our
    target architecture" (§5).
    """

    def __init__(self, max_points: int, seed: int = 0):
        if max_points < 1:
            raise ValueError("max_points must be >= 1")
        self.max_points = max_points
        self._rng = np.random.default_rng(seed)

    def process(self, geometry: GeometrySet) -> GeometrySet:
        """Pass through unless the point budget is exceeded."""
        if geometry.num_points <= self.max_points:
            return geometry
        keep = self._rng.choice(
            geometry.num_points, self.max_points, replace=False
        )
        keep.sort()
        attributes = dict(geometry.attributes)
        for key, value in list(attributes.items()):
            if isinstance(value, np.ndarray) and len(value) == geometry.num_points:
                attributes[key] = value[keep]
        return GeometrySet(
            points=geometry.points[keep],
            lines=geometry.lines,
            boxes=geometry.boxes,
            attributes=attributes,
        )


class ClipBoxPipe(Pipe):
    """Drops primitives outside a clip box (a hard view frustum)."""

    def __init__(self, box: Box):
        self.box = box

    def process(self, geometry: GeometrySet) -> GeometrySet:
        """Clip points and lines to the box (boxes pass if intersecting)."""
        points = geometry.points
        if len(points):
            points = points[self.box.contains_points(points)]
        lines = geometry.lines
        if len(lines):
            keep = self.box.contains_points(
                lines[:, 0, :]
            ) | self.box.contains_points(lines[:, 1, :])
            lines = lines[keep]
        boxes = geometry.boxes
        if len(boxes):
            keep = np.array(
                [self.box.intersects(Box(lo, hi)) for lo, hi in boxes]
            )
            boxes = boxes[keep]
        return GeometrySet(
            points=points, lines=lines, boxes=boxes,
            attributes=dict(geometry.attributes),
        )


class ColorByDensityPipe(Pipe):
    """Attaches a per-point local-density color scalar.

    The Figure 16 coloring idea ("colors correspond to the volume of
    cells") applied to point clouds: density estimated by the k-th
    neighbor distance within the frame's own points.
    """

    def __init__(self, k: int = 8):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def process(self, geometry: GeometrySet) -> GeometrySet:
        """Add a ``point_density`` attribute (higher = denser)."""
        attributes = dict(geometry.attributes)
        points = geometry.points
        if len(points) > self.k:
            from scipy.spatial import cKDTree

            dists, _ = cKDTree(points).query(points, k=self.k + 1)
            radius = np.maximum(dists[:, -1], 1e-12)
            attributes["point_density"] = 1.0 / radius ** points.shape[1]
        else:
            attributes["point_density"] = np.ones(len(points))
        return GeometrySet(
            points=points,
            lines=geometry.lines,
            boxes=geometry.boxes,
            attributes=attributes,
        )
