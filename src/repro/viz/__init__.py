"""Adaptive, event-driven visualization pipeline (§5).

The paper's client renders with Managed DirectX; its *contribution* is
the architecture, which is fully reproducible headless:

* **Plugins** (:mod:`repro.viz.plugin`): ``Producer`` plugins are the
  source of all geometry; ``Pipe`` plugins transform it; the application
  only knows the interfaces (the paper's Figure 12).
* **Events** (:mod:`repro.viz.events`): plugins register with a
  ``Registry`` for camera-change events and signal the application with
  ``signal_production`` when new geometry is ready -- the non-blocking
  two-way handshake of Figure 13.
* **Pipeline host** (:mod:`repro.viz.pipeline`): instantiates a plugin
  graph from a config mapping (the paper's XML), runs the frame cycle,
  and supports both single-threaded and worker-thread producers, with
  ``get_output`` returning ``None`` instead of blocking when the worker
  holds the lock.
* **Caching** (:mod:`repro.viz.cache`): producers keep their last n
  result sets keyed by view, so "when zooming in and then back out, the
  cache reduces time delay to zero".
* **Producers** (:mod:`repro.viz.producers`): adaptive point clouds over
  the layered grid (Figure 14), kd-tree boxes at view-dependent depth
  (Figure 15), and multi-level Delaunay / Voronoi structure (Figure 16).
"""

from repro.viz.camera import Camera
from repro.viz.geometry_set import GeometrySet
from repro.viz.events import Event, Registry
from repro.viz.plugin import Consumer, Pipe, Plugin, Producer
from repro.viz.pipeline import PluginHost
from repro.viz.cache import GeometryCache
from repro.viz.export import ExportConsumer
from repro.viz.pipes import ClipBoxPipe, ColorByDensityPipe, SubsamplePipe
from repro.viz.producers import (
    AdaptivePointCloudProducer,
    DelaunayEdgeProducer,
    KdBoxProducer,
    RecordingConsumer,
    VoronoiCellProducer,
)

__all__ = [
    "Camera",
    "GeometrySet",
    "Event",
    "Registry",
    "Plugin",
    "Producer",
    "Pipe",
    "Consumer",
    "PluginHost",
    "GeometryCache",
    "SubsamplePipe",
    "ClipBoxPipe",
    "ColorByDensityPipe",
    "ExportConsumer",
    "AdaptivePointCloudProducer",
    "KdBoxProducer",
    "DelaunayEdgeProducer",
    "VoronoiCellProducer",
    "RecordingConsumer",
]
