"""The plugin host: graph wiring and the frame cycle.

"On startup, the application ... loads the configuration XML file, which
contains the plugin graph.  The appropriate plugins are then
instantiated, each is passed a separate Registry object ... and Start()
is called" (§5.1).  Here the graph arrives as a list of node specs
(name, plugin instance, input names); the host wires a private Registry
per plugin, broadcasts input events, and on each frame cycle drains
producers that signaled production, pushing their geometry through the
connected pipes into the consumers.

A producer whose :meth:`~repro.viz.plugin.Producer.get_output` returns
``None`` (worker mid-swap) stays pending and is retried next frame --
"the main application will attempt to extract the 3D geometry in the
next frame cycle".
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.viz.camera import Camera
from repro.viz.events import Registry
from repro.viz.geometry_set import GeometrySet
from repro.viz.plugin import Consumer, Pipe, Plugin, Producer

__all__ = ["PluginHost", "PluginNode"]


@dataclass
class PluginNode:
    """One node of the plugin graph."""

    name: str
    plugin: Plugin
    inputs: list[str]


class PluginHost:
    """Hosts a plugin graph and runs the frame cycle."""

    def __init__(self, nodes: list[PluginNode] | list[dict]):
        self._nodes: dict[str, PluginNode] = {}
        self._registries: dict[str, Registry] = {}
        self._order: list[str] = []
        for raw in nodes:
            node = raw if isinstance(raw, PluginNode) else PluginNode(
                name=raw["name"],
                plugin=raw["plugin"],
                inputs=list(raw.get("inputs", [])),
            )
            if node.name in self._nodes:
                raise ValueError(f"duplicate plugin name {node.name!r}")
            self._nodes[node.name] = node
        self._validate_graph()
        self._order = self._topological_order()
        self._started = False
        self.frames_run = 0

    # -- graph checks ---------------------------------------------------------

    def _validate_graph(self) -> None:
        for node in self._nodes.values():
            for input_name in node.inputs:
                if input_name not in self._nodes:
                    raise ValueError(
                        f"plugin {node.name!r} references unknown input {input_name!r}"
                    )
            if isinstance(node.plugin, Producer) and node.inputs:
                raise ValueError(f"producer {node.name!r} cannot have inputs")
            if isinstance(node.plugin, Pipe) and len(node.inputs) != 1:
                raise ValueError(f"pipe {node.name!r} needs exactly one input")
            if isinstance(node.plugin, Consumer) and not node.inputs:
                raise ValueError(f"consumer {node.name!r} needs at least one input")

    def _topological_order(self) -> list[str]:
        order: list[str] = []
        seen: set[str] = set()
        visiting: set[str] = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            if name in visiting:
                raise ValueError(f"plugin graph has a cycle through {name!r}")
            visiting.add(name)
            for dep in self._nodes[name].inputs:
                visit(dep)
            visiting.discard(name)
            seen.add(name)
            order.append(name)

        for name in self._nodes:
            visit(name)
        return order

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Initialize and start every plugin (producers may spawn workers)."""
        if self._started:
            return
        for name, node in self._nodes.items():
            registry = Registry()
            if isinstance(node.plugin, Producer):
                registry.bind_producer(node.plugin)
            if not node.plugin.initialize(registry):
                raise RuntimeError(f"plugin {name!r} failed to initialize")
            self._registries[name] = registry
        for name, node in self._nodes.items():
            if not node.plugin.start():
                raise RuntimeError(f"plugin {name!r} failed to start")
        self._started = True

    def stop(self) -> None:
        """Stop every plugin (joins worker threads)."""
        for node in self._nodes.values():
            node.plugin.stop()
        self._started = False

    def shutdown(self) -> None:
        """Stop and release every plugin."""
        self.stop()
        for node in self._nodes.values():
            node.plugin.shutdown()

    # -- events ----------------------------------------------------------------------

    def set_camera(self, camera: Camera) -> None:
        """Broadcast a camera change to every plugin's registry."""
        if not self._started:
            raise RuntimeError("host not started")
        for registry in self._registries.values():
            registry.fire_camera_changed(camera)

    def suggest_initial_camera(self) -> Camera | None:
        """First non-None producer suggestion, in graph order."""
        for name in self._order:
            plugin = self._nodes[name].plugin
            if isinstance(plugin, Producer):
                suggestion = plugin.suggest_initial()
                if suggestion is not None:
                    return suggestion
        return None

    # -- frame cycle -------------------------------------------------------------------

    def frame(self) -> dict[str, GeometrySet]:
        """Run one frame cycle; returns geometry delivered per producer."""
        if not self._started:
            raise RuntimeError("host not started")
        self.frames_run += 1
        delivered: dict[str, GeometrySet] = {}
        for name in self._order:
            node = self._nodes[name]
            if not isinstance(node.plugin, Producer):
                continue
            registry = self._registries[name]
            if not registry.production_pending():
                continue
            geometry = node.plugin.get_output()
            if geometry is None:
                # Worker mid-swap: retry next frame (flag stays set).
                continue
            registry.clear_production()
            delivered[name] = geometry
            self._dispatch(name, geometry)
        return delivered

    def _dispatch(self, source: str, geometry: GeometrySet) -> None:
        """Push geometry through pipes to consumers, breadth-first."""
        frontier = [(source, geometry)]
        while frontier:
            origin, payload = frontier.pop()
            for name in self._order:
                node = self._nodes[name]
                if origin not in node.inputs:
                    continue
                if isinstance(node.plugin, Pipe):
                    frontier.append((name, node.plugin.process(payload)))
                elif isinstance(node.plugin, Consumer):
                    node.plugin.consume(payload)

    def run_until_idle(
        self, max_frames: int = 100, frame_delay: float = 0.005
    ) -> int:
        """Run frames until no production is pending; returns frames used.

        Supports threaded producers: between frames the host sleeps
        briefly, giving workers time to finish and signal.
        """
        for count in range(1, max_frames + 1):
            self.frame()
            pending = any(
                registry.production_pending()
                for registry in self._registries.values()
            )
            busy = any(
                not node.plugin.is_idle() for node in self._nodes.values()
            )
            if not pending and not busy:
                return count
            time.sleep(frame_delay)
        return max_frames

    @staticmethod
    def from_config(
        config: dict | str,
        factories: dict,
    ) -> "PluginHost":
        """Build a host from a config mapping or JSON file (the paper's XML).

        "It then loads the configuration XML file, which contains the
        plugin graph" (§5.1).  The config has the shape::

            {"plugins": [
                {"name": "points", "type": "point_cloud", "args": {...}},
                {"name": "screen", "type": "recorder", "inputs": ["points"]}
            ]}

        ``factories`` maps each ``type`` to a callable receiving the
        ``args`` mapping and returning a plugin instance (the analog of
        the reflection-based DLL discovery).
        """
        import json
        from pathlib import Path

        if isinstance(config, str):
            config = json.loads(Path(config).read_text(encoding="utf-8"))
        nodes = []
        for spec in config["plugins"]:
            kind = spec["type"]
            if kind not in factories:
                raise KeyError(f"no factory for plugin type {kind!r}")
            plugin = factories[kind](**spec.get("args", {}))
            nodes.append(
                {
                    "name": spec["name"],
                    "plugin": plugin,
                    "inputs": spec.get("inputs", []),
                }
            )
        return PluginHost(nodes)

    def registry_of(self, name: str) -> Registry:
        """The registry wired to a named plugin (introspection/tests)."""
        return self._registries[name]

    def plugin_of(self, name: str) -> Plugin:
        """The plugin instance behind a node name."""
        return self._nodes[name].plugin
