"""Concrete producers: the paper's three visualization use-cases (§5.2).

* :class:`AdaptivePointCloudProducer` -- "responds to camera changes by
  first checking its local cache, and if necessary querying the server
  for new points to ensure that there are at least n (we use n = 100K)
  objects in view" (Figure 14); backed by the layered grid index.
* :class:`KdBoxProducer` -- "queries the kd-tree of the 270M magnitude
  table and displays the sub-tree according to the visualization camera
  at an appropriate depth so that at least n (we use n = 500) kd-boxes
  are visible" (Figure 15).
* :class:`DelaunayEdgeProducer` / :class:`VoronoiCellProducer` -- the
  3-level adaptive Delaunay / Voronoi visualization: "the plugins query
  the Delaunay graph of the 1K point table, and if not enough edges are
  returned, it goes on to the 10K and subsequently 100K tables" (Figure
  16); the Voronoi plugin derives the induced cell skeleton from the
  Delaunay structure, colored by cell volume.

Every producer supports single-threaded (compute inside the event
handler) and multi-threaded (worker thread + non-blocking
``get_output``) operation -- the two models of §5.1.
"""

from __future__ import annotations

import queue
import threading

import numpy as np

from repro.core.kdtree import KdTreeIndex
from repro.core.layered_grid import LayeredGridIndex
from repro.geometry.boxes import Box
from repro.tessellation.delaunay import DelaunayGraph
from repro.tessellation.density import voronoi_volume_estimates
from repro.viz.cache import GeometryCache
from repro.viz.camera import Camera
from repro.viz.events import Registry
from repro.viz.geometry_set import GeometrySet
from repro.viz.plugin import Consumer, Producer

__all__ = [
    "ThreadedProducerBase",
    "AdaptivePointCloudProducer",
    "KdBoxProducer",
    "DelaunayEdgeProducer",
    "VoronoiCellProducer",
    "RecordingConsumer",
]


class ThreadedProducerBase(Producer):
    """Shared camera-driven production machinery.

    Single-threaded mode computes geometry inside the camera event
    handler.  Multi-threaded mode pushes cameras onto a queue drained by
    a worker thread; the completed GeometrySet is swapped in under a
    lock, ``get_output`` uses a *non-blocking* acquire and returns
    ``None`` when the worker holds the lock -- the paper's handshake:
    "the typical implementation of the GetOutput() function tries to
    obtain a lock using a non-blocking call, and if it fails, it returns
    null" (§5.1).
    """

    def __init__(self, threaded: bool = False, cache_size: int = 8):
        self.threaded = threaded
        self.cache = GeometryCache(cache_size)
        self._lock = threading.Lock()
        self._latest: GeometrySet | None = None
        self._queue: "queue.Queue[Camera | None]" = queue.Queue()
        self._worker: threading.Thread | None = None
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self.db_queries = 0

    def is_idle(self) -> bool:
        """No queued cameras and no computation in progress."""
        with self._inflight_lock:
            return self._inflight == 0

    # Subclasses implement the actual geometry computation.
    def _compute(self, camera: Camera) -> GeometrySet:
        raise NotImplementedError

    def initialize(self, registry: Registry) -> bool:
        super().initialize(registry)
        registry.camera_box_changed.subscribe(self._on_camera_changed)
        return True

    def start(self) -> bool:
        if self.threaded and self._worker is None:
            self._worker = threading.Thread(target=self._worker_loop, daemon=True)
            self._worker.start()
        return True

    def stop(self) -> bool:
        if self._worker is not None:
            self._queue.put(None)
            self._worker.join(timeout=5.0)
            self._worker = None
        return True

    def _on_camera_changed(self, camera: Camera) -> None:
        with self._inflight_lock:
            self._inflight += 1
        if self.threaded:
            self._queue.put(camera)
        else:
            self._produce(camera)

    def _worker_loop(self) -> None:
        while True:
            camera = self._queue.get()
            if camera is None:
                return
            # Coalesce: only the freshest camera matters.
            while True:
                try:
                    newer = self._queue.get_nowait()
                except queue.Empty:
                    break
                if newer is None:
                    self._queue.put(None)
                    break
                with self._inflight_lock:
                    self._inflight -= 1  # superseded camera, never produced
                camera = newer
            self._produce(camera)

    def _produce(self, camera: Camera) -> None:
        try:
            key = camera.quantized_key()
            geometry = self.cache.get(key)
            if geometry is None:
                geometry = self._compute(camera)
                self.cache.put(key, geometry)
            with self._lock:
                self._latest = geometry
            self.registry.signal_production(self)
        finally:
            with self._inflight_lock:
                self._inflight -= 1

    def get_output(self) -> GeometrySet | None:
        acquired = self._lock.acquire(blocking=False)
        if not acquired:
            return None
        try:
            return self._latest
        finally:
            self._lock.release()


class AdaptivePointCloudProducer(ThreadedProducerBase):
    """Adaptive point cloud over a :class:`LayeredGridIndex` (Figure 14)."""

    def __init__(
        self,
        grid: LayeredGridIndex,
        target_points: int = 1000,
        threaded: bool = False,
        cache_size: int = 8,
    ):
        super().__init__(threaded=threaded, cache_size=cache_size)
        self.grid = grid
        self.target_points = target_points

    def suggest_initial(self) -> Camera:
        """Start looking at the whole dataset."""
        return Camera(self.grid.bounds)

    def _compute(self, camera: Camera) -> GeometrySet:
        self.db_queries += 1
        result = self.grid.sample_box(camera.view_box, self.target_points)
        return GeometrySet(
            points=result.points,
            attributes={
                "row_ids": result.row_ids,
                "layers_used": result.layers_used,
                "pages_touched": result.stats.pages_touched,
            },
        )


class KdBoxProducer(ThreadedProducerBase):
    """Kd-tree boxes at a view-appropriate depth (Figure 15)."""

    def __init__(
        self,
        index: KdTreeIndex,
        target_boxes: int = 50,
        threaded: bool = False,
        cache_size: int = 8,
    ):
        super().__init__(threaded=threaded, cache_size=cache_size)
        self.index = index
        self.target_boxes = target_boxes

    def suggest_initial(self) -> Camera:
        """Start at the root bounding box."""
        return Camera(self.index.tree.tight_box(1))

    def _compute(self, camera: Camera) -> GeometrySet:
        self.db_queries += 1
        tree = self.index.tree
        view = camera.view_box
        # Breadth-first deepening: expand the visible frontier until at
        # least target_boxes boxes intersect the view (or we hit leaves).
        frontier = [1]
        while True:
            visible = [
                node for node in frontier
                if tree.leaf_size(node) > 0 and tree.tight_box(node).intersects(view)
            ]
            expandable = [n for n in visible if not tree.is_leaf(n)]
            if len(visible) >= self.target_boxes or not expandable:
                break
            frontier = [
                child
                for node in frontier
                for child in (
                    (2 * node, 2 * node + 1) if not tree.is_leaf(node) else (node,)
                )
            ]
        if not visible:
            return GeometrySet(boxes=np.empty((0, 2, tree.dim)))
        boxes = np.stack(
            [
                np.stack([tree.tight_box(n).lo, tree.tight_box(n).hi])
                for n in visible
            ]
        )
        depths = np.array([int(np.floor(np.log2(n))) + 1 for n in visible])
        return GeometrySet(boxes=boxes, attributes={"depths": depths})


class DelaunayEdgeProducer(ThreadedProducerBase):
    """Multi-level Delaunay edges clipped to the view (Figure 16, edges)."""

    def __init__(
        self,
        levels: list[DelaunayGraph],
        target_edges: int = 100,
        threaded: bool = False,
        cache_size: int = 8,
    ):
        if hasattr(levels, "graphs"):  # accept a DelaunayPyramid directly
            levels = levels.graphs
        if not levels:
            raise ValueError("need at least one Delaunay level")
        super().__init__(threaded=threaded, cache_size=cache_size)
        self.levels = list(levels)
        self.target_edges = target_edges
        self._level_edges = [graph.edges() for graph in self.levels]

    def suggest_initial(self) -> Camera:
        """Start looking at the coarsest level's bounding box."""
        return Camera(Box.from_points(self.levels[0].seeds))

    def _visible_edges(self, level: int, view: Box) -> np.ndarray:
        graph = self.levels[level]
        edges = self._level_edges[level]
        if len(edges) == 0:
            return np.empty((0, 2, graph.dim))
        a_in = view.contains_points(graph.seeds[edges[:, 0]])
        b_in = view.contains_points(graph.seeds[edges[:, 1]])
        keep = a_in | b_in
        segments = np.stack(
            [graph.seeds[edges[keep, 0]], graph.seeds[edges[keep, 1]]], axis=1
        )
        return segments

    def _compute(self, camera: Camera) -> GeometrySet:
        self.db_queries += 1
        chosen_level = 0
        segments = self._visible_edges(0, camera.view_box)
        for level in range(1, len(self.levels)):
            if len(segments) >= self.target_edges:
                break
            chosen_level = level
            segments = self._visible_edges(level, camera.view_box)
        return GeometrySet(
            lines=segments, attributes={"level": chosen_level}
        )


class VoronoiCellProducer(ThreadedProducerBase):
    """Induced Voronoi cell skeleton, colored by cell volume (Figure 16)."""

    def __init__(
        self,
        levels: list[DelaunayGraph],
        target_cells: int = 20,
        threaded: bool = False,
        cache_size: int = 8,
    ):
        if hasattr(levels, "graphs"):  # accept a DelaunayPyramid directly
            levels = levels.graphs
        if not levels:
            raise ValueError("need at least one Delaunay level")
        super().__init__(threaded=threaded, cache_size=cache_size)
        self.levels = list(levels)
        self.target_cells = target_cells
        self._volumes = [voronoi_volume_estimates(graph) for graph in self.levels]
        self._centers = []
        self._simplex_neighbors = []
        for graph in self.levels:
            centers, _ = graph.circumcenters()
            self._centers.append(centers)
            self._simplex_neighbors.append(graph._tri.neighbors)

    def suggest_initial(self) -> Camera:
        """Start looking at the coarsest level's bounding box."""
        return Camera(Box.from_points(self.levels[0].seeds))

    def _cell_skeleton(self, level: int, view: Box) -> tuple[np.ndarray, np.ndarray]:
        """Voronoi edges (adjacent circumcenters around visible seeds)."""
        graph = self.levels[level]
        centers = self._centers[level]
        neighbors = self._simplex_neighbors[level]
        visible_seeds = np.flatnonzero(view.contains_points(graph.seeds))
        visible_set = set(visible_seeds.tolist())
        segments: list[np.ndarray] = []
        seg_volumes: list[float] = []
        simplices = graph.simplices
        for simplex_idx, simplex in enumerate(simplices):
            shared = visible_set.intersection(simplex.tolist())
            if not shared:
                continue
            center_a = centers[simplex_idx]
            if not np.all(np.isfinite(center_a)):
                continue
            for other_idx in neighbors[simplex_idx]:
                if other_idx <= simplex_idx:  # dedupe + skip hull (-1)
                    continue
                common = shared.intersection(simplices[other_idx].tolist())
                if not common:
                    continue
                center_b = centers[other_idx]
                if not np.all(np.isfinite(center_b)):
                    continue
                segments.append(np.stack([center_a, center_b]))
                seed = next(iter(common))
                seg_volumes.append(float(self._volumes[level][seed]))
        if not segments:
            return np.empty((0, 2, graph.dim)), np.empty(0)
        return np.stack(segments), np.array(seg_volumes)

    def _compute(self, camera: Camera) -> GeometrySet:
        self.db_queries += 1
        view = camera.view_box
        chosen_level = 0
        for level in range(len(self.levels)):
            chosen_level = level
            visible = int(
                np.count_nonzero(view.contains_points(self.levels[level].seeds))
            )
            if visible >= self.target_cells:
                break
        segments, volumes = self._cell_skeleton(chosen_level, view)
        return GeometrySet(
            lines=segments,
            attributes={"level": chosen_level, "cell_volumes": volumes},
        )


class RecordingConsumer(Consumer):
    """Stores every received geometry set (the test/benchmark renderer)."""

    def __init__(self) -> None:
        self.frames: list[GeometrySet] = []

    def consume(self, geometry: GeometrySet) -> None:
        """Record one frame of geometry."""
        self.frames.append(geometry)

    @property
    def total_points(self) -> int:
        """Sum of point counts over all recorded frames."""
        return sum(frame.num_points for frame in self.frames)

    def last(self) -> GeometrySet | None:
        """The most recent frame, if any."""
        return self.frames[-1] if self.frames else None
