"""The virtual camera: a view box over the data space.

"The key idea is adaptive visualization: to choose the level of detail
depending on where the user's virtual camera is" (§5).  Headless, the
camera reduces to the axis-aligned box of space currently in view; zoom
and pan are box transformations, and each change fires the registry's
camera event.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.boxes import Box

__all__ = ["Camera"]


@dataclass
class Camera:
    """A camera defined by its view box."""

    view_box: Box

    @property
    def center(self) -> np.ndarray:
        """Center of the view."""
        return self.view_box.center

    @property
    def extent(self) -> float:
        """Largest side of the view box (the zoom level proxy)."""
        return float(self.view_box.widths.max())

    def zoomed(self, factor: float) -> "Camera":
        """A camera zoomed about the center; factor < 1 zooms in."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        half = self.view_box.widths * factor / 2.0
        center = self.view_box.center
        return Camera(Box(center - half, center + half))

    def panned(self, delta: np.ndarray) -> "Camera":
        """A camera translated by ``delta``."""
        delta = np.asarray(delta, dtype=np.float64)
        return Camera(Box(self.view_box.lo + delta, self.view_box.hi + delta))

    def moved_to(self, center: np.ndarray) -> "Camera":
        """A camera re-centered on ``center`` at the same zoom."""
        center = np.asarray(center, dtype=np.float64)
        half = self.view_box.widths / 2.0
        return Camera(Box(center - half, center + half))

    def quantized_key(self, resolution: float = 1e-6) -> tuple:
        """A hashable key of the view for geometry caching."""
        lo = np.round(self.view_box.lo / resolution).astype(np.int64)
        hi = np.round(self.view_box.hi / resolution).astype(np.int64)
        return tuple(lo.tolist()) + tuple(hi.tolist())
