"""Geometry transfer objects between plugins and the application.

The paper's plugin interfaces exchange ``GeometrySet`` objects -- "the
definitions of data structures used to transfer 3D geometry data to and
from plugins" (§5.1).  Headless, a GeometrySet carries point, line, and
box primitives as arrays plus free-form attributes (colors, ids).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GeometrySet"]


@dataclass
class GeometrySet:
    """A bundle of geometric primitives produced by one plugin cycle.

    Attributes
    ----------
    points:
        ``(n, d)`` point coordinates (may be empty).
    lines:
        ``(m, 2, d)`` line segments as endpoint pairs.
    boxes:
        ``(b, 2, d)`` axis-aligned boxes as (lo, hi) pairs.
    attributes:
        Named per-primitive arrays (e.g. ``"point_color"``) or scalars.
    """

    points: np.ndarray = field(default_factory=lambda: np.empty((0, 3)))
    lines: np.ndarray = field(default_factory=lambda: np.empty((0, 2, 3)))
    boxes: np.ndarray = field(default_factory=lambda: np.empty((0, 2, 3)))
    attributes: dict = field(default_factory=dict)

    @property
    def num_points(self) -> int:
        """Point count."""
        return len(self.points)

    @property
    def num_lines(self) -> int:
        """Line-segment count."""
        return len(self.lines)

    @property
    def num_boxes(self) -> int:
        """Box count."""
        return len(self.boxes)

    def is_empty(self) -> bool:
        """Whether the set carries no primitives at all."""
        return self.num_points == 0 and self.num_lines == 0 and self.num_boxes == 0

    def merged_with(self, other: "GeometrySet") -> "GeometrySet":
        """Concatenate two geometry sets (attributes from self win)."""

        def cat(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            if len(a) == 0:
                return b
            if len(b) == 0:
                return a
            return np.concatenate([a, b])

        merged_attrs = dict(other.attributes)
        merged_attrs.update(self.attributes)
        return GeometrySet(
            points=cat(self.points, other.points),
            lines=cat(self.lines, other.lines),
            boxes=cat(self.boxes, other.boxes),
            attributes=merged_attrs,
        )
