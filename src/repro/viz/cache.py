"""Per-producer geometry caches.

"Our plugins save the last n result sets, and when a camera change event
is fired, they first look for geometry in this local, in-memory cache.
The database is contacted only if additional geometry is needed.  In
practice, when zooming in and then back out, the cache reduces time
delay to zero" (§5.1).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.viz.geometry_set import GeometrySet

__all__ = ["GeometryCache"]


class GeometryCache:
    """LRU cache of the last n geometry results keyed by view."""

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, GeometrySet] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> GeometrySet | None:
        """Cached geometry for a view key, updating LRU order."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, geometry: GeometrySet) -> None:
        """Insert a result, evicting the least recently used beyond capacity."""
        self._entries[key] = geometry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
