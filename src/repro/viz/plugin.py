"""Plugin interfaces: Plugin, Producer, Pipe, Consumer.

A Python rendering of the paper's Figure 12 interfaces::

    public interface Plugin   { Initialize(Registry); Start(); Stop(); Shutdown(); }
    public interface Producer : Plugin { GeometrySet GetOutput(); Camera SuggestInitial(); }

Producers "are, from the visualization application's perspective, the
source of all geometry data"; Pipes "are input/output objects which
transform their input in some manner" (ParaView's filters); Consumers
terminate a pipeline (the renderer -- here, typically a recorder).
"""

from __future__ import annotations

import abc

from repro.viz.camera import Camera
from repro.viz.events import Registry
from repro.viz.geometry_set import GeometrySet

__all__ = ["Plugin", "Producer", "Pipe", "Consumer"]


class Plugin(abc.ABC):
    """Lifecycle shared by every plugin."""

    def initialize(self, registry: Registry) -> bool:
        """Receive the registry; subscribe to events here.  True = ok."""
        self.registry = registry
        return True

    def start(self) -> bool:
        """Begin producing/consuming (spawn worker threads if any)."""
        return True

    def stop(self) -> bool:
        """Pause activity (join worker threads)."""
        return True

    def shutdown(self) -> None:
        """Release resources; the plugin will not be used again."""

    def is_idle(self) -> bool:
        """Whether the plugin has no work in flight.

        The host's ``run_until_idle`` polls this; threaded producers
        override it to report queued or in-progress computations.
        """
        return True


class Producer(Plugin):
    """Output-only plugin: the source of all geometry."""

    @abc.abstractmethod
    def get_output(self) -> GeometrySet | None:
        """The latest completed geometry, or ``None`` when unavailable.

        Must never block: in the multithreaded case this tries a
        non-blocking lock and returns ``None`` if the worker is mid-swap;
        the host simply retries next frame (§5.1).
        """

    def suggest_initial(self) -> Camera | None:
        """A sensible starting camera, if the producer knows one."""
        return None


class Pipe(Plugin):
    """Transforms geometry in a pipeline (ParaView-filter analog)."""

    @abc.abstractmethod
    def process(self, geometry: GeometrySet) -> GeometrySet:
        """Map input geometry to output geometry."""


class Consumer(Plugin):
    """Terminal plugin receiving the pipeline's output each frame."""

    @abc.abstractmethod
    def consume(self, geometry: GeometrySet) -> None:
        """Accept one frame's geometry."""
