"""Exporting pipeline geometry to files for external viewers.

The paper's first workflow wrote geometry "to a file in ParaView's VTP
format" before the custom client existed (§5).  :class:`ExportConsumer`
is that bridge for this reproduction: a terminal plugin that writes each
delivered GeometrySet to disk -- points as CSV (with any per-point
attributes as extra columns) and lines/boxes as Wavefront OBJ, both
formats every 3-D tool ingests.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.viz.geometry_set import GeometrySet
from repro.viz.plugin import Consumer

__all__ = ["ExportConsumer"]


class ExportConsumer(Consumer):
    """Writes every consumed frame to ``<directory>/<prefix>_NNN.*``."""

    def __init__(self, directory: str, prefix: str = "frame"):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self.frames_written = 0
        self.files: list[Path] = []

    def consume(self, geometry: GeometrySet) -> None:
        """Write one frame (CSV for points, OBJ for lines and boxes)."""
        stem = f"{self.prefix}_{self.frames_written:03d}"
        if geometry.num_points:
            self.files.append(self._write_points_csv(stem, geometry))
        if geometry.num_lines or geometry.num_boxes:
            self.files.append(self._write_obj(stem, geometry))
        self.frames_written += 1

    def _write_points_csv(self, stem: str, geometry: GeometrySet) -> Path:
        path = self.directory / f"{stem}_points.csv"
        points = geometry.points
        dim = points.shape[1]
        header = [f"c{i}" for i in range(dim)]
        columns = [points]
        for name, value in sorted(geometry.attributes.items()):
            if isinstance(value, np.ndarray) and value.ndim == 1 and len(value) == len(points):
                header.append(name)
                columns.append(np.asarray(value, dtype=np.float64)[:, np.newaxis])
        data = np.hstack(columns)
        np.savetxt(path, data, delimiter=",", header=",".join(header), comments="")
        return path

    def _write_obj(self, stem: str, geometry: GeometrySet) -> Path:
        path = self.directory / f"{stem}_geometry.obj"
        lines_out = [f"# {stem}: exported by repro.viz.ExportConsumer"]
        vertex_count = 0

        def emit_vertex(point: np.ndarray) -> int:
            nonlocal vertex_count
            coords = list(point[:3]) + [0.0] * max(0, 3 - len(point))
            lines_out.append("v " + " ".join(f"{c:.9g}" for c in coords[:3]))
            vertex_count += 1
            return vertex_count

        for segment in geometry.lines:
            a = emit_vertex(segment[0])
            b = emit_vertex(segment[1])
            lines_out.append(f"l {a} {b}")
        for lo, hi in geometry.boxes:
            # The 12 edges of the (first three dims of the) box.
            corners = {}
            for code in range(8):
                corner = np.array(
                    [hi[axis] if (code >> axis) & 1 else lo[axis] for axis in range(min(3, len(lo)))]
                )
                corners[code] = emit_vertex(corner)
            for a in range(8):
                for axis in range(3):
                    b = a | (1 << axis)
                    if b != a and b < 8 and a < b:
                        lines_out.append(f"l {corners[a]} {corners[b]}")
        path.write_text("\n".join(lines_out) + "\n", encoding="utf-8")
        return path
