"""Events and the plugin registry.

The registry is each plugin's sole view of the application (the paper's
Figure 12): it exposes the camera-change event plugins subscribe to and
the ``signal_production`` callback plugins invoke -- from any thread --
when new geometry is ready.  "In practice, this simply sets a flag to
signal the application that in the next frame cycle it should attempt a
GetOutput call" (§5.1).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

from repro.viz.camera import Camera

if TYPE_CHECKING:  # pragma: no cover
    from repro.viz.plugin import Producer

__all__ = ["Event", "Registry"]


class Event:
    """A minimal thread-safe multicast event."""

    def __init__(self) -> None:
        self._handlers: list[Callable] = []
        self._lock = threading.Lock()

    def subscribe(self, handler: Callable) -> None:
        """Add a handler (idempotent)."""
        with self._lock:
            if handler not in self._handlers:
                self._handlers.append(handler)

    def unsubscribe(self, handler: Callable) -> None:
        """Remove a handler if present."""
        with self._lock:
            if handler in self._handlers:
                self._handlers.remove(handler)

    def fire(self, *args, **kwargs) -> None:
        """Invoke every handler with the given arguments."""
        with self._lock:
            handlers = list(self._handlers)
        for handler in handlers:
            handler(*args, **kwargs)

    def __len__(self) -> int:
        with self._lock:
            return len(self._handlers)


class Registry:
    """Per-plugin connection point to the application."""

    def __init__(self) -> None:
        self.camera_box_changed = Event()
        self._production_flag = threading.Event()
        self._producer: "Producer | None" = None

    def bind_producer(self, producer: "Producer") -> None:
        """Associate the registry with its producer (host-side wiring)."""
        self._producer = producer

    def signal_production(self, producer: "Producer | None" = None) -> None:
        """Called by the plugin when new geometry is available.

        Thread-safe flag set; the host checks and clears it each frame.
        """
        self._production_flag.set()

    def production_pending(self) -> bool:
        """Whether the plugin signaled since the last frame (host-side)."""
        return self._production_flag.is_set()

    def clear_production(self) -> None:
        """Consume the production flag (host-side, once per frame)."""
        self._production_flag.clear()

    def fire_camera_changed(self, camera: Camera) -> None:
        """Dispatch a camera-change event to the plugin (host-side)."""
        self.camera_box_changed.fire(camera)
