"""Command-line interface: ``python -m repro <command>``.

Small utilities for poking at the system without writing a script:

* ``demo`` -- build the indexes over a synthetic sample and run one of
  each query type, printing the I/O comparison.
* ``replay`` -- serve a Figure 2 workload through the concurrent query
  service and print per-query / service-level metrics.
* ``info`` -- version, subsystem inventory, and experiment index.
* ``bench-hint`` -- how to regenerate the paper's figures.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import (
        Database,
        KdTreeIndex,
        LayeredGridIndex,
        VoronoiIndex,
        knn_boundary_points,
        polyhedron_full_scan,
        sdss_color_sample,
    )
    from repro.datasets import QueryWorkload
    from repro.geometry import Box

    bands = ["u", "g", "r", "i", "z"]
    print(f"generating {args.rows} objects of the 5-D color space...")
    sample = sdss_color_sample(args.rows, seed=args.seed)
    db = Database.in_memory(buffer_pages=args.buffer_pages)
    kd = KdTreeIndex.build(db, "mag_kd", sample.columns(), bands)
    voronoi = VoronoiIndex.build(
        db, "mag_vor", sample.columns(), bands,
        num_seeds=max(64, int(np.sqrt(args.rows) * 2)),
    )
    grid = LayeredGridIndex.build(db, "mag_grid", sample.columns(), bands)

    workload = QueryWorkload(sample.magnitudes, seed=args.seed)
    poly = workload.figure2_query().polyhedron(bands)
    _, kd_stats = kd.query_polyhedron(poly)
    _, vor_stats = voronoi.query_polyhedron(poly)
    _, scan_stats = polyhedron_full_scan(kd.table, bands, poly)
    print("\nFigure 2 selection:")
    print(f"  kd-tree   {kd_stats.rows_returned:>7} rows  {kd_stats.pages_touched:>6} pages")
    print(f"  voronoi   {vor_stats.rows_returned:>7} rows  {vor_stats.pages_touched:>6} pages")
    print(f"  full scan {scan_stats.rows_returned:>7} rows  {scan_stats.pages_touched:>6} pages")

    neighbors = knn_boundary_points(kd, sample.magnitudes[0], k=10)
    print(
        f"\n10-NN: {neighbors.stats.extra['boxes_examined']} of "
        f"{kd.tree.num_leaves} kd-boxes examined, "
        f"{neighbors.stats.pages_touched} pages"
    )

    window = Box.cube(np.median(sample.magnitudes, axis=0), 1.5)
    result = grid.sample_box(window, 1000)
    print(
        f"adaptive sample: {len(result.row_ids)} points, "
        f"{result.stats.pages_touched}/{grid.table.num_pages} pages"
    )
    return 0


_BANDS = ["u", "g", "r", "i", "z"]


def _build_columns(args: argparse.Namespace):
    """The replayed table: the SDSS sample plus stable object ids."""
    from repro import sdss_color_sample

    sample = sdss_color_sample(args.rows, seed=args.seed)
    columns = dict(sample.columns())
    # Stable object ids survive re-clustering, so the sharded and
    # unsharded engines can be compared row-for-row via oid sets.
    columns["oid"] = np.arange(args.rows, dtype=np.int64)
    return sample, columns


def _index_cache_bytes(args: argparse.Namespace) -> int | None:
    """``--index-cache-mb`` in bytes (``None`` = database default)."""
    mb = getattr(args, "index_cache_mb", None)
    return None if mb is None else int(mb * (1 << 20))


def _build_engine(args: argparse.Namespace, db, columns):
    """Build the engine the flags describe; returns ``(engine, service_db)``."""
    from repro import KdPartitioner, KdTreeIndex, QueryPlanner, ScatterGatherExecutor
    from repro.bitmap import BitmapIndex

    transport = getattr(args, "transport", "thread")
    engine_choice = getattr(args, "engine", "auto")
    if args.shards:
        print(
            f"generating {args.rows} objects and partitioning into "
            f"{args.shards} kd-subtree shards (transport={transport}, "
            f"engine={engine_choice})..."
        )
        partitioner = KdPartitioner(
            args.shards,
            buffer_pages=args.buffer_pages,
            index_cache_bytes=_index_cache_bytes(args),
        )
        if transport == "process":
            specs = partitioner.plan("magnitudes", columns, _BANDS)
            engine = ScatterGatherExecutor(
                specs=specs, transport="process", seed=args.seed,
                engine=engine_choice,
            )
        else:
            shard_set = partitioner.partition("magnitudes", columns, _BANDS)
            engine = ScatterGatherExecutor(
                shard_set, seed=args.seed, engine=engine_choice
            )
        print(f"shard layout: {engine.layout_version}")
        return engine, None
    print(
        f"generating {args.rows} objects and building the kd-tree and "
        f"bitmap indexes (engine={engine_choice})..."
    )
    index = KdTreeIndex.build(db, "magnitudes", columns, _BANDS)
    BitmapIndex.build(db, "magnitudes", _BANDS)
    return QueryPlanner(index, seed=args.seed, engine=engine_choice), db


def _print_index_cache(engine, service_db) -> None:
    """Paged kd-tree node-cache summary (hit rate, pages decoded)."""
    io = None
    if service_db is not None:
        io = service_db.io_stats.snapshot().as_dict()
    else:
        io_stats = getattr(engine, "io_stats", None)
        if callable(io_stats):
            try:
                io = io_stats().as_dict()
            except Exception:
                io = None
    if not io:
        return
    probes = io.get("node_cache_hits", 0) + io.get("node_cache_misses", 0)
    decoded = io.get("index_pages_decoded", 0)
    if not probes and not decoded:
        return
    rate = io.get("node_cache_hits", 0) / probes if probes else 0.0
    print(
        f"index node cache: {rate:.1%} hit rate "
        f"({io.get('node_cache_hits', 0)}/{probes} probes), "
        f"{decoded} index pages decoded, "
        f"{io.get('node_cache_evictions', 0)} evictions"
    )


def _print_worker_util(engine, wall_s: float) -> None:
    """Per-worker utilization: busy seconds over the replay wall clock."""
    worker_stats = getattr(engine, "worker_stats", None)
    if not callable(worker_stats):
        return
    stats = worker_stats()
    if not stats:
        return
    transport = getattr(engine, "transport", "thread")
    print(f"per-worker utilization (transport={transport}):")
    for entry in stats:
        util = entry["busy_s"] / wall_s if wall_s > 0 else 0.0
        pid = f" pid={entry['pid']}" if entry.get("pid") else ""
        respawns = (
            f" respawns={entry['respawns']}" if entry.get("respawns") else ""
        )
        print(
            f"  shard {entry['shard_id']}:{pid} {entry['requests']} requests, "
            f"busy {entry['busy_s']:.2f} s ({util:.0%} of wall){respawns}"
        )


def _verify_against_reference(args, db, columns, queries, result_rows) -> int:
    """Row-identity check against a freshly built unsharded reference.

    Clustering differs between engines, so compare the stable oid sets
    rather than physical row ids.  Returns the mismatch count.
    """
    from repro import KdTreeIndex, QueryPlanner
    from repro.service import run_serial

    reference = QueryPlanner(
        KdTreeIndex.build(db, "magnitudes_ref", columns, _BANDS),
        seed=args.seed,
    )
    serial = run_serial(reference, queries)
    return sum(
        1
        for idx, rows in enumerate(serial)
        if result_rows[idx] is None
        or set(result_rows[idx]["oid"].tolist()) != set(rows["oid"].tolist())
    )


def _capture_trace(args: argparse.Namespace, columns, queries):
    """Run the workload once on the default config, recording every query.

    The self-captured trace is the tuner's input when no ``--trace-in``
    file is given: a throwaway single-table planner over the same rows
    executes the workload solo and its recorder ring becomes the trace.
    """
    from repro import Database, KdTreeIndex, QueryPlanner
    from repro.bitmap import BitmapIndex
    from repro.tune import WorkloadTraceRecorder

    db = Database.in_memory(buffer_pages=args.buffer_pages)
    index = KdTreeIndex.build(db, "magnitudes_trace", columns, _BANDS)
    BitmapIndex.build(db, "magnitudes_trace", _BANDS)
    planner = QueryPlanner(index, seed=args.seed)
    recorder = WorkloadTraceRecorder()
    planner.trace_recorder = recorder
    for polyhedron in queries:
        planner.execute(polyhedron)
    return list(recorder.observations())


def _tuned_configs(args: argparse.Namespace, columns, queries, num_replicas):
    """Load/capture a trace and greedy-tune ``num_replicas`` configs."""
    from repro.db.table import DEFAULT_ROWS_PER_PAGE
    from repro.tune import (
        CostReplayEvaluator,
        GreedyConfigSelector,
        TableProfile,
        read_trace,
    )

    trace_in = getattr(args, "trace_in", "")
    if trace_in:
        observations = read_trace(trace_in)
        print(f"loaded {len(observations)} trace observations from {trace_in}")
    else:
        print("capturing a tuning trace on the default configuration...")
        observations = _capture_trace(args, columns, queries)
    profile = TableProfile(
        columns, _BANDS, args.rows, DEFAULT_ROWS_PER_PAGE, seed=args.seed
    )
    evaluator = CostReplayEvaluator(profile, trace=observations)
    selector = GreedyConfigSelector(evaluator)
    budget_mb = getattr(args, "budget_mb", None)
    budget = int(budget_mb * (1 << 20)) if budget_mb else None
    plan = selector.select_divergent(
        observations, num_replicas, budget_bytes=budget
    )
    print(
        f"tuned {num_replicas} divergent config(s): predicted "
        f"{plan.baseline_pages:.0f} -> {plan.predicted_pages:.0f} pages "
        f"decoded over the trace"
    )
    return plan


def _build_replica_engine(args: argparse.Namespace, columns, queries):
    """Build a divergent replica set and its router (``--replicas N``)."""
    from repro.tune import ReplicaRouter, ReplicaSet, default_config

    if args.tuned:
        plan = _tuned_configs(args, columns, queries, args.replicas)
        configs = list(plan.configs)
    else:
        configs = [default_config() for _ in range(args.replicas)]
    print(f"materializing {len(configs)} replica(s)...")
    for position, config in enumerate(configs):
        print(f"  r{position}: {config.describe()}")
    replica_set = ReplicaSet.build(
        "magnitudes",
        columns,
        _BANDS,
        configs,
        seed=args.seed,
        transport=getattr(args, "transport", "thread"),
        key_column="oid",
    )
    return ReplicaRouter(replica_set)


def _print_routing(engine) -> None:
    """Per-replica routing shares and degradation count (router engines)."""
    report_fn = getattr(engine, "routing_report", None)
    if not callable(report_fn):
        return
    report = report_fn()
    total = sum(report["routes"].values())
    if not total:
        return
    shares = ", ".join(
        f"r{rid}={count / total:.0%}"
        for rid, count in sorted(report["routes"].items())
    )
    print(f"replica routing: {shares}; degraded answers: {report['degraded']}")


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro import Database
    from repro.datasets import QueryWorkload
    from repro.service import QueryService, replay_workload, rows_equal, run_serial

    if args.connect:
        return _replay_connect(args)
    if args.tuned and not args.replicas:
        args.replicas = 1

    sample, columns = _build_columns(args)
    cache_bytes = _index_cache_bytes(args)
    db = Database.in_memory(
        buffer_pages=args.buffer_pages,
        **({} if cache_bytes is None else {"index_cache_bytes": cache_bytes}),
    )

    workload = QueryWorkload(sample.magnitudes, seed=args.seed)
    unique = max(1, int(args.queries * (1.0 - args.duplicate_fraction)))
    base = workload.mixed(unique, selectivities=[0.001, 0.01, 0.05, 0.2, 0.5])
    polyhedra = [q.polyhedron(_BANDS) for q in base]
    queries = [polyhedra[i % unique] for i in range(args.queries)]

    if args.replicas:
        engine = _build_replica_engine(args, columns, queries)
        service_db = None
    else:
        engine, service_db = _build_engine(args, db, columns)

    print(
        f"replaying {len(queries)} queries ({unique} unique) at "
        f"concurrency {args.concurrency} over {args.workers} workers..."
    )
    if args.batch > 1:
        print(
            f"micro-batching up to {args.batch} queries per worker pull "
            f"(formation delay {args.batch_delay_ms:.1f} ms)"
        )
    recorder = None
    if args.trace_out:
        from repro.tune import WorkloadTraceRecorder

        recorder = WorkloadTraceRecorder()
    service = QueryService(
        service_db,
        engine,
        workers=args.workers,
        queue_depth=args.queue_depth,
        default_deadline=args.deadline_ms / 1e3 if args.deadline_ms else None,
        batch_size=args.batch,
        batch_delay_s=args.batch_delay_ms / 1e3,
        trace_recorder=recorder,
    )
    with service:
        report = replay_workload(service, queries, concurrency=args.concurrency)
    if recorder is not None:
        count = recorder.export_jsonl(args.trace_out)
        print(f"wrote {count} trace observations to {args.trace_out}")

    print(
        f"\ncompleted {report.completed}/{len(queries)} in "
        f"{report.wall_time_s:.2f} s ({report.throughput_qps:.1f} q/s), "
        f"{report.resubmissions} backpressure retries "
        f"[transport={getattr(engine, 'transport', 'inprocess')}]"
    )
    _print_worker_util(engine, report.wall_time_s)
    _print_index_cache(engine, service_db)
    _print_routing(engine)
    summary = service.metrics.summary()
    if summary["batches"]:
        print(
            f"batched execution: {int(summary['batches'])} batches, "
            f"mean occupancy {summary['mean_batch_occupancy']:.2f}, "
            f"{int(summary['shared_decode_hits'])} shared decode hits over "
            f"{int(summary['batch_pages_decoded'])} decoded pages"
        )
    print(service.metrics.format_report(db.procedures if service_db else None))
    cost_report = getattr(engine, "cost_report", None)
    if callable(cost_report):
        calib = cost_report()
        if "calibration" not in calib:
            # A replica router reports per-replica snapshots; flatten to
            # the preferred replica ordering for the one-line summary.
            for tag, replica_calib in sorted(calib.items()):
                factors = ", ".join(
                    f"{name}={factor:.2f}"
                    for name, factor in sorted(
                        replica_calib["calibration"].items()
                    )
                )
                print(
                    f"replica {tag} cost calibration "
                    f"({int(replica_calib['observations'])} obs): {factors}"
                )
            calib = None
    if callable(cost_report) and calib is not None:
        factors = ", ".join(
            f"{name}={factor:.2f}"
            for name, factor in sorted(calib["calibration"].items())
        )
        print(
            f"planner cost calibration ({int(calib['observations'])} obs): "
            f"{factors}; selectivity bias {calib['selectivity_bias']:+.4f}"
        )
    if report.errors:
        print(f"errors: {[(i, type(e).__name__) for i, e in report.errors[:5]]}")

    exit_code = 0
    if args.verify:
        print("\nverifying against serial unsharded execution...")
        if args.shards or args.replicas:
            result_rows = [
                outcome.rows if outcome is not None else None
                for outcome in report.outcomes
            ]
            mismatches = _verify_against_reference(
                args, db, columns, queries, result_rows
            )
        else:
            serial = run_serial(engine, queries)
            mismatches = sum(
                1
                for idx, rows in enumerate(serial)
                if report.outcomes[idx] is None
                or not rows_equal(report.outcomes[idx].rows, rows)
            )
        print(f"row-for-row mismatches: {mismatches}")
        exit_code = 1 if mismatches else 0
    close = getattr(engine, "close", None)
    if callable(close):
        close()
    return exit_code


def _replay_connect(args: argparse.Namespace) -> int:
    """Replay over the network against a running ``repro serve``.

    The server must have been started with the same ``--rows``/``--seed``
    for ``--verify`` to be meaningful (the reference is rebuilt locally
    from those flags).
    """
    from repro import Database
    from repro.datasets import QueryWorkload
    from repro.net import replay_over_network

    host, _, port_text = args.connect.rpartition(":")
    if not host:
        print(f"--connect wants HOST:PORT, got {args.connect!r}", file=sys.stderr)
        return 2
    port = int(port_text)

    sample, columns = _build_columns(args)
    workload = QueryWorkload(sample.magnitudes, seed=args.seed)
    unique = max(1, int(args.queries * (1.0 - args.duplicate_fraction)))
    base = workload.mixed(unique, selectivities=[0.001, 0.01, 0.05, 0.2, 0.5])
    polyhedra = [q.polyhedron(_BANDS) for q in base]
    queries = [polyhedra[i % unique] for i in range(args.queries)]

    print(
        f"replaying {len(queries)} queries ({unique} unique) against "
        f"{host}:{port} at concurrency {args.concurrency}..."
    )
    report = replay_over_network(
        host,
        port,
        queries,
        concurrency=args.concurrency,
        deadline=args.deadline_ms / 1e3 if args.deadline_ms else None,
    )
    transport = "unknown"
    engine_counters = report.report.get("engine", {})
    if "worker_deaths" in engine_counters:
        transport = "process"
    elif engine_counters:
        transport = "thread"
    print(
        f"\ncompleted {report.completed}/{len(queries)} in "
        f"{report.wall_time_s:.2f} s ({report.throughput_qps:.1f} q/s), "
        f"{report.resubmissions} backpressure retries "
        f"[server transport={transport}]"
    )
    if report.errors:
        print(f"errors: {[(i, type(e).__name__) for i, e in report.errors[:5]]}")

    exit_code = 0
    if args.verify:
        print("\nverifying against a locally rebuilt unsharded reference...")
        db = Database.in_memory(buffer_pages=args.buffer_pages)
        result_rows = [
            outcome.rows if outcome is not None else None
            for outcome in report.outcomes
        ]
        mismatches = _verify_against_reference(args, db, columns, queries, result_rows)
        print(f"row-for-row mismatches: {mismatches}")
        exit_code = 1 if mismatches else 0
    if report.completed < len(queries):
        exit_code = exit_code or 1
    return exit_code


def _cmd_tune(args: argparse.Namespace) -> int:
    """Tune configurations against a workload trace (no queries executed).

    With ``--trace-in`` the trace comes from a ``replay --trace-out``
    file; otherwise a throwaway default-config planner executes a mixed
    workload once to self-capture one.  The chosen config(s) and the
    predicted pages-decoded savings print as JSON (``--out`` also writes
    them to a file a later ``replay --tuned`` run could consume).
    """
    import json

    from repro.datasets import QueryWorkload
    from repro.geometry.halfspace import Halfspace, Polyhedron

    sample, columns = _build_columns(args)
    queries = None
    if not args.trace_in:
        # Half broad mixed boxes, half single-band precision needles --
        # a workload with distinguishable classes, so divergent tuning
        # has something to specialize replicas for.
        workload = QueryWorkload(sample.magnitudes, seed=args.seed)
        base = workload.mixed(
            args.queries // 2, selectivities=[0.01, 0.05, 0.2]
        )
        queries = [q.polyhedron(_BANDS) for q in base]
        rng = np.random.default_rng(args.seed)
        r_values = np.asarray(columns["r"], dtype=np.float64)
        while len(queries) < args.queries:
            q0 = rng.uniform(0.05, 0.9)
            low = float(np.quantile(r_values, q0))
            high = float(np.quantile(r_values, q0 + 0.005))
            axis = np.zeros(len(_BANDS))
            axis[_BANDS.index("r")] = 1.0
            queries.append(
                Polyhedron(
                    [Halfspace(axis, high), Halfspace(-axis, -low)]
                )
            )
    plan = _tuned_configs(args, columns, queries, args.replicas)
    payload = plan.to_dict()
    rendered = json.dumps(payload, indent=2, sort_keys=True)
    print(rendered)
    if plan.baseline_pages > 0:
        savings = 1.0 - plan.predicted_pages / plan.baseline_pages
        print(
            f"predicted savings over the default config: {savings:.1%} "
            f"fewer pages decoded"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
        print(f"wrote tuning plan to {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the network front door until SIGTERM/SIGINT drains it."""
    from repro import Database
    from repro.net.server import serve
    from repro.service import QueryService

    _, columns = _build_columns(args)
    cache_bytes = _index_cache_bytes(args)
    db = Database.in_memory(
        buffer_pages=args.buffer_pages,
        **({} if cache_bytes is None else {"index_cache_bytes": cache_bytes}),
    )
    engine, service_db = _build_engine(args, db, columns)
    service = QueryService(
        service_db,
        engine,
        workers=args.workers,
        queue_depth=args.queue_depth,
        default_deadline=args.deadline_ms / 1e3 if args.deadline_ms else None,
        batch_size=args.batch,
        batch_delay_s=args.batch_delay_ms / 1e3,
    ).start()

    def announce(server) -> None:
        host, port = server.address
        print(
            f"serving magnitudes ({args.rows} rows, "
            f"transport={getattr(engine, 'transport', 'inprocess')}) "
            f"on {host}:{port}",
            flush=True,
        )

    try:
        serve(
            service,
            args.host,
            args.port,
            max_inflight=args.max_inflight,
            ready_callback=announce,
        )
    finally:
        if service.running:
            service.stop(drain=False)
        close = getattr(engine, "close", None)
        if callable(close):
            close()
    print("drained; bye")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    import repro

    print(f"repro {repro.__version__} -- Csabai et al., CIDR 2007 reproduction")
    print("\nsubsystems:")
    for package, what in (
        ("repro.db", "paged column-store engine with I/O accounting"),
        ("repro.geometry", "boxes, convex polyhedra, space-filling curves"),
        ("repro.tessellation", "Delaunay/Voronoi substrate + edge store"),
        ("repro.core", "layered grid, kd-tree, boundary-point k-NN, Voronoi index"),
        ("repro.vectype", "binary vs UDT vector columns"),
        ("repro.datasets", "synthetic SDSS color space, spectra, sky, workload"),
        ("repro.ml", "PCA, least squares, photo-z, BST clustering"),
        ("repro.viz", "adaptive visualization pipeline"),
    ):
        print(f"  {package:<20} {what}")
    print("\nexperiments: see DESIGN.md (index) and EXPERIMENTS.md (results)")
    return 0


def _cmd_bench_hint(args: argparse.Namespace) -> int:
    print("pytest benchmarks/ --benchmark-only -s      # all figures/tables")
    print("REPRO_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only -s")
    print("pytest benchmarks/test_fig5_kdtree_speedup.py --benchmark-only -s")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spatial indexing of large multidimensional databases "
        "(CIDR 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="build the indexes and run sample queries")
    demo.add_argument("--rows", type=int, default=50_000)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--buffer-pages", type=int, default=4096)
    demo.set_defaults(func=_cmd_demo)

    replay = sub.add_parser(
        "replay", help="serve a Figure 2 workload through the query service"
    )
    replay.add_argument("--rows", type=int, default=20_000)
    replay.add_argument("--queries", type=int, default=240)
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--buffer-pages", type=int, default=4096)
    replay.add_argument(
        "--index-cache-mb", type=float, default=None,
        help="decoded node-cache budget per paged kd-tree, in MiB "
        "(default: the database's 4 MiB)",
    )
    replay.add_argument(
        "--shards", type=int, default=0,
        help="kd-subtree shard count (power of two; 0 = single unsharded index)",
    )
    replay.add_argument(
        "--engine", choices=["auto", "kd", "scan", "bitmap", "hybrid"],
        default="auto",
        help="force one access path for every query (auto = cost-based choice)",
    )
    replay.add_argument("--concurrency", type=int, default=8, help="client threads")
    replay.add_argument("--workers", type=int, default=8, help="service worker threads")
    replay.add_argument("--queue-depth", type=int, default=32)
    replay.add_argument(
        "--duplicate-fraction", type=float, default=0.5,
        help="fraction of replayed queries that repeat an earlier one",
    )
    replay.add_argument(
        "--deadline-ms", type=float, default=0.0,
        help="per-query deadline in milliseconds (0 = none)",
    )
    replay.add_argument(
        "--batch", type=int, default=1,
        help="max queries micro-batched per worker pull (1 = solo execution)",
    )
    replay.add_argument(
        "--batch-delay-ms", type=float, default=0.0,
        help="bounded batch-formation delay in milliseconds",
    )
    replay.add_argument(
        "--verify", action="store_true",
        help="re-run serially and compare results row for row",
    )
    replay.add_argument(
        "--transport", choices=["thread", "process"], default="thread",
        help="shard execution transport (process = one worker process per shard)",
    )
    replay.add_argument(
        "--connect", default="",
        help="HOST:PORT of a running `repro serve` to replay against "
        "(skips building a local service)",
    )
    replay.add_argument(
        "--replicas", type=int, default=0,
        help="serve from N divergently-configured replicas behind a "
        "cost-scored router (0 = single engine; overrides --shards)",
    )
    replay.add_argument(
        "--tuned", action="store_true",
        help="derive each replica's config from a workload trace via the "
        "greedy auto-tuner (default: N identical default configs)",
    )
    replay.add_argument(
        "--trace-out", default="",
        help="export the executed workload as a JSONL trace for `repro tune`",
    )
    replay.add_argument(
        "--trace-in", default="",
        help="JSONL trace feeding --tuned (default: self-capture one)",
    )
    replay.add_argument(
        "--budget-mb", type=float, default=None,
        help="per-replica memory/storage budget for --tuned, in MiB",
    )
    replay.set_defaults(func=_cmd_replay)

    tune = sub.add_parser(
        "tune",
        help="choose index/cache configs from a workload trace "
        "(cost replay only; no queries executed)",
    )
    tune.add_argument("--rows", type=int, default=20_000)
    tune.add_argument("--queries", type=int, default=240)
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--buffer-pages", type=int, default=4096)
    tune.add_argument(
        "--trace-in", default="",
        help="JSONL workload trace from `repro replay --trace-out` "
        "(default: self-capture a mixed workload)",
    )
    tune.add_argument(
        "--replicas", type=int, default=1,
        help="number of divergent configs to choose (1 = single config)",
    )
    tune.add_argument(
        "--budget-mb", type=float, default=None,
        help="memory/storage budget per config, in MiB (default: unlimited)",
    )
    tune.add_argument(
        "--out", default="", help="also write the tuning plan JSON here"
    )
    tune.set_defaults(func=_cmd_tune)

    srv = sub.add_parser(
        "serve", help="serve the query service over TCP until SIGTERM"
    )
    srv.add_argument("--rows", type=int, default=20_000)
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument("--buffer-pages", type=int, default=4096)
    srv.add_argument(
        "--index-cache-mb", type=float, default=None,
        help="decoded node-cache budget per paged kd-tree, in MiB "
        "(default: the database's 4 MiB)",
    )
    srv.add_argument(
        "--shards", type=int, default=0,
        help="kd-subtree shard count (power of two; 0 = single unsharded index)",
    )
    srv.add_argument(
        "--transport", choices=["thread", "process"], default="thread",
        help="shard execution transport (process = one worker process per shard)",
    )
    srv.add_argument(
        "--engine", choices=["auto", "kd", "scan", "bitmap", "hybrid"],
        default="auto",
        help="force one access path for every query (auto = cost-based choice)",
    )
    srv.add_argument("--workers", type=int, default=8, help="service worker threads")
    srv.add_argument("--queue-depth", type=int, default=32)
    srv.add_argument(
        "--deadline-ms", type=float, default=0.0,
        help="default per-query deadline in milliseconds (0 = none)",
    )
    srv.add_argument("--batch", type=int, default=1)
    srv.add_argument("--batch-delay-ms", type=float, default=0.0)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=0, help="0 picks a free port")
    srv.add_argument(
        "--max-inflight", type=int, default=32,
        help="per-connection (per-tenant) in-flight query cap",
    )
    srv.set_defaults(func=_cmd_serve)

    info = sub.add_parser("info", help="package inventory")
    info.set_defaults(func=_cmd_info)

    hint = sub.add_parser("bench-hint", help="how to regenerate the figures")
    hint.set_defaults(func=_cmd_bench_hint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
