"""Command-line interface: ``python -m repro <command>``.

Small utilities for poking at the system without writing a script:

* ``demo`` -- build the indexes over a synthetic sample and run one of
  each query type, printing the I/O comparison.
* ``info`` -- version, subsystem inventory, and experiment index.
* ``bench-hint`` -- how to regenerate the paper's figures.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import (
        Database,
        KdTreeIndex,
        LayeredGridIndex,
        VoronoiIndex,
        knn_boundary_points,
        polyhedron_full_scan,
        sdss_color_sample,
    )
    from repro.datasets import QueryWorkload
    from repro.geometry import Box

    bands = ["u", "g", "r", "i", "z"]
    print(f"generating {args.rows} objects of the 5-D color space...")
    sample = sdss_color_sample(args.rows, seed=args.seed)
    db = Database.in_memory(buffer_pages=args.buffer_pages)
    kd = KdTreeIndex.build(db, "mag_kd", sample.columns(), bands)
    voronoi = VoronoiIndex.build(
        db, "mag_vor", sample.columns(), bands,
        num_seeds=max(64, int(np.sqrt(args.rows) * 2)),
    )
    grid = LayeredGridIndex.build(db, "mag_grid", sample.columns(), bands)

    workload = QueryWorkload(sample.magnitudes, seed=args.seed)
    poly = workload.figure2_query().polyhedron(bands)
    _, kd_stats = kd.query_polyhedron(poly)
    _, vor_stats = voronoi.query_polyhedron(poly)
    _, scan_stats = polyhedron_full_scan(kd.table, bands, poly)
    print("\nFigure 2 selection:")
    print(f"  kd-tree   {kd_stats.rows_returned:>7} rows  {kd_stats.pages_touched:>6} pages")
    print(f"  voronoi   {vor_stats.rows_returned:>7} rows  {vor_stats.pages_touched:>6} pages")
    print(f"  full scan {scan_stats.rows_returned:>7} rows  {scan_stats.pages_touched:>6} pages")

    neighbors = knn_boundary_points(kd, sample.magnitudes[0], k=10)
    print(
        f"\n10-NN: {neighbors.stats.extra['boxes_examined']} of "
        f"{kd.tree.num_leaves} kd-boxes examined, "
        f"{neighbors.stats.pages_touched} pages"
    )

    window = Box.cube(np.median(sample.magnitudes, axis=0), 1.5)
    result = grid.sample_box(window, 1000)
    print(
        f"adaptive sample: {len(result.row_ids)} points, "
        f"{result.stats.pages_touched}/{grid.table.num_pages} pages"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    import repro

    print(f"repro {repro.__version__} -- Csabai et al., CIDR 2007 reproduction")
    print("\nsubsystems:")
    for package, what in (
        ("repro.db", "paged column-store engine with I/O accounting"),
        ("repro.geometry", "boxes, convex polyhedra, space-filling curves"),
        ("repro.tessellation", "Delaunay/Voronoi substrate + edge store"),
        ("repro.core", "layered grid, kd-tree, boundary-point k-NN, Voronoi index"),
        ("repro.vectype", "binary vs UDT vector columns"),
        ("repro.datasets", "synthetic SDSS color space, spectra, sky, workload"),
        ("repro.ml", "PCA, least squares, photo-z, BST clustering"),
        ("repro.viz", "adaptive visualization pipeline"),
    ):
        print(f"  {package:<20} {what}")
    print("\nexperiments: see DESIGN.md (index) and EXPERIMENTS.md (results)")
    return 0


def _cmd_bench_hint(args: argparse.Namespace) -> int:
    print("pytest benchmarks/ --benchmark-only -s      # all figures/tables")
    print("REPRO_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only -s")
    print("pytest benchmarks/test_fig5_kdtree_speedup.py --benchmark-only -s")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spatial indexing of large multidimensional databases "
        "(CIDR 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="build the indexes and run sample queries")
    demo.add_argument("--rows", type=int, default=50_000)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--buffer-pages", type=int, default=4096)
    demo.set_defaults(func=_cmd_demo)

    info = sub.add_parser("info", help="package inventory")
    info.set_defaults(func=_cmd_info)

    hint = sub.add_parser("bench-hint", help="how to regenerate the figures")
    hint.set_defaults(func=_cmd_bench_hint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
