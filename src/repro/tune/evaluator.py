"""Cost-replay evaluation: score a config against a trace without I/O.

The planner already predicts pages decoded per engine from structural
inputs (slab survival fractions, bitmap candidate masses, leaf/page
geometry) and calibrates those predictions online against observed
decode counts.  The evaluator transplants the same formulas into a
*what-if* setting: given a :class:`TableProfile` (seeded column samples
standing in for the planner's probe sample) and a
:class:`~repro.tune.config.TuningConfig`, it re-scores every recorded
query as if the table had been built with that config -- different
bitmap bin counts and dim subsets change the candidate mass, dropping
zone maps removes scan pruning, shrinking the index cache surcharges kd
traversals -- and takes the per-query minimum over engines, exactly as
the cost-based planner would.

Per-engine calibration factors are fitted once per evaluator from the
trace itself (median observed/predicted ratio at the *base* config,
clamped like the planner's EWMA), so predictions inherit whatever the
live system learned about constant factors.  No query is executed and
no page is read.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.core.kdtree import default_num_levels
from repro.tune.config import TuningConfig
from repro.tune.trace import TraceObservation

__all__ = ["TableProfile", "CostReplayEvaluator"]

#: Same clamp the planner applies to its EWMA calibration ratios.
_CALIBRATION_CLAMP = (0.1, 10.0)
#: Planner's discount for index node pages vs data pages.
_INDEX_PAGE_READ_COST = 0.25
#: Assumed kd nodes per index page / bytes per node for the cache model.
_NODES_PER_PAGE = 256
_BYTES_PER_NODE = 64


class TableProfile:
    """Seeded statistical sketch of one table: the evaluator's world model.

    Holds a deterministic per-column sample (sorted, so range masses are
    two searchsorteds) plus the table geometry the cost formulas need
    (row/page counts, numeric column count).  Built once from the raw
    column data -- or from any representative subsample -- and shared by
    every config evaluation and by the replica router's in-memory
    scoring of engines that live in worker processes.
    """

    def __init__(
        self,
        columns: dict[str, np.ndarray],
        dims: Sequence[str],
        num_rows: int,
        rows_per_page: int,
        sample_size: int = 4096,
        seed: int = 0,
    ):
        self.dims = tuple(dims)
        self.num_rows = int(num_rows)
        self.rows_per_page = max(1, int(rows_per_page))
        self.num_numeric_columns = sum(
            1
            for values in columns.values()
            if np.asarray(values).dtype.kind in "iuf"
        )
        rng = np.random.default_rng(seed)
        self._samples: dict[str, np.ndarray] = {}
        for name, values in columns.items():
            values = np.asarray(values)
            if values.dtype.kind not in "iuf" or len(values) == 0:
                continue
            if len(values) > sample_size:
                picks = rng.choice(len(values), size=sample_size, replace=False)
                values = values[picks]
            self._samples[name] = np.sort(values.astype(np.float64))
        self._edges_cache: dict[tuple[str, int], np.ndarray] = {}

    @classmethod
    def from_table(cls, table, dims: Sequence[str], sample_size: int = 4096,
                   seed: int = 0) -> "TableProfile":
        """Profile a live table by decoding a handful of its pages."""
        columns: dict[str, list] = {}
        step = max(1, table.num_pages // 8)
        for page_id in range(0, table.num_pages, step):
            page = table.read_page(page_id)
            for name, values in page.columns.items():
                columns.setdefault(name, []).append(values)
        stacked = {
            name: np.concatenate(chunks) for name, chunks in columns.items()
        }
        return cls(
            stacked, dims, table.num_rows, table.rows_per_page,
            sample_size=sample_size, seed=seed,
        )

    @property
    def num_pages(self) -> int:
        return max(1, -(-self.num_rows // self.rows_per_page))

    @property
    def table_bytes(self) -> int:
        """Approximate decoded size: 8 bytes per numeric cell."""
        return self.num_rows * max(1, self.num_numeric_columns) * 8

    def fraction(self, column: str, low: float, high: float) -> float:
        """Fraction of sampled values inside ``[low, high]`` (floored)."""
        sample = self._samples.get(column)
        if sample is None or len(sample) == 0:
            return 1.0
        lo = int(np.searchsorted(sample, low, side="left"))
        hi = int(np.searchsorted(sample, high, side="right"))
        return max((hi - lo) / len(sample), 1.0 / len(sample))

    def bin_edges(self, column: str, num_bins: int) -> np.ndarray | None:
        """Equi-depth bin edges over the sample (mirrors the bitmap build)."""
        key = (column, num_bins)
        edges = self._edges_cache.get(key)
        if edges is None:
            sample = self._samples.get(column)
            if sample is None or len(sample) == 0:
                return None
            quantiles = np.linspace(0.0, 1.0, num_bins + 1)
            edges = np.quantile(sample, quantiles)
            self._edges_cache[key] = edges
        return edges

    def range_mass(self, column: str, low: float, high: float,
                   num_bins: int) -> float:
        """Row fraction the bitmap's candidate superset keeps for a range.

        Equi-depth bins hold ~1/B of the rows each; a range touching
        bins ``[first, last]`` keeps ``(last - first + 1) / B`` -- the
        whole straddled edge bins included, exactly the superset the
        real index ANDs.
        """
        if not (math.isfinite(low) or math.isfinite(high)):
            return 1.0
        edges = self.bin_edges(column, num_bins)
        if edges is None:
            return 1.0
        first = max(0, int(np.searchsorted(edges, low, side="right")) - 1)
        last = max(0, int(np.searchsorted(edges, high, side="right")) - 1)
        last = min(last, num_bins - 1)
        if high < edges[0] or low > edges[-1]:
            return 1.0 / max(1, self.num_rows)
        return max(1, last - first + 1) / num_bins

    def membership_mass(self, column: str, values: Iterable[float],
                        num_bins: int) -> float:
        """Row fraction kept for an IN-list: distinct bins hit over B."""
        edges = self.bin_edges(column, num_bins)
        values = np.asarray(list(values), dtype=np.float64)
        if edges is None or len(values) == 0:
            return 1.0
        bins = np.clip(
            np.searchsorted(edges, values, side="right") - 1, 0, num_bins - 1
        )
        return len(np.unique(bins)) / num_bins


class CostReplayEvaluator:
    """Scores candidate configs against a trace using the planner's models."""

    def __init__(
        self,
        profile: TableProfile,
        base_config: TuningConfig | None = None,
        trace: Sequence[TraceObservation] = (),
    ):
        self.profile = profile
        self.base_config = base_config or TuningConfig()
        self.factors = self._fit_factors(trace)

    def _fit_factors(
        self, trace: Sequence[TraceObservation]
    ) -> dict[str, float]:
        """Median observed/structural ratio per engine at the base config.

        The same role as the planner's EWMA calibration: absorb the
        constant factors the structural formulas miss (clustering runs,
        residual-filter page re-use).  Engines the trace never exercised
        keep factor 1.0.
        """
        ratios: dict[str, list[float]] = {}
        lo, hi = _CALIBRATION_CLAMP
        for observation in trace:
            if not observation.engine or observation.actual_pages <= 0:
                continue
            structural = self.engine_costs(self.base_config, observation).get(
                observation.engine, float("inf")
            )
            if not math.isfinite(structural) or structural <= 0:
                continue
            ratios.setdefault(observation.engine, []).append(
                min(hi, max(lo, observation.actual_pages / structural))
            )
        return {
            engine: float(np.median(values))
            for engine, values in ratios.items()
            if values
        }

    # -- per-engine structural costs ---------------------------------------

    def engine_costs(
        self, config: TuningConfig, observation: TraceObservation
    ) -> dict[str, float]:
        """Structural predicted pages per engine under ``config``."""
        profile = self.profile
        num_pages = profile.num_pages
        costs = {
            "scan": self._scan_cost(config, observation),
            "kdtree": self._kd_cost(config, observation),
        }
        bitmap = self._bitmap_cost(config, observation)
        costs["bitmap"] = bitmap
        if math.isfinite(bitmap):
            hybrid = max(1.0, costs["kdtree"] * bitmap / num_pages)
            costs["hybrid"] = min(costs["kdtree"], bitmap, hybrid) + 2.0
        else:
            costs["hybrid"] = float("inf")
        if math.isfinite(bitmap):
            # Separate entry (not folded into "bitmap") so the fitted
            # base-config bitmap factor is never applied to it.
            costs["bitmap@cluster"] = self._clustered_run_cost(
                config, observation
            )
        return costs

    def _zone_covered(self, config: TuningConfig) -> bool:
        """Can zone maps prune for slab queries over the coordinate dims?

        The live pruner refuses unless its column set covers every
        queried dim, so a partial ``zone_map_columns`` subset that drops
        a coordinate dim turns scan pruning off entirely.
        """
        if not config.zone_maps:
            return False
        if config.zone_map_columns is None:
            return True
        return set(self.profile.dims) <= set(config.zone_map_columns)

    def _scan_cost(
        self, config: TuningConfig, observation: TraceObservation
    ) -> float:
        num_pages = float(self.profile.num_pages)
        if not self._zone_covered(config):
            return num_pages
        if config.cluster_dim in self.profile.dims:
            # Axis-major layout: page [min, max] ranges tile the cluster
            # axis contiguously (near-perfect pruning there) and are
            # near-random on every other axis (no pruning).
            axis = self.profile.dims.index(config.cluster_dim)
            fraction = self.profile.fraction(
                config.cluster_dim,
                observation.lows[axis],
                observation.highs[axis],
            )
            return min(num_pages, max(1.0, fraction * num_pages + 1.0))
        # Zone maps prune pages whose [min, max] misses the slab.  Under
        # the kd-clustered layout that behaves like the kd leaf model:
        # each constrained axis keeps ~(f * splits + 1) of its splits.
        dim = max(1, len(self.profile.dims))
        per_axis_pages = num_pages ** (1.0 / dim)
        kept = 1.0
        for axis, column in enumerate(self.profile.dims):
            fraction = self.profile.fraction(
                column, observation.lows[axis], observation.highs[axis]
            )
            kept *= min(per_axis_pages, fraction * per_axis_pages + 1.0)
        return min(num_pages, max(1.0, kept))

    def _kd_cost(
        self, config: TuningConfig, observation: TraceObservation
    ) -> float:
        profile = self.profile
        num_pages = float(profile.num_pages)
        num_rows = max(1, profile.num_rows)
        leaves = max(1, 2 ** (default_num_levels(num_rows) - 1))
        if config.cluster_dim in profile.dims:
            # Axis-major tree: every split is on the cluster axis, so
            # only that axis prunes -- a fraction f slab keeps ~f of the
            # leaves, and constraints on other axes keep all of them.
            axis = profile.dims.index(config.cluster_dim)
            fraction = profile.fraction(
                config.cluster_dim,
                observation.lows[axis],
                observation.highs[axis],
            )
            leaves_hit = min(float(leaves), fraction * leaves + 1.0)
        else:
            dim = max(1, len(profile.dims))
            per_axis_splits = leaves ** (1.0 / dim)
            leaves_hit = 1.0
            for axis, column in enumerate(profile.dims):
                fraction = profile.fraction(
                    column, observation.lows[axis], observation.highs[axis]
                )
                leaves_hit *= min(
                    per_axis_splits, fraction * per_axis_splits + 1.0
                )
            leaves_hit = min(float(leaves), leaves_hit)
        pages_per_leaf = max(
            1.0, num_rows / (leaves * profile.rows_per_page)
        )
        data_pages = min(num_pages, leaves_hit * pages_per_leaf)
        # Paged-index surcharge, scaled by how badly the node cache
        # thrashes: an index bigger than its cache budget re-reads node
        # pages every traversal.
        index_bytes = 2.0 * leaves * _BYTES_PER_NODE
        pressure = min(
            4.0, max(1.0, index_bytes / max(1, config.index_cache_bytes))
        )
        node_pages = 1.0 + 2.0 * leaves_hit / _NODES_PER_PAGE
        return data_pages + _INDEX_PAGE_READ_COST * node_pages * pressure

    def _bitmap_cost(
        self, config: TuningConfig, observation: TraceObservation
    ) -> float:
        if not config.bitmap_bins:
            return float("inf")
        profile = self.profile
        covered = (
            set(config.bitmap_dims)
            if config.bitmap_dims is not None
            else set(profile.dims)
        )
        fraction = 1.0
        constrained = False
        for axis, column in enumerate(observation.dims):
            low, high = observation.lows[axis], observation.highs[axis]
            if not (math.isfinite(low) or math.isfinite(high)):
                continue
            if column not in covered:
                continue
            fraction *= profile.range_mass(column, low, high, config.bitmap_bins)
            constrained = True
        for column, values in observation.memberships.items():
            if column not in covered:
                continue
            fraction *= profile.membership_mass(
                column, values, config.bitmap_bins
            )
            constrained = True
        if not constrained:
            # Nothing the bitmap can AND on: the live planner falls back
            # to a whole-table fraction estimate, never a win.
            return float("inf")
        num_pages = profile.num_pages
        # Candidate rows land on pages; with f of the rows surviving the
        # AND, a page escapes only if all its rows miss.
        candidate_pages = num_pages * (
            1.0 - (1.0 - min(1.0, fraction)) ** profile.rows_per_page
        )
        return min(float(num_pages), max(1.0, candidate_pages))

    def _clustered_run_cost(
        self, config: TuningConfig, observation: TraceObservation
    ) -> float:
        """Contiguous-run bound under an axis-major (``cluster_dim``) layout.

        Candidates constrained on the cluster axis sit in one contiguous
        run of pages, not scattered: the run spans the axis window
        (decoded whole -- other-axis predicates do not cluster, so no
        page inside the run can be skipped), and an IN-list touches at
        most one page per distinct value.  This is close to exact by
        construction, so :meth:`predict_pages` applies **no** fitted
        engine factor to it -- base-config calibration constants have
        nothing to say about a layout the base config never had.
        """
        cluster = config.cluster_dim
        profile = self.profile
        if cluster is None or cluster not in profile.dims:
            return float("inf")
        num_pages = float(profile.num_pages)
        span = float("inf")
        cap = float("inf")
        axis = (
            observation.dims.index(cluster)
            if cluster in observation.dims
            else -1
        )
        if axis >= 0:
            low, high = observation.lows[axis], observation.highs[axis]
            if math.isfinite(low) or math.isfinite(high):
                span = profile.fraction(cluster, low, high)
        values = observation.memberships.get(cluster)
        if values is not None and len(values):
            picks = np.asarray(list(values), dtype=np.float64)
            span = min(
                span,
                profile.fraction(cluster, float(picks.min()), float(picks.max())),
            )
            cap = float(len(picks))
        if not math.isfinite(span):
            return float("inf")
        return min(num_pages, max(1.0, min(cap, span * num_pages + 1.0)))

    # -- whole-query / whole-trace scoring ---------------------------------

    def predict_pages(
        self, config: TuningConfig, observation: TraceObservation
    ) -> float:
        """Calibrated pages-decoded prediction: best engine under config."""
        best = float(self.profile.num_pages)
        for engine, cost in self.engine_costs(config, observation).items():
            if math.isfinite(cost):
                best = min(best, cost * self.factors.get(engine, 1.0))
        return best

    def best_engine(
        self, config: TuningConfig, observation: TraceObservation
    ) -> str:
        """Which engine the cost model would route this query to."""
        best_name, best_cost = "scan", float("inf")
        for engine, cost in self.engine_costs(config, observation).items():
            if math.isfinite(cost):
                calibrated = cost * self.factors.get(engine, 1.0)
                if calibrated < best_cost:
                    best_name, best_cost = engine, calibrated
        return best_name

    def evaluate(
        self, config: TuningConfig, trace: Sequence[TraceObservation]
    ) -> dict:
        """Total predicted pages for a whole trace under one config.

        Adds the two *runtime* knob effects the per-query model cannot
        see: repeated fingerprints hit the decoded-page cache with
        probability ~min(1, cache/table) so repeats cost only the miss
        rate, and a batch window shares decode work across duplicate
        members within a window (half the duplicated work saved at
        full occupancy -- the measured BENCH_batch shape).
        """
        hit_prob = min(
            1.0, config.decoded_cache_bytes / max(1, self.profile.table_bytes)
        )
        seen: set[str] = set()
        total = 0.0
        per_kind: dict[str, float] = {}
        duplicates = 0
        for observation in trace:
            pages = self.predict_pages(config, observation)
            if observation.fingerprint in seen:
                duplicates += 1
                pages *= 1.0 - hit_prob
            else:
                seen.add(observation.fingerprint)
            total += pages
            per_kind[observation.kind] = per_kind.get(observation.kind, 0.0) + pages
        if trace and config.batch_size > 1 and duplicates:
            dup_rate = duplicates / len(trace)
            total *= 1.0 - 0.5 * dup_rate * (1.0 - 1.0 / config.batch_size)
        return {
            "config": config.to_dict(),
            "config_id": config.config_id(),
            "predicted_pages": total,
            "per_kind": per_kind,
            "queries": len(trace),
            "duplicates": duplicates,
            "memory_bytes": config.memory_bytes(self.profile),
        }
